//! `dut` — the distributed-uniformity-testing command line.
//!
//! ```bash
//! # Run a distributed test and report acceptance rates:
//! dut test --n 4096 --k 64 --eps 0.5 --rule balanced --input two-level --trials 200
//!
//! # Print every theory prediction for a configuration:
//! dut predict --n 4096 --k 64 --eps 0.5
//!
//! # Ask the advisor which rule to deploy:
//! dut advise --n 4096 --k 64 --eps 0.5 --locality any
//! ```

use distributed_uniformity::advisor::{recommend, LocalityRequirement};
use distributed_uniformity::lowerbound::theory;
use distributed_uniformity::probability::{
    families, DenseDistribution, DualSampler, SampleBackend,
};
use distributed_uniformity::{Rule, UniformityTester};
use rand::SeedableRng;
// BTreeMap, not HashMap: flag lookups never iterate today, but any
// future "unknown option" listing must print in a stable order
// (the unordered-collection lint bans HashMap here).
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "\
dut — distributed uniformity testing

USAGE:
    dut <COMMAND> [--key value]...

COMMANDS:
    test      run a tester and report acceptance rates
    predict   print the theory predictions for a configuration
    advise    recommend a decision rule
    faults    render error-vs-fault-rate curves and Byzantine tolerance
    report    summarize a JSONL trace (written via DUT_TRACE=<path>)
    lint      run workspace static analysis (determinism / numeric / concurrency rules)
    bench     time the per-draw, histogram and auto sampling backends
    serve     run the long-lived uniformity-testing TCP service
    loadgen   drive a running service at a fixed request rate
    top       live dashboard over a running service's stats
    fuzz      structured adversarial testing (protocol / differential / chaos)

COMMON OPTIONS:
    --n <int>         domain size                  [default: 1024]
    --k <int>         number of players            [default: 16]
    --eps <float>     proximity parameter          [default: 0.5]
    --seed <int>      master seed                  [default: 20190729]

test OPTIONS:
    --rule <name>     and | threshold:<T> | balanced | centralized
                                                   [default: balanced]
    --input <name>    uniform | two-level | alternating | zipf | hard
                                                   [default: two-level]
    --q <int>         samples per player           [default: predicted]
    --trials <int>    protocol executions          [default: 200]
    --backend <name>  per-draw | histogram | auto | both
                                                   [default: legacy alias path]

advise OPTIONS:
    --locality <name> and | threshold:<T> | any    [default: any]

faults OPTIONS:
    --model <name>    iid | ge | targeted          [default: iid]
    --policy <name>   assume-accept | assume-reject | exclude
                                                   [default: assume-accept]
    --recovery <name> none | repeat:<R> | ack:<A>  [default: none]
    --t <int>         counting-rule threshold      [default: max(2, k/4)]
    --q <int>         samples per player           [default: 100]
    --trials <int>    runs per sweep point         [default: 60]

report USAGE:
    dut report <trace.jsonl> [<trace.jsonl>...]
        one trace: per-event summary; several traces: their clock
        anchors place all events on one shared wall-clock axis

lint USAGE:
    dut lint [workspace-root]     lint the workspace (default: cwd)
    dut lint --rules              list rule IDs and what they enforce
    dut lint --format json        machine-readable findings (stable ids,
                                  schema dut-analyze-findings/v1)
    dut lint --baseline <file>    ratchet mode: findings in the committed
                                  baseline pass, new findings fail, stale
                                  baseline entries fail
    dut lint --write-baseline <file>   capture current findings as the
                                  new baseline (schema dut-analyze-baseline/v1)
    dut lint --list-suppressions  audit every dut-lint allow with its reason

bench USAGE:
    dut bench [--smoke] [--probe] [--out <file>]
        time per-draw, histogram and the cost-model auto backend over
        an (n, q) grid and write a dut-bench-perf/v2 baseline with
        thread/host/probe provenance  [default: BENCH_perf.json];
        --probe micro-calibrates the cost model to this host first;
        fails if auto trails the better fixed engine by >5% anywhere
    dut bench --check <file>             validate a written baseline
                                         (accepts v1 and v2 schemas)

serve USAGE:
    dut serve [--addr <host:port>] [--workers <N>] [--shards <N>]
              [--cache-cap <N>] [--cache-shards <N>] [--queue-cap <N>]
              [--coalesce <N>] [--tenant <name:rate:burst:priority>]
              [--trace-sample <N>] [--idle-timeout <secs>]
              [--error-budget <N>] [--max-line-bytes <N>] [--probe]
        serve newline-delimited JSON requests until a client sends
        {\"cmd\":\"shutdown\"}; also answers {\"cmd\":\"stats\"} (windowed
        metrics + SLO) and {\"cmd\":\"flight\"} (flight-recorder dump)
        [defaults: 127.0.0.1:7979, 4 workers, 2 shards, 32 cached
        testers in 8 cache shards, 64 queued requests, coalesce 16,
        1-in-64 trace sampling]; --shards event loops park persistent
        connections and dispatch complete request lines to the worker
        pool (queue depth and shed decisions count requests, not
        connections); --coalesce answers up to N queued requests for
        one prepared tester in a single pass; --tenant (repeatable)
        adds a per-tenant token-bucket quota with a shed priority;
        hardening: connections with no completed line for
        --idle-timeout are reaped (default 30s), lines past
        --max-line-bytes get {\"error\":\"line_too_long\"} then close,
        and a connection exhausting --error-budget error replies is
        closed (default 64, 0 disables); --probe times both sampling
        engines at startup and rescales the cost model that picks the
        backend per request

loadgen USAGE:
    dut loadgen [--addr <host:port>] [--rps <N>] [--duration <secs>]
                [--conns <N>] [--pipeline <N>] [--smoke] [--stats-check]
                [--bench-out <file>] [--check <file>]
                [--trace <file>] [--trace-out <file>]
                [--shutdown] [--shutdown-only]
                [--chaos] [--chaos-rate <f>] [--chaos-seed <N>]
        open-loop load at --rps for --duration, then print achieved
        throughput and p50/p95/p99 latency; --pipeline keeps a window
        of N requests in flight per connection (one write per window,
        replies drained in send order); --smoke runs the CI
        gate (>=20000 req/s, zero shed, p99 under 50ms,
        offline-identical verdicts); --stats-check cross-checks the
        server's {\"cmd\":\"stats\"} accounting against the client
        tally (polling mid-load); --bench-out writes a
        dut-bench-serve/v2 artifact and --check validates one
        without generating load (v1 accepted); --trace-out writes a
        replayable bursty/diurnal arrival trace (dut-serve-trace/v1,
        no load generated) and --trace replays one against the
        server; --shutdown stops the server afterwards,
        --shutdown-only does nothing else;
        --chaos replaces the honest load with the hostile client mix
        (slowloris, half-open connects, mid-frame cuts, idle holds,
        reconnect storms; --conns lanes, Gilbert-Elliott bursts at
        --chaos-rate) and verifies the server still answers bit-
        exactly afterwards

fuzz USAGE:
    dut fuzz --smoke [--seed <N>] [--corpus-dir <dir>]
        run all three attack planes bounded with fixed seeds against
        in-process servers — the CI gate
    dut fuzz --plane <protocol|differential|chaos> [--iters <N>]
             [--seed <N>] [--duration <secs>] [--addr <host:port>]
             [--corpus-dir <dir>]
        run one plane; protocol and differential attack --addr when
        given, otherwise a fuzz-owned in-process server; violations
        persist to --corpus-dir as replayable dut-fuzz-corpus/v1
        entries
    dut fuzz --check <file|dir>...
        validate corpus entries against the schema
    dut fuzz --replay <file|dir>... [--addr <host:port>]
        replay corpus entries as assertions (protocol entries against
        --addr or an in-process server)

top USAGE:
    dut top [--addr <host:port>] [--interval <secs>] [--once]
        poll {\"cmd\":\"stats\"} and render a live dashboard (traffic,
        cache, latency phases, SLO burn); --once prints one frame
        and exits  [defaults: 127.0.0.1:7979, 1s interval]
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `report` and `lint` take positional args, not --key value pairs.
    if args.first().map(String::as_str) == Some("report") {
        return match cmd_report(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("lint") {
        return cmd_lint(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench") {
        return cmd_bench(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return cmd_serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("loadgen") {
        return cmd_loadgen(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("top") {
        return cmd_top(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        return cmd_fuzz(&args[1..]);
    }
    let Some((command, options)) = parse(&args) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // DUT_TRACE=<path> traces this invocation too.
    dut_obs::init_from_env();
    let result = match command.as_str() {
        "test" => cmd_test(&options),
        "predict" => cmd_predict(&options),
        "advise" => cmd_advise(&options),
        "faults" => cmd_faults(&options),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    let recorder = dut_obs::global();
    recorder.emit_metrics_snapshot();
    recorder.flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `dut help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn parse(args: &[String]) -> Option<(String, BTreeMap<String, String>)> {
    let command = args.first()?.clone();
    let mut options = BTreeMap::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        let value = args.get(i + 1)?;
        options.insert(key.to_owned(), value.clone());
        i += 2;
    }
    Some((command, options))
}

fn get_usize(
    options: &BTreeMap<String, String>,
    key: &str,
    default: usize,
) -> Result<usize, String> {
    match options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} needs an integer, got `{v}`")),
    }
}

fn get_f64(options: &BTreeMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} needs a number, got `{v}`")),
    }
}

fn parse_rule(spec: &str, k: usize) -> Result<Rule, String> {
    match spec {
        "and" => Ok(Rule::And),
        "balanced" => Ok(Rule::Balanced),
        "centralized" => Ok(Rule::Centralized),
        other => {
            if let Some(t) = other.strip_prefix("threshold:") {
                let t: usize = t
                    .parse()
                    .map_err(|_| format!("threshold rule needs an integer, got `{t}`"))?;
                if t == 0 || t > k {
                    return Err(format!("threshold {t} outside 1..={k}"));
                }
                Ok(Rule::TThreshold { t })
            } else {
                Err(format!(
                    "unknown rule `{other}` (and | threshold:<T> | balanced | centralized)"
                ))
            }
        }
    }
}

fn parse_input(
    spec: &str,
    n: usize,
    eps: f64,
    rng: &mut rand::rngs::StdRng,
) -> Result<DenseDistribution, String> {
    match spec {
        "uniform" => Ok(families::uniform(n)),
        "two-level" => families::two_level(n, eps).map_err(|e| e.to_string()),
        "alternating" => families::alternating(n, eps).map_err(|e| e.to_string()),
        "zipf" => families::zipf(n, 1.0).map_err(|e| e.to_string()),
        "hard" => {
            // A random member of the paper's nu_z family; requires a
            // power-of-two domain of size >= 4.
            if !n.is_power_of_two() || n < 4 {
                return Err("the hard family needs a power-of-two domain >= 4".into());
            }
            let ell = n.trailing_zeros() - 1;
            let dom = distributed_uniformity::probability::PairedDomain::new(ell);
            let z = distributed_uniformity::probability::PerturbationVector::random(
                dom.cube_size(),
                rng,
            );
            dom.perturbed_distribution(&z, eps)
                .map_err(|e| e.to_string())
        }
        other => Err(format!(
            "unknown input `{other}` (uniform | two-level | alternating | zipf | hard)"
        )),
    }
}

fn cmd_test(options: &BTreeMap<String, String>) -> Result<(), String> {
    let n = get_usize(options, "n", 1024)?;
    let k = get_usize(options, "k", 16)?;
    let eps = get_f64(options, "eps", 0.5)?;
    let seed = get_usize(options, "seed", 20_190_729)? as u64;
    let trials = get_usize(options, "trials", 200)?;
    let rule = parse_rule(options.get("rule").map_or("balanced", String::as_str), k)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let input_spec = options.get("input").map_or("two-level", String::as_str);
    let input = parse_input(input_spec, n, eps, &mut rng)?;

    let tester = UniformityTester::builder()
        .domain_size(n)
        .players(k)
        .epsilon(eps)
        .rule(rule)
        .build()
        .map_err(|e| e.to_string())?;
    let q = match options.get("q") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--q needs an integer, got `{v}`"))?,
        None => tester.predicted_sample_count(),
    };
    println!("configuration: n={n} k={k} eps={eps} rule={rule} q={q} input={input_spec}");
    let prepared = tester.prepare(q, &mut rng);

    if let Some(spec) = options.get("backend") {
        let backends: Vec<SampleBackend> = match spec.as_str() {
            "both" => SampleBackend::ALL.to_vec(),
            s => vec![SampleBackend::parse(s).ok_or_else(|| {
                format!("unknown backend `{s}` (per-draw | histogram | auto | both)")
            })?],
        };
        let target = input.dual_sampler();
        let uniform = families::uniform(n).dual_sampler();
        for backend in backends {
            let accept = prepared.acceptance_rate_dual(&target, backend, trials, &mut rng);
            println!(
                "[{backend}] acceptance on `{input_spec}` over {trials} runs: {:.1}%",
                100.0 * accept
            );
            if input_spec != "uniform" {
                let completeness =
                    prepared.acceptance_rate_dual(&uniform, backend, trials, &mut rng);
                println!(
                    "[{backend}] acceptance on uniform (completeness):      {:.1}%",
                    100.0 * completeness
                );
            }
        }
        return Ok(());
    }

    let target = input.alias_sampler();
    let accept = prepared.acceptance_rate(&target, trials, &mut rng);
    println!(
        "acceptance on `{input_spec}` over {trials} runs: {:.1}%",
        100.0 * accept
    );

    if input_spec != "uniform" {
        let uniform = families::uniform(n).alias_sampler();
        let completeness = prepared.acceptance_rate(&uniform, trials, &mut rng);
        println!(
            "acceptance on uniform (completeness):      {:.1}%",
            100.0 * completeness
        );
        let dist = distributed_uniformity::probability::distance::l1_distance(
            &input,
            &families::uniform(n),
        );
        println!("input l1 distance from uniform: {dist:.4}");
        if dist >= eps {
            let ok = completeness >= 2.0 / 3.0 && accept <= 1.0 / 3.0;
            println!(
                "two-sided 2/3 guarantee: {}",
                if ok { "HOLDS" } else { "violated at this q" }
            );
        }
    }
    Ok(())
}

/// `dut lint [root]` — workspace static analysis (dut-analyze).
///
/// Exits nonzero on any unsuppressed finding, so CI can gate on it.
/// The pass runs under a `lint.workspace` span and emits a
/// `lint_summary` event, so `dut report` shows analysis cost next to
/// experiment cost.
fn cmd_lint(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--rules") {
        print!("{}", dut_analyze::rules_table());
        return ExitCode::SUCCESS;
    }
    let usage = "usage: dut lint [workspace-root] [--rules] [--format text|json] \
                 [--baseline <file>] [--write-baseline <file>] [--list-suppressions]";
    let mut root: Option<std::path::PathBuf> = None;
    let mut format = String::from("text");
    let mut baseline_path: Option<std::path::PathBuf> = None;
    let mut write_baseline: Option<std::path::PathBuf> = None;
    let mut list_suppressions = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("{usage}");
                    return ExitCode::FAILURE;
                };
                if value != "text" && value != "json" {
                    eprintln!("error: --format takes `text` or `json`, got `{value}`");
                    return ExitCode::FAILURE;
                }
                format = value.clone();
                i += 2;
            }
            "--baseline" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("{usage}");
                    return ExitCode::FAILURE;
                };
                baseline_path = Some(std::path::PathBuf::from(value));
                i += 2;
            }
            "--write-baseline" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("{usage}");
                    return ExitCode::FAILURE;
                };
                write_baseline = Some(std::path::PathBuf::from(value));
                i += 2;
            }
            "--list-suppressions" => {
                list_suppressions = true;
                i += 1;
            }
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown lint flag `{flag}`\n{usage}");
                return ExitCode::FAILURE;
            }
            path => {
                if root.is_some() {
                    eprintln!("{usage}");
                    return ExitCode::FAILURE;
                }
                root = Some(std::path::PathBuf::from(path));
                i += 1;
            }
        }
    }
    let root = match root {
        Some(dir) => dir,
        None => match std::env::current_dir() {
            Ok(dir) => dir,
            Err(error) => {
                eprintln!("error: cannot resolve cwd: {error}");
                return ExitCode::FAILURE;
            }
        },
    };

    if list_suppressions {
        return match dut_analyze::list_suppressions(&root) {
            Ok(records) => {
                for r in &records {
                    println!("{}:{}: allow({}): {}", r.path, r.line, r.rule, r.reason);
                }
                println!("dut lint: {} suppression(s) on file", records.len());
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }

    // Baseline file contents are read before the (slow) lint pass so
    // a malformed baseline fails fast.
    let baseline = match &baseline_path {
        None => None,
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))
            .and_then(|text| dut_analyze::baseline::parse(&text))
        {
            Ok(parsed) => Some(parsed),
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::FAILURE;
            }
        },
    };

    dut_obs::init_from_env();
    let result = {
        let _span = dut_obs::span!("lint.workspace");
        dut_analyze::lint_workspace(&root)
    };
    let recorder = dut_obs::global();
    let code = match result {
        Ok(mut report) => {
            if let Some(path) = &write_baseline {
                let rendered = dut_analyze::baseline::render(&report.findings);
                if let Err(error) = std::fs::write(path, rendered) {
                    eprintln!("error: cannot write baseline {}: {error}", path.display());
                    recorder.flush();
                    return ExitCode::FAILURE;
                }
                println!(
                    "dut lint: wrote baseline {} ({} finding{})",
                    path.display(),
                    report.findings.len(),
                    if report.findings.len() == 1 { "" } else { "s" },
                );
                recorder.flush();
                return ExitCode::SUCCESS;
            }
            if let Some(baseline) = &baseline {
                report.apply_baseline(&baseline.ids());
            }
            recorder.emit_with(|| {
                dut_obs::Event::new("lint_summary")
                    .with("files", report.files_checked as u64)
                    .with("findings", report.findings.len() as u64)
                    .with("suppressed", report.suppressed as u64)
                    .with("baselined", report.baselined as u64)
                    .with("stale_baseline", report.stale_baseline.len() as u64)
            });
            if format == "json" {
                println!("{}", dut_analyze::render_report_json(&report));
            } else {
                println!("{report}");
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    };
    recorder.flush();
    code
}

/// `dut serve` — run the concurrent uniformity-testing service until
/// a client sends `{"cmd":"shutdown"}`.
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut config = dut_serve::ServeConfig::default();
    let mut probe = false;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--probe" {
            probe = true;
            i += 1;
            continue;
        }
        let need_value = |key: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{key} needs a value"))
        };
        let parsed = match args[i].as_str() {
            "--addr" => need_value("--addr").map(|v| config.addr = v),
            "--workers" => {
                parse_count(&need_value("--workers"), "--workers").map(|v| config.workers = v)
            }
            "--cache-cap" => {
                parse_count(&need_value("--cache-cap"), "--cache-cap").map(|v| config.cache_cap = v)
            }
            "--queue-cap" => {
                parse_count(&need_value("--queue-cap"), "--queue-cap").map(|v| config.queue_cap = v)
            }
            "--trace-sample" => need_value("--trace-sample").and_then(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("--trace-sample needs an integer, got `{v}`"))
                    .map(|v| config.trace_sample = v)
            }),
            "--idle-timeout" => need_value("--idle-timeout").and_then(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("--idle-timeout needs seconds, got `{v}`"))
                    .map(|v| {
                        config.idle_timeout =
                            std::time::Duration::from_secs_f64(v.clamp(0.05, 3600.0));
                    })
            }),
            "--error-budget" => need_value("--error-budget").and_then(|v| {
                v.parse::<u32>()
                    .map_err(|_| format!("--error-budget needs an integer, got `{v}`"))
                    .map(|v| config.error_budget = v)
            }),
            "--max-line-bytes" => parse_count(&need_value("--max-line-bytes"), "--max-line-bytes")
                .map(|v| config.max_line_bytes = v),
            "--shards" => {
                parse_count(&need_value("--shards"), "--shards").map(|v| config.shards = v)
            }
            "--cache-shards" => parse_count(&need_value("--cache-shards"), "--cache-shards")
                .map(|v| config.cache_shards = v),
            "--coalesce" => {
                parse_count(&need_value("--coalesce"), "--coalesce").map(|v| config.coalesce = v)
            }
            "--tenant" => need_value("--tenant")
                .and_then(|v| parse_tenant_quota(&v))
                .map(|quota| config.tenancy.quotas.push(quota)),
            other => Err(format!("unknown serve option `{other}`")),
        };
        if let Err(message) = parsed {
            eprintln!("error: {message}");
            eprintln!(
                "usage: dut serve [--addr <host:port>] [--workers <N>] [--shards <N>] \
                 [--cache-cap <N>] [--cache-shards <N>] [--queue-cap <N>] [--coalesce <N>] \
                 [--tenant <name:rate:burst:priority>] [--trace-sample <N>] \
                 [--idle-timeout <secs>] [--error-budget <N>] [--max-line-bytes <N>] [--probe]"
            );
            return ExitCode::FAILURE;
        }
        i += 2;
    }
    dut_obs::init_from_env();
    if probe {
        let (per_draw_scale, histogram_scale) =
            distributed_uniformity::probability::costmodel::run_probe();
        println!(
            "probe: cost model rescaled \u{d7}{per_draw_scale:.2} per-draw, \
             \u{d7}{histogram_scale:.2} histogram"
        );
    }
    let handle = match dut_serve::server::start(&config) {
        Ok(handle) => handle,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "dut serve listening on {} ({} workers, {} shards, cache {} testers, queue {} requests)",
        handle.local_addr(),
        config.workers.max(1),
        config.shards.max(1),
        config.cache_cap.max(1),
        config.queue_cap.max(1)
    );
    println!("send {{\"cmd\":\"shutdown\"}} to stop");
    handle.join();
    println!("dut serve: drained and stopped");
    let recorder = dut_obs::global();
    recorder.emit_metrics_snapshot();
    recorder.flush();
    ExitCode::SUCCESS
}

/// `dut loadgen` — open-loop load against a running `dut serve`.
fn cmd_loadgen(args: &[String]) -> ExitCode {
    let mut config = dut_serve::LoadgenConfig::default();
    let mut smoke = false;
    let mut shutdown_after = false;
    let mut shutdown_only = false;
    let mut stats_check = false;
    let mut bench_out: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut duration_secs = 2.0f64;
    let mut chaos = false;
    let mut chaos_rate = 0.3f64;
    let mut chaos_seed = 7u64;
    let mut i = 0;
    while i < args.len() {
        let need_value = |key: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{key} needs a value"))
        };
        let parsed = match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
                continue;
            }
            "--shutdown" => {
                shutdown_after = true;
                i += 1;
                continue;
            }
            "--shutdown-only" => {
                shutdown_only = true;
                i += 1;
                continue;
            }
            "--stats-check" => {
                stats_check = true;
                i += 1;
                continue;
            }
            "--chaos" => {
                chaos = true;
                i += 1;
                continue;
            }
            "--chaos-rate" => need_value("--chaos-rate").and_then(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("--chaos-rate needs a fraction, got `{v}`"))
                    .map(|v| chaos_rate = v.clamp(0.0, 0.375))
            }),
            "--chaos-seed" => need_value("--chaos-seed").and_then(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("--chaos-seed needs an integer, got `{v}`"))
                    .map(|v| chaos_seed = v)
            }),
            "--bench-out" => need_value("--bench-out").map(|v| bench_out = Some(v)),
            "--check" => need_value("--check").map(|v| check_path = Some(v)),
            "--trace" => need_value("--trace").map(|v| trace_path = Some(v)),
            "--trace-out" => need_value("--trace-out").map(|v| trace_out = Some(v)),
            "--addr" => need_value("--addr").map(|v| config.addr = v),
            "--rps" => need_value("--rps").and_then(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("--rps needs an integer, got `{v}`"))
                    .map(|v| config.rps = v.max(1))
            }),
            "--duration" => need_value("--duration").and_then(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("--duration needs seconds, got `{v}`"))
                    .map(|v| duration_secs = v.clamp(0.1, 600.0))
            }),
            "--conns" => {
                parse_count(&need_value("--conns"), "--conns").map(|v| config.connections = v)
            }
            "--pipeline" => {
                parse_count(&need_value("--pipeline"), "--pipeline").map(|v| config.pipeline = v)
            }
            other => Err(format!("unknown loadgen option `{other}`")),
        };
        if let Err(message) = parsed {
            eprintln!("error: {message}");
            eprintln!(
                "usage: dut loadgen [--addr <host:port>] [--rps <N>] [--duration <secs>] \
                 [--conns <N>] [--pipeline <N>] [--smoke] [--stats-check] [--bench-out <file>] \
                 [--check <file>] [--trace <file>] [--trace-out <file>] [--shutdown] \
                 [--shutdown-only] [--chaos] [--chaos-rate <f>] [--chaos-seed <N>]"
            );
            return ExitCode::FAILURE;
        }
        i += 2;
    }
    // `--check` validates an existing artifact; no load is generated.
    if let Some(path) = check_path {
        return match std::fs::read_to_string(&path) {
            Ok(text) => match dut_serve::loadgen::check_bench_json(&text) {
                Ok(()) => {
                    println!(
                        "{path}: valid {} artifact",
                        dut_serve::loadgen::BENCH_SCHEMA
                    );
                    ExitCode::SUCCESS
                }
                Err(message) => {
                    eprintln!("{path}: {message}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // `--trace-out` generates a replayable arrival trace; no load is
    // generated and no server is needed.
    if let Some(path) = trace_out {
        let trace = dut_serve::trace::generate(&dut_serve::TraceConfig {
            rps: config.rps,
            duration: std::time::Duration::from_secs_f64(duration_secs),
            lanes: config.connections.max(1) as u64,
            ..dut_serve::TraceConfig::default()
        });
        return match std::fs::write(&path, trace.render()) {
            Ok(()) => {
                println!(
                    "trace written to {path}: {} arrivals over {:.2}s on {} lanes",
                    trace.events.len(),
                    std::time::Duration::from_micros(trace.span_micros).as_secs_f64(),
                    trace.lanes
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if shutdown_only {
        return match dut_serve::loadgen::send_shutdown(&config.addr) {
            Ok(()) => {
                println!("server at {} acknowledged shutdown", config.addr);
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    // `--chaos` replaces the honest load with the hostile client mix;
    // the verdict is survival (every probe answered or cleanly shed,
    // bit-exact known-good reply and stats afterwards).
    if chaos {
        let result = dut_serve::chaos::run(&dut_serve::chaos::ChaosConfig {
            addr: config.addr.clone(),
            duration: std::time::Duration::from_secs_f64(duration_secs),
            lanes: config.connections.max(1),
            rate: chaos_rate,
            seed: chaos_seed,
            ..dut_serve::chaos::ChaosConfig::default()
        });
        let code = match result {
            Ok(report) => {
                println!("chaos: {}", report.summary());
                if report.survived() {
                    println!("chaos: PASS (server survived the hostile mix)");
                    ExitCode::SUCCESS
                } else {
                    eprintln!("chaos FAIL: server did not survive the hostile mix");
                    ExitCode::FAILURE
                }
            }
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
        if shutdown_after {
            if let Err(message) = dut_serve::loadgen::send_shutdown(&config.addr) {
                eprintln!("error: {message}");
                return ExitCode::FAILURE;
            }
            println!("server at {} acknowledged shutdown", config.addr);
        }
        return code;
    }
    if smoke {
        config.rps = 30_000;
        duration_secs = 2.0;
        config.connections = 8;
        config.pipeline = 4;
        config.verify_offline = true;
    }
    config.duration = std::time::Duration::from_secs_f64(duration_secs);
    dut_obs::init_from_env();
    let result = if let Some(path) = trace_path {
        // `--trace` replays a recorded arrival schedule instead of the
        // open-loop generator; lanes and timing come from the file.
        std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|text| dut_serve::Trace::parse(&text))
            .and_then(|trace| {
                println!(
                    "replaying {path}: {} arrivals over {:.2}s on {} lanes",
                    trace.events.len(),
                    std::time::Duration::from_micros(trace.span_micros).as_secs_f64(),
                    trace.lanes
                );
                dut_serve::loadgen::run_trace(&config, &trace)
            })
            .map(|report| (report, None))
    } else if stats_check {
        dut_serve::loadgen::run_checked(&config).map(|(report, check)| (report, Some(check)))
    } else {
        dut_serve::loadgen::run(&config).map(|report| (report, None))
    };
    let code = match result {
        Ok((report, check)) => {
            println!(
                "loadgen: {} sent, {} replies, {} shed, {} errors in {:.2}s ({:.0} req/s)",
                report.sent,
                report.replies,
                report.shed,
                report.errors,
                report.elapsed.as_secs_f64(),
                report.achieved_rps
            );
            println!(
                "latency: p50 {}us  p95 {}us  p99 {}us",
                report.p50_micros, report.p95_micros, report.p99_micros
            );
            if config.verify_offline {
                println!(
                    "offline agreement: {} of {} replies bit-identical",
                    report.replies - report.mismatches,
                    report.replies
                );
            }
            let mut code = if smoke {
                smoke_verdict(&report)
            } else {
                ExitCode::SUCCESS
            };
            let server_stats = check.as_ref().map(|c| c.post.clone());
            if let Some(check) = check {
                println!(
                    "stats-check: {} mid-load polls answered; server delta {} requests",
                    check.mid_polls,
                    check.post.requests.saturating_sub(check.pre.requests)
                );
                if check.passed() {
                    println!("stats-check: PASS");
                } else {
                    for failure in &check.failures {
                        eprintln!("stats-check FAIL: {failure}");
                    }
                    code = ExitCode::FAILURE;
                }
            }
            if let Some(path) = bench_out {
                let line = dut_serve::loadgen::bench_json(&report, server_stats.as_ref());
                match std::fs::write(&path, format!("{line}\n")) {
                    Ok(()) => println!("bench artifact written to {path}"),
                    Err(e) => {
                        eprintln!("error: cannot write {path}: {e}");
                        code = ExitCode::FAILURE;
                    }
                }
            }
            code
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    };
    if shutdown_after {
        match dut_serve::loadgen::send_shutdown(&config.addr) {
            Ok(()) => println!("server at {} acknowledged shutdown", config.addr),
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    let recorder = dut_obs::global();
    recorder.emit_metrics_snapshot();
    recorder.flush();
    code
}

/// The `--smoke` gate: sustained throughput with zero sheds, zero
/// errors, zero offline disagreements, and a sane tail.
fn smoke_verdict(report: &dut_serve::LoadgenReport) -> ExitCode {
    let mut failures = Vec::new();
    if report.achieved_rps < 20_000.0 {
        failures.push(format!(
            "achieved {:.0} req/s, smoke floor is 20000",
            report.achieved_rps
        ));
    }
    if report.shed > 0 {
        failures.push(format!(
            "{} requests shed below the queue bound",
            report.shed
        ));
    }
    if report.errors > 0 {
        failures.push(format!("{} transport/protocol errors", report.errors));
    }
    if report.mismatches > 0 {
        failures.push(format!(
            "{} replies disagreed with the offline engine",
            report.mismatches
        ));
    }
    if report.p99_micros > 50_000 {
        failures.push(format!(
            "p99 latency {}us exceeds the 50ms smoke bound",
            report.p99_micros
        ));
    }
    if failures.is_empty() {
        println!("smoke: PASS");
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("smoke FAIL: {failure}");
        }
        ExitCode::FAILURE
    }
}

/// Parses a `--tenant name:rate:burst:priority` quota spec. Rate is
/// requests/second (0 = unlimited but still tracked), burst is the
/// bucket depth, priority orders eviction at the queue cap (higher
/// wins).
fn parse_tenant_quota(spec: &str) -> Result<dut_serve::TenantQuota, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 4 || parts[0].is_empty() {
        return Err(format!(
            "--tenant needs `name:rate:burst:priority`, got `{spec}`"
        ));
    }
    let rate = parts[1]
        .parse::<f64>()
        .map_err(|_| format!("--tenant rate must be a number, got `{}`", parts[1]))?;
    let burst = parts[2]
        .parse::<f64>()
        .map_err(|_| format!("--tenant burst must be a number, got `{}`", parts[2]))?;
    let priority = parts[3]
        .parse::<u8>()
        .map_err(|_| format!("--tenant priority must be 0-255, got `{}`", parts[3]))?;
    Ok(dut_serve::TenantQuota {
        name: parts[0].to_owned(),
        rate: rate.max(0.0),
        burst: burst.max(0.0),
        priority,
    })
}

/// Parses a positive integer option value (clamped to at least 1).
fn parse_count(value: &Result<String, String>, key: &str) -> Result<usize, String> {
    let value = value.as_ref().map_err(Clone::clone)?;
    value
        .parse::<usize>()
        .map(|v| v.max(1))
        .map_err(|_| format!("{key} needs a positive integer, got `{value}`"))
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    match args {
        [] => Err("usage: dut report <trace.jsonl> [<trace.jsonl>...]".into()),
        [path] => {
            let summary = dut_obs::report::summarize_file(path)?;
            print!("{summary}");
            Ok(())
        }
        paths => {
            // Several traces: use their clock anchors to place every
            // process on one shared wall-clock axis.
            let paths: Vec<&str> = paths.iter().map(String::as_str).collect();
            let summary = dut_obs::report::summarize_aligned(&paths)?;
            print!("{summary}");
            Ok(())
        }
    }
}

/// `dut top` — live dashboard polling a running server's stats.
fn cmd_top(args: &[String]) -> ExitCode {
    let mut config = dut_serve::top::TopConfig {
        addr: "127.0.0.1:7979".to_owned(),
        ..dut_serve::top::TopConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        let need_value = |key: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{key} needs a value"))
        };
        let parsed = match args[i].as_str() {
            "--once" => {
                config.frames = Some(1);
                config.clear = false;
                i += 1;
                continue;
            }
            "--addr" => need_value("--addr").map(|v| config.addr = v),
            "--interval" => need_value("--interval").and_then(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("--interval needs seconds, got `{v}`"))
                    .map(|v| {
                        config.interval = std::time::Duration::from_secs_f64(v.clamp(0.1, 60.0));
                    })
            }),
            other => Err(format!("unknown top option `{other}`")),
        };
        if let Err(message) = parsed {
            eprintln!("error: {message}");
            eprintln!("usage: dut top [--addr <host:port>] [--interval <secs>] [--once]");
            return ExitCode::FAILURE;
        }
        i += 2;
    }
    let mut stdout = std::io::stdout();
    match dut_serve::top::run(&config, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `dut fuzz` — structured adversarial testing (crates/fuzz).
///
/// `--smoke` runs all three attack planes bounded with fixed seeds —
/// the CI gate. `--plane` runs one plane with tunable iteration
/// counts. `--check` validates corpus entries against the
/// `dut-fuzz-corpus/v1` schema; `--replay` re-fires them as
/// assertions.
fn cmd_fuzz(args: &[String]) -> ExitCode {
    const FUZZ_USAGE: &str = "usage: dut fuzz --smoke [--seed <N>] [--corpus-dir <dir>]\n\
       dut fuzz --plane <protocol|differential|chaos> [--iters <N>] [--seed <N>]\n\
                [--duration <secs>] [--addr <host:port>] [--corpus-dir <dir>]\n\
       dut fuzz --check <file|dir>...\n\
       dut fuzz --replay <file|dir>... [--addr <host:port>]";
    let mut smoke = false;
    let mut plane: Option<String> = None;
    let mut iters: Option<u64> = None;
    let mut seed = 7u64;
    let mut duration_secs = 0.8f64;
    let mut addr: Option<String> = None;
    let mut corpus_dir: Option<std::path::PathBuf> = None;
    let mut mode_check = false;
    let mut mode_replay = false;
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let need_value = |key: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{key} needs a value"))
        };
        let parsed = match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
                continue;
            }
            "--check" => {
                mode_check = true;
                i += 1;
                continue;
            }
            "--replay" => {
                mode_replay = true;
                i += 1;
                continue;
            }
            "--plane" => need_value("--plane").map(|v| plane = Some(v)),
            "--iters" => need_value("--iters").and_then(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("--iters needs an integer, got `{v}`"))
                    .map(|v| iters = Some(v.max(1)))
            }),
            "--seed" => need_value("--seed").and_then(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("--seed needs an integer, got `{v}`"))
                    .map(|v| seed = v)
            }),
            "--duration" => need_value("--duration").and_then(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("--duration needs seconds, got `{v}`"))
                    .map(|v| duration_secs = v.clamp(0.1, 600.0))
            }),
            "--addr" => need_value("--addr").map(|v| addr = Some(v)),
            "--corpus-dir" => {
                need_value("--corpus-dir").map(|v| corpus_dir = Some(std::path::PathBuf::from(v)))
            }
            flag if flag.starts_with("--") => Err(format!("unknown fuzz option `{flag}`")),
            path => {
                paths.push(path.to_owned());
                i += 1;
                continue;
            }
        };
        if let Err(message) = parsed {
            eprintln!("error: {message}");
            eprintln!("{FUZZ_USAGE}");
            return ExitCode::FAILURE;
        }
        i += 2;
    }
    if mode_check {
        return fuzz_check(&paths);
    }
    if mode_replay {
        return fuzz_replay(&paths, addr.as_deref());
    }
    if smoke {
        let config = dut_fuzz::SmokeConfig {
            seed,
            corpus_dir,
            ..dut_fuzz::SmokeConfig::default()
        };
        return match dut_fuzz::smoke(&config) {
            Ok(report) => print_smoke_report(&report),
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    match plane.as_deref() {
        Some("protocol") => {
            let (addr, server) = match fuzz_target(addr) {
                Ok(pair) => pair,
                Err(message) => {
                    eprintln!("error: {message}");
                    return ExitCode::FAILURE;
                }
            };
            let result =
                dut_fuzz::protocol_plane::run(&dut_fuzz::protocol_plane::ProtocolFuzzConfig {
                    iters: iters.unwrap_or(100),
                    seed,
                    addr,
                    corpus_dir,
                });
            stop_fuzz_server(server);
            match result {
                Ok(report) => print_protocol_report(&report),
                Err(message) => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("differential") => {
            let (addr, server) = match fuzz_target(addr) {
                Ok(pair) => pair,
                Err(message) => {
                    eprintln!("error: {message}");
                    return ExitCode::FAILURE;
                }
            };
            let result = dut_fuzz::differential::run(&dut_fuzz::differential::DiffConfig {
                iters: iters.unwrap_or(32),
                seed,
                addr: Some(addr),
                corpus_dir,
                cross_backend_every: 4,
            });
            stop_fuzz_server(server);
            match result {
                Ok(report) => print_diff_report(&report),
                Err(message) => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("chaos") => {
            match dut_fuzz::chaos_plane::run(&dut_fuzz::chaos_plane::ChaosPlaneConfig {
                duration: std::time::Duration::from_secs_f64(duration_secs),
                lanes: 3,
                rate: 0.3,
                seed,
            }) {
                Ok(report) => {
                    println!("chaos: {}", report.summary());
                    if report.survived() {
                        println!("chaos: PASS");
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("chaos FAIL");
                        ExitCode::FAILURE
                    }
                }
                Err(message) => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(other) => {
            eprintln!("error: unknown plane `{other}` (protocol | differential | chaos)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{FUZZ_USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Resolves the fuzz target: an explicit `--addr`, or a fuzz-owned
/// in-process server the caller must stop via [`stop_fuzz_server`].
fn fuzz_target(
    addr: Option<String>,
) -> Result<(String, Option<dut_serve::server::ServerHandle>), String> {
    match addr {
        Some(addr) => Ok((addr, None)),
        None => {
            let handle = dut_serve::server::start(&dut_serve::ServeConfig {
                addr: "127.0.0.1:0".to_owned(),
                workers: 4,
                queue_cap: 32,
                ..dut_serve::ServeConfig::default()
            })?;
            let addr = handle.local_addr().to_string();
            println!("fuzz: attacking in-process server at {addr}");
            Ok((addr, Some(handle)))
        }
    }
}

fn stop_fuzz_server(server: Option<dut_serve::server::ServerHandle>) {
    if let Some(handle) = server {
        handle.request_shutdown();
        handle.join();
    }
}

fn print_smoke_report(report: &dut_fuzz::SmokeReport) -> ExitCode {
    let protocol_code = print_protocol_report(&report.protocol);
    let diff_code = print_diff_report(&report.differential);
    println!("chaos: {}", report.chaos.summary());
    if report.passed() {
        println!("fuzz smoke: PASS (all three planes held)");
        ExitCode::SUCCESS
    } else {
        if protocol_code == ExitCode::FAILURE {
            eprintln!("fuzz smoke FAIL: protocol plane");
        }
        if diff_code == ExitCode::FAILURE {
            eprintln!("fuzz smoke FAIL: differential plane");
        }
        if !report.chaos.survived() {
            eprintln!("fuzz smoke FAIL: chaos plane");
        }
        ExitCode::FAILURE
    }
}

fn print_protocol_report(report: &dut_fuzz::protocol_plane::ProtocolFuzzReport) -> ExitCode {
    println!(
        "protocol: {} frames fired, {} known-good probes, accounting {}",
        report.iterations,
        report.probes,
        if report.accounting_ok {
            "balanced"
        } else {
            "BROKEN"
        }
    );
    for violation in &report.violations {
        eprintln!(
            "protocol violation [{}]: {} (frame: {})",
            violation.mutation.name(),
            violation.what,
            violation.frame_preview
        );
        if let Some(path) = &violation.corpus_file {
            eprintln!("  persisted to {}", path.display());
        }
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_diff_report(report: &dut_fuzz::differential::DiffReport) -> ExitCode {
    println!(
        "differential: {} configs, {} cross-backend checks, {} served-path checks",
        report.iterations, report.cross_backend_checked, report.served_checked
    );
    for failure in &report.failures {
        eprintln!(
            "differential mismatch: {} (shrunk config: {:?})",
            failure.what, failure.request
        );
        if let Some(path) = &failure.corpus_file {
            eprintln!("  persisted to {}", path.display());
        }
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Expands files and directories (recursively) into sorted `.json`
/// corpus file paths.
fn collect_corpus_files(
    path: &std::path::Path,
    files: &mut Vec<std::path::PathBuf>,
) -> Result<(), String> {
    if path.is_dir() {
        let mut children: Vec<std::path::PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        children.sort();
        for child in children {
            collect_corpus_files(&child, files)?;
        }
    } else if path.extension().is_some_and(|ext| ext == "json") {
        files.push(path.to_path_buf());
    }
    Ok(())
}

fn load_corpus(paths: &[String]) -> Result<Vec<std::path::PathBuf>, String> {
    if paths.is_empty() {
        return Err("no corpus files or directories given".into());
    }
    let mut files = Vec::new();
    for p in paths {
        collect_corpus_files(std::path::Path::new(p), &mut files)?;
    }
    if files.is_empty() {
        return Err("no .json corpus files found".into());
    }
    Ok(files)
}

/// `dut fuzz --check` — schema-validate corpus entries.
fn fuzz_check(paths: &[String]) -> ExitCode {
    let files = match load_corpus(paths) {
        Ok(files) => files,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let mut bad = 0u64;
    for file in &files {
        match std::fs::read_to_string(file)
            .map_err(|e| e.to_string())
            .and_then(|text| dut_fuzz::corpus::validate(&text))
        {
            Ok(()) => {}
            Err(message) => {
                eprintln!("{}: {message}", file.display());
                bad += 1;
            }
        }
    }
    println!(
        "fuzz check: {} of {} corpus entries valid",
        files.len() as u64 - bad,
        files.len()
    );
    if bad == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `dut fuzz --replay` — re-fire corpus entries as assertions.
fn fuzz_replay(paths: &[String], addr: Option<&str>) -> ExitCode {
    let files = match load_corpus(paths) {
        Ok(files) => files,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let mut entries = Vec::new();
    for file in &files {
        let entry = std::fs::read_to_string(file)
            .map_err(|e| e.to_string())
            .and_then(|text| dut_fuzz::corpus::Entry::parse(&text));
        match entry {
            Ok(entry) => entries.push(entry),
            Err(message) => {
                eprintln!("{}: {message}", file.display());
                return ExitCode::FAILURE;
            }
        }
    }
    // Protocol entries need a live server; differential ones run
    // in-process, so only start a server when something will use it.
    let needs_server = entries
        .iter()
        .any(|e| e.plane == dut_fuzz::corpus::Plane::Protocol);
    let (addr, server) = if needs_server {
        match fuzz_target(addr.map(str::to_owned)) {
            Ok((addr, server)) => (addr, server),
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        (String::new(), None)
    };
    let mut failed = 0u64;
    for entry in &entries {
        match entry.replay(&addr) {
            Ok(()) => println!("replay {} [{}]: ok", entry.name, entry.plane.name()),
            Err(message) => {
                eprintln!("replay {} [{}]: {message}", entry.name, entry.plane.name());
                failed += 1;
            }
        }
    }
    stop_fuzz_server(server);
    println!(
        "fuzz replay: {} of {} entries held",
        entries.len() as u64 - failed,
        entries.len()
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One measured grid point of the backend benchmark.
struct BenchEntry {
    n: usize,
    q: u64,
    per_draw_ns: f64,
    histogram_ns: f64,
    auto_ns: f64,
    /// Which concrete engine the cost model resolved `Auto` to here.
    auto_backend: &'static str,
}

impl BenchEntry {
    fn speedup(&self) -> f64 {
        self.per_draw_ns / self.histogram_ns
    }

    fn best_fixed_ns(&self) -> f64 {
        self.per_draw_ns.min(self.histogram_ns)
    }
}

/// Auto may pay dispatch overhead but must track the better fixed
/// engine: the gate (and `--check`) fail any grid point where
/// `auto_ns > AUTO_SLACK × min(per_draw_ns, histogram_ns)`.
const AUTO_SLACK: f64 = 1.05;

/// The JSON schema tag for the perf baseline; bump on layout changes.
const BENCH_SCHEMA: &str = "dut-bench-perf/v2";

/// The previous layout (no auto column, no provenance); still accepted
/// by `dut bench --check` so older committed baselines keep validating.
const BENCH_SCHEMA_V1: &str = "dut-bench-perf/v1";

/// `dut bench` — wall-clock comparison of the sampling backends.
///
/// Times [`SampleBackend::PerDraw`] (inverse-CDF, O(q log n) per draw)
/// against [`SampleBackend::Histogram`] (stick-breaking, O(n + q)) and
/// the cost-model-resolved `Auto` over an `(n, q)` grid on the uniform
/// distribution, prints a table, and writes the machine-readable
/// baseline to `BENCH_perf.json` (or `--out`). Exits nonzero if the
/// histogram backend is slower at the largest grid point, or if Auto
/// trails the better fixed engine by more than [`AUTO_SLACK`] anywhere
/// — the regression gates CI runs via `--smoke`. `--probe` runs the
/// startup micro-calibration first so the cost model is rescaled to
/// this host before Auto is timed.
///
/// [`SampleBackend::PerDraw`]: distributed_uniformity::probability::SampleBackend
/// [`SampleBackend::Histogram`]: distributed_uniformity::probability::SampleBackend
fn cmd_bench(args: &[String]) -> ExitCode {
    let mut smoke = false;
    let mut probe = false;
    let mut out_path = String::from("BENCH_perf.json");
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--probe" => probe = true,
            "--out" | "--check" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("error: {} needs a path", args[i]);
                    return ExitCode::FAILURE;
                };
                if args[i] == "--out" {
                    out_path = value.clone();
                } else {
                    check_path = Some(value.clone());
                }
                i += 1;
            }
            other => {
                eprintln!("error: unknown bench option `{other}`");
                eprintln!(
                    "usage: dut bench [--smoke] [--probe] [--out <file>] | dut bench --check <file>"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if let Some(path) = check_path {
        return match check_bench_file(&path) {
            Ok(summary) => {
                println!("{summary}");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("error: {path}: {message}");
                ExitCode::FAILURE
            }
        };
    }
    dut_obs::init_from_env();
    use distributed_uniformity::probability::costmodel;
    if probe {
        let (per_draw_scale, histogram_scale) = costmodel::run_probe();
        println!(
            "probe: cost model rescaled \u{d7}{per_draw_scale:.2} per-draw, \
             \u{d7}{histogram_scale:.2} histogram"
        );
    }
    // Per-engine budget per grid point (a point costs ~3x this, see
    // `time_backends`). The smoke budget is large enough that the
    // 5% Auto gate does not flake on a noisy shared runner.
    let (ns, qs, budget) = if smoke {
        (
            vec![100usize, 1000],
            vec![1_000u64, 10_000],
            std::time::Duration::from_millis(100),
        )
    } else {
        (
            vec![100usize, 1_000, 10_000],
            vec![1_000u64, 10_000, 100_000],
            std::time::Duration::from_millis(250),
        )
    };
    let mut entries = Vec::new();
    println!("backend timing (ns per q-sample histogram draw, uniform input):");
    println!(
        "  {:>6} {:>7} {:>14} {:>14} {:>14} {:>8} {:>10}",
        "n", "q", "per-draw", "histogram", "auto", "speedup", "auto-picks"
    );
    for &n in &ns {
        let dual = families::uniform(n).dual_sampler();
        for &q in &qs {
            let mut rng = rand::rngs::StdRng::seed_from_u64(20_190_729 ^ (n as u64) ^ q);
            let (per_draw_ns, histogram_ns, auto_ns) = time_backends(&dual, q, budget, &mut rng);
            let auto_backend = dual.resolve(SampleBackend::Auto, q).name();
            let entry = BenchEntry {
                n,
                q,
                per_draw_ns,
                histogram_ns,
                auto_ns,
                auto_backend,
            };
            println!(
                "  {:>6} {:>7} {:>14.0} {:>14.0} {:>14.0} {:>7.2}x {:>10}",
                n,
                q,
                entry.per_draw_ns,
                entry.histogram_ns,
                entry.auto_ns,
                entry.speedup(),
                entry.auto_backend
            );
            dut_obs::global().emit_with(|| {
                dut_obs::Event::new("bench_point")
                    .with("n", n)
                    .with("q", q)
                    .with("per_draw_ns", per_draw_ns)
                    .with("histogram_ns", histogram_ns)
                    .with("auto_ns", auto_ns)
                    .with("auto_backend", auto_backend)
            });
            entries.push(entry);
        }
    }
    // Noise bursts on a shared host can poison one point's measurement
    // window even under min-of-batches. Before gating (and before the
    // artifact is written), any point where Auto appears to trail the
    // better fixed engine is re-timed in a fresh window — up to twice —
    // and every column keeps its minimum. A real Auto regression fails
    // all three windows; a burst does not.
    for retry in 1..=2u64 {
        let offending: Vec<usize> = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.auto_ns > AUTO_SLACK * e.best_fixed_ns())
            .map(|(i, _)| i)
            .collect();
        if offending.is_empty() {
            break;
        }
        for index in offending {
            let e = &mut entries[index];
            println!(
                "  re-timing (n={}, q={}): auto {:.0}ns vs best {:.0}ns (attempt {retry})",
                e.n,
                e.q,
                e.auto_ns,
                e.best_fixed_ns()
            );
            let dual = families::uniform(e.n).dual_sampler();
            let mut rng =
                rand::rngs::StdRng::seed_from_u64(20_190_729 ^ (e.n as u64) ^ e.q ^ (retry << 32));
            let (per_draw_ns, histogram_ns, auto_ns) = time_backends(&dual, e.q, budget, &mut rng);
            e.per_draw_ns = e.per_draw_ns.min(per_draw_ns);
            e.histogram_ns = e.histogram_ns.min(histogram_ns);
            e.auto_ns = e.auto_ns.min(auto_ns);
        }
    }
    let json = render_bench_json(&entries, smoke);
    if let Err(error) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {error}");
        return ExitCode::FAILURE;
    }
    println!("[baseline written to {out_path}]");
    let recorder = dut_obs::global();
    recorder.emit_metrics_snapshot();
    recorder.flush();
    let largest = entries.last().expect("grid is never empty");
    if largest.speedup() <= 1.0 {
        eprintln!(
            "error: histogram backend slower than per-draw at the largest grid point \
             (n={}, q={}: {:.0}ns vs {:.0}ns)",
            largest.n, largest.q, largest.histogram_ns, largest.per_draw_ns
        );
        return ExitCode::FAILURE;
    }
    let mut auto_failed = false;
    for e in &entries {
        if e.auto_ns > AUTO_SLACK * e.best_fixed_ns() {
            eprintln!(
                "error: auto backend trails the better fixed engine at (n={}, q={}): \
                 {:.0}ns vs best {:.0}ns (limit {AUTO_SLACK}x)",
                e.n,
                e.q,
                e.auto_ns,
                e.best_fixed_ns()
            );
            auto_failed = true;
        }
    }
    if auto_failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Wall-clock nanoseconds per `draw` of `q` samples for per-draw,
/// histogram, and auto — in that order — timed together at one grid
/// point.
///
/// The three engines are interleaved in round-robin batches (so host
/// drift — frequency scaling, a noisy neighbour — hits all of them,
/// not whichever happened to run in the bad window), and each engine
/// reports its fastest batch mean. Timing noise on a shared host is
/// one-sided: preemption only ever slows a batch down, so the minimum
/// batch mean is a far more stable estimate than the global mean.
fn time_backends(
    dual: &DualSampler,
    q: u64,
    budget: std::time::Duration,
    rng: &mut rand::rngs::StdRng,
) -> (f64, f64, f64) {
    const BACKENDS: [SampleBackend; 3] = [
        SampleBackend::PerDraw,
        SampleBackend::Histogram,
        SampleBackend::Auto,
    ];
    let mut sink = 0u64;
    for backend in BACKENDS {
        for _ in 0..2 {
            sink = sink.wrapping_add(dual.draw(backend, q, rng).collision_count());
        }
    }
    // `budget` is the per-engine budget; a round times each engine for
    // one ~budget/16 batch, so the whole point costs ~3x budget and
    // each engine's minimum is taken over ~16 batches.
    let batch_budget = budget / 16;
    let total_budget = budget * 3;
    let start = std::time::Instant::now();
    let mut best = [f64::INFINITY; 3];
    let mut rounds = 0u32;
    while rounds < 3 || (start.elapsed() < total_budget && rounds < 64) {
        for (slot, &backend) in BACKENDS.iter().enumerate() {
            let batch_start = std::time::Instant::now();
            let mut reps = 0u32;
            while reps < 1 || (batch_start.elapsed() < batch_budget && reps < 20_000) {
                sink = sink.wrapping_add(dual.draw(backend, q, rng).collision_count());
                reps += 1;
            }
            best[slot] =
                best[slot].min(batch_start.elapsed().as_secs_f64() * 1e9 / f64::from(reps));
        }
        rounds += 1;
    }
    std::hint::black_box(sink);
    (best[0], best[1], best[2])
}

/// Serializes the measured grid as the `dut-bench-perf/v2` document:
/// the timing columns plus a provenance block (thread count, host
/// triple, and — when `--probe` ran — the installed cost-model scales).
fn render_bench_json(entries: &[BenchEntry], smoke: bool) -> String {
    use distributed_uniformity::probability::costmodel;
    use std::fmt::Write as _;
    let mut out = String::from("{\"schema\":");
    dut_obs::json::write_escaped(&mut out, BENCH_SCHEMA);
    let _ = write!(
        out,
        ",\"mode\":\"{}\",\"provenance\":{{\"threads\":{},\"host\":\"{}-{}\"",
        if smoke { "smoke" } else { "full" },
        distributed_uniformity::stats::runner::available_threads(),
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    if let Some((per_draw_scale, histogram_scale)) = costmodel::probe_scales() {
        out.push_str(",\"probe\":{\"per_draw_scale\":");
        dut_obs::json::write_f64(&mut out, per_draw_scale);
        out.push_str(",\"histogram_scale\":");
        dut_obs::json::write_f64(&mut out, histogram_scale);
        out.push('}');
    }
    out.push_str("},\"entries\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"n\":{},\"q\":{},\"per_draw_ns\":", e.n, e.q);
        dut_obs::json::write_f64(&mut out, e.per_draw_ns);
        out.push_str(",\"histogram_ns\":");
        dut_obs::json::write_f64(&mut out, e.histogram_ns);
        out.push_str(",\"auto_ns\":");
        dut_obs::json::write_f64(&mut out, e.auto_ns);
        out.push_str(",\"auto_backend\":");
        dut_obs::json::write_escaped(&mut out, e.auto_backend);
        out.push_str(",\"speedup\":");
        dut_obs::json::write_f64(&mut out, e.speedup());
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Validates a perf baseline: schema tag (`v1` or `v2`), entry fields,
/// internal consistency of the recorded speedups, and — for `v2` —
/// provenance plus the Auto gate (`auto_ns ≤ AUTO_SLACK × min(fixed)`
/// at every grid point).
fn check_bench_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = dut_obs::json::parse(&text)?;
    let schema = doc
        .get("schema")
        .and_then(dut_obs::json::Json::as_str)
        .ok_or("missing `schema`")?;
    let v2 = match schema {
        BENCH_SCHEMA => true,
        BENCH_SCHEMA_V1 => false,
        other => {
            return Err(format!(
                "schema `{other}` is neither `{BENCH_SCHEMA}` nor `{BENCH_SCHEMA_V1}`"
            ))
        }
    };
    if v2 {
        let Some(provenance) = doc.get("provenance") else {
            return Err("v2 baseline missing `provenance`".into());
        };
        let threads = provenance
            .get("threads")
            .and_then(dut_obs::json::Json::as_f64)
            .ok_or("provenance missing `threads`")?;
        if threads < 1.0 {
            return Err(format!("provenance thread count {threads} is not >= 1"));
        }
        provenance
            .get("host")
            .and_then(dut_obs::json::Json::as_str)
            .ok_or("provenance missing `host`")?;
    }
    let Some(dut_obs::json::Json::Arr(entries)) = doc.get("entries") else {
        return Err("missing `entries` array".into());
    };
    if entries.is_empty() {
        return Err("`entries` is empty".into());
    }
    for (i, entry) in entries.iter().enumerate() {
        let field = |key: &str| -> Result<f64, String> {
            entry
                .get(key)
                .and_then(dut_obs::json::Json::as_f64)
                .filter(|v| v.is_finite() && *v > 0.0)
                .ok_or_else(|| format!("entry {i}: missing or non-positive `{key}`"))
        };
        let per_draw = field("per_draw_ns")?;
        let histogram = field("histogram_ns")?;
        let speedup = field("speedup")?;
        field("n")?;
        field("q")?;
        let implied = per_draw / histogram;
        if (speedup - implied).abs() > 0.01 * implied {
            return Err(format!(
                "entry {i}: recorded speedup {speedup:.3} disagrees with \
                 per_draw_ns/histogram_ns = {implied:.3}"
            ));
        }
        if v2 {
            let auto = field("auto_ns")?;
            let auto_backend = entry
                .get("auto_backend")
                .and_then(dut_obs::json::Json::as_str)
                .ok_or_else(|| format!("entry {i}: missing `auto_backend`"))?;
            if SampleBackend::parse(auto_backend).is_none_or(|b| b == SampleBackend::Auto) {
                return Err(format!(
                    "entry {i}: `auto_backend` is `{auto_backend}`, not a concrete engine"
                ));
            }
            let best = per_draw.min(histogram);
            if auto > AUTO_SLACK * best {
                return Err(format!(
                    "entry {i}: auto_ns {auto:.0} exceeds {AUTO_SLACK}x the better \
                     fixed engine ({best:.0}ns)"
                ));
            }
        }
    }
    let last = entries.last().expect("checked non-empty");
    let last_speedup = last
        .get("speedup")
        .and_then(dut_obs::json::Json::as_f64)
        .expect("validated above");
    if last_speedup <= 1.0 {
        return Err(format!(
            "histogram backend slower at the largest grid point (speedup {last_speedup:.2}x)"
        ));
    }
    Ok(format!(
        "ok: {} {} entries, largest-point speedup {last_speedup:.2}x{}",
        entries.len(),
        if v2 { "v2" } else { "v1" },
        if v2 {
            ", auto within slack everywhere"
        } else {
            ""
        }
    ))
}

/// `dut faults` — graceful-degradation curves and Byzantine tolerance.
///
/// Sweeps a fault model's intensity and prints the measured two-sided
/// error of the AND rule next to a calibrated counting rule at the
/// same `k`, `q`, `ε`, then probes how many Byzantine bit-flippers
/// each rule absorbs before its error crosses 1/3 (predicted:
/// `t < min(T, k − T + 1)`, so AND breaks at `t = 1`).
fn cmd_faults(options: &BTreeMap<String, String>) -> Result<(), String> {
    use distributed_uniformity::simnet::{
        byzantine_tolerance, rejection_rate, ByzantinePlan, DecisionRule, FaultPlan,
        GilbertElliott, IidFaults, MissingPolicy, Recovery, ResilientNetwork, TargetedLoss,
    };
    use distributed_uniformity::testers::TThresholdTester;

    let n = get_usize(options, "n", 256)?;
    let k = get_usize(options, "k", 16)?;
    let eps = get_f64(options, "eps", 0.9)?;
    let seed = get_usize(options, "seed", 20_190_729)? as u64;
    let trials = get_usize(options, "trials", 60)?;
    let q = get_usize(options, "q", 100)?;
    let t = get_usize(options, "t", (k / 4).max(2))?;
    if t == 0 || t > k {
        return Err(format!("--t {t} outside 1..={k}"));
    }
    let model = options.get("model").map_or("iid", String::as_str);
    let policy = match options
        .get("policy")
        .map_or("assume-accept", String::as_str)
    {
        "assume-accept" => MissingPolicy::AssumeAccept,
        "assume-reject" => MissingPolicy::AssumeReject,
        "exclude" => MissingPolicy::Exclude,
        other => {
            return Err(format!(
                "unknown policy `{other}` (assume-accept | assume-reject | exclude)"
            ))
        }
    };
    let recovery = match options.get("recovery").map_or("none", String::as_str) {
        "none" => Recovery::None,
        other => {
            let parse_count = |spec: &str| -> Result<usize, String> {
                let count: usize = spec
                    .parse()
                    .map_err(|_| format!("--recovery needs an integer after `:`, got `{spec}`"))?;
                if count == 0 {
                    return Err("--recovery count must be at least 1".into());
                }
                Ok(count)
            };
            if let Some(copies) = other.strip_prefix("repeat:") {
                Recovery::Repetition {
                    copies: parse_count(copies)?,
                }
            } else if let Some(attempts) = other.strip_prefix("ack:") {
                Recovery::AckRetry {
                    max_attempts: parse_count(attempts)?,
                }
            } else {
                return Err(format!(
                    "unknown recovery `{other}` (none | repeat:<R> | ack:<A>)"
                ));
            }
        }
    };

    let uniform = families::uniform(n).alias_sampler();
    let far = families::two_level(n, eps)
        .map_err(|e| e.to_string())?
        .alias_sampler();
    let network = ResilientNetwork::new(k, policy).with_recovery(recovery);
    let node_player = |rule_t: usize| {
        let threshold = TThresholdTester::new(n, k, rule_t).node_threshold(q);
        move |_ctx: &distributed_uniformity::simnet::PlayerContext, samples: &[usize]| {
            distributed_uniformity::probability::empirical::collision_count_of(samples) < threshold
        }
    };

    // Each measurement gets its own fault-randomness stream, derived
    // deterministically from its position, so output is reproducible.
    let mut stream = 0u64;
    let mut measure =
        |rule: &DecisionRule, rule_t: usize, plan: &mut dyn FaultPlan, far_side: bool| {
            stream += 1;
            let rates = rejection_rate(
                &network,
                if far_side { &far } else { &uniform },
                q,
                &node_player(rule_t),
                rule,
                plan,
                trials,
                seed,
                stream,
            );
            if far_side {
                rates.error_on_far()
            } else {
                rates.error_on_uniform()
            }
        };

    let thr_rule = DecisionRule::Threshold { min_rejects: t };
    println!(
        "fault tolerance: n={n} k={k} eps={eps} q={q} trials={trials} model={model} \
         policy={policy:?} recovery={recovery}"
    );
    println!();

    // Sweep points: fault intensity per model. Targeted loss sweeps
    // its per-round deletion budget instead of a probability.
    type PlanFactory = Box<dyn Fn() -> Box<dyn FaultPlan>>;
    let sweep: Vec<(String, PlanFactory)> = match model {
        "iid" => (0..=5)
            .map(|s| {
                let rate = f64::from(s) * 0.1;
                let label = format!("{rate:.2}");
                let factory: PlanFactory = Box::new(move || Box::new(IidFaults::loss_only(rate)));
                (label, factory)
            })
            .collect(),
        "ge" => (0..=5)
            .map(|s| {
                let rate = f64::from(s) * 0.07;
                let label = format!("{rate:.2}");
                let factory: PlanFactory =
                    Box::new(move || Box::new(GilbertElliott::bursty_with_mean_loss(rate)));
                (label, factory)
            })
            .collect(),
        "targeted" => (0..=4usize)
            .map(|budget| {
                let label = format!("b={budget}");
                let factory: PlanFactory =
                    Box::new(move || Box::new(TargetedLoss::alarm_silencer(budget)));
                (label, factory)
            })
            .collect(),
        other => return Err(format!("unknown model `{other}` (iid | ge | targeted)")),
    };

    println!("graceful degradation (two-sided error per fault intensity):");
    println!("  rate   and:errU  and:errF  thr({t}):errU  thr({t}):errF");
    for (label, factory) in &sweep {
        let and_u = measure(&DecisionRule::And, 1, factory().as_mut(), false);
        let and_f = measure(&DecisionRule::And, 1, factory().as_mut(), true);
        let thr_u = measure(&thr_rule, t, factory().as_mut(), false);
        let thr_f = measure(&thr_rule, t, factory().as_mut(), true);
        println!("  {label:<6} {and_u:<9.3} {and_f:<9.3} {thr_u:<12.3} {thr_f:<12.3}");
    }
    println!();

    println!("byzantine tolerance (bit-flippers until two-sided error ≥ 1/3):");
    println!("  rule          predicted  measured");
    for (rule, rule_t) in [(DecisionRule::And, 1), (thr_rule.clone(), t)] {
        let predicted = byzantine_tolerance(&rule, k).unwrap_or(0);
        let scan_to = (predicted + 2).min(k);
        let mut measured = None;
        for flippers in 0..=scan_to {
            let err_u = measure(&rule, rule_t, &mut ByzantinePlan::flippers(flippers), false);
            let err_f = measure(&rule, rule_t, &mut ByzantinePlan::flippers(flippers), true);
            if err_u.max(err_f) >= 1.0 / 3.0 {
                measured = Some(flippers.saturating_sub(1));
                break;
            }
        }
        let measured = measured.map_or_else(|| format!(">={scan_to}"), |m| m.to_string());
        println!("  {:<13} {predicted:<10} {measured}", rule.name());
    }
    Ok(())
}

fn cmd_predict(options: &BTreeMap<String, String>) -> Result<(), String> {
    let n = get_usize(options, "n", 1024)?;
    let k = get_usize(options, "k", 16)?;
    let eps = get_f64(options, "eps", 0.5)?;
    println!("theory predictions for n={n}, k={k}, eps={eps}:");
    println!(
        "  centralized (Paninski)             q ~ {:>10.0}",
        theory::centralized(n, eps)
    );
    println!(
        "  any rule (Thm 1.1 floor)           q ≥ {:>10.0}",
        theory::theorem_1_1(n, k, eps)
    );
    println!(
        "  optimal threshold upper ([7])      q ~ {:>10.0}",
        theory::fmo_threshold_upper(n, k, eps)
    );
    println!(
        "  AND rule (Thm 1.2 floor)           q ≥ {:>10.0}",
        theory::theorem_1_2(n, k, eps).max(theory::theorem_1_1(n, k, eps))
    );
    println!(
        "  AND rule upper ([7])               q ~ {:>10.0}",
        theory::fmo_and_upper(n, k, eps)
    );
    println!(
        "  Thm 1.2 validity range             k ≤ 2^(1/eps) = {:.0}",
        theory::theorem_1_2_k_range(eps)
    );
    println!(
        "  learning floor at q=16 (Thm 1.4)   k ≥ {:>10.0}",
        theory::theorem_1_4_min_players(n, 16)
    );
    Ok(())
}

fn cmd_advise(options: &BTreeMap<String, String>) -> Result<(), String> {
    let n = get_usize(options, "n", 1024)?;
    let k = get_usize(options, "k", 16)?;
    let eps = get_f64(options, "eps", 0.5)?;
    let locality = match options.get("locality").map_or("any", String::as_str) {
        "and" => LocalityRequirement::FullyLocal,
        "any" => LocalityRequirement::Unrestricted,
        other => {
            if let Some(t) = other.strip_prefix("threshold:") {
                let t = t
                    .parse()
                    .map_err(|_| format!("threshold locality needs an integer, got `{t}`"))?;
                LocalityRequirement::AtMostThreshold(t)
            } else {
                return Err(format!(
                    "unknown locality `{other}` (and | threshold:<T> | any)"
                ));
            }
        }
    };
    let rec = recommend(n, k, eps, locality);
    println!("recommended rule: {}", rec.rule);
    println!("predicted samples/player: {:.0}", rec.predicted_samples);
    println!(
        "alternatives: AND {:.0} | optimal {:.0} | centralized {:.0}",
        rec.and_rule_samples, rec.optimal_samples, rec.centralized_samples
    );
    println!("rationale: {}", rec.rationale);
    Ok(())
}
