//! `dut` — the distributed-uniformity-testing command line.
//!
//! ```bash
//! # Run a distributed test and report acceptance rates:
//! dut test --n 4096 --k 64 --eps 0.5 --rule balanced --input two-level --trials 200
//!
//! # Print every theory prediction for a configuration:
//! dut predict --n 4096 --k 64 --eps 0.5
//!
//! # Ask the advisor which rule to deploy:
//! dut advise --n 4096 --k 64 --eps 0.5 --locality any
//! ```

use distributed_uniformity::advisor::{recommend, LocalityRequirement};
use distributed_uniformity::lowerbound::theory;
use distributed_uniformity::probability::{families, DenseDistribution};
use distributed_uniformity::{Rule, UniformityTester};
use rand::SeedableRng;
// BTreeMap, not HashMap: flag lookups never iterate today, but any
// future "unknown option" listing must print in a stable order
// (the unordered-collection lint bans HashMap here).
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "\
dut — distributed uniformity testing

USAGE:
    dut <COMMAND> [--key value]...

COMMANDS:
    test      run a tester and report acceptance rates
    predict   print the theory predictions for a configuration
    advise    recommend a decision rule
    faults    render error-vs-fault-rate curves and Byzantine tolerance
    report    summarize a JSONL trace (written via DUT_TRACE=<path>)
    lint      run workspace static analysis (determinism / numeric / obs rules)

COMMON OPTIONS:
    --n <int>         domain size                  [default: 1024]
    --k <int>         number of players            [default: 16]
    --eps <float>     proximity parameter          [default: 0.5]
    --seed <int>      master seed                  [default: 20190729]

test OPTIONS:
    --rule <name>     and | threshold:<T> | balanced | centralized
                                                   [default: balanced]
    --input <name>    uniform | two-level | alternating | zipf | hard
                                                   [default: two-level]
    --q <int>         samples per player           [default: predicted]
    --trials <int>    protocol executions          [default: 200]

advise OPTIONS:
    --locality <name> and | threshold:<T> | any    [default: any]

faults OPTIONS:
    --model <name>    iid | ge | targeted          [default: iid]
    --policy <name>   assume-accept | assume-reject | exclude
                                                   [default: assume-accept]
    --recovery <name> none | repeat:<R> | ack:<A>  [default: none]
    --t <int>         counting-rule threshold      [default: max(2, k/4)]
    --q <int>         samples per player           [default: 100]
    --trials <int>    runs per sweep point         [default: 60]

report USAGE:
    dut report <trace.jsonl>

lint USAGE:
    dut lint [workspace-root]     lint the workspace (default: cwd)
    dut lint --rules              list rule IDs and what they enforce
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `report` and `lint` take positional args, not --key value pairs.
    if args.first().map(String::as_str) == Some("report") {
        return match cmd_report(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("lint") {
        return cmd_lint(&args[1..]);
    }
    let Some((command, options)) = parse(&args) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // DUT_TRACE=<path> traces this invocation too.
    dut_obs::init_from_env();
    let result = match command.as_str() {
        "test" => cmd_test(&options),
        "predict" => cmd_predict(&options),
        "advise" => cmd_advise(&options),
        "faults" => cmd_faults(&options),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    let recorder = dut_obs::global();
    recorder.emit_metrics_snapshot();
    recorder.flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `dut help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn parse(args: &[String]) -> Option<(String, BTreeMap<String, String>)> {
    let command = args.first()?.clone();
    let mut options = BTreeMap::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        let value = args.get(i + 1)?;
        options.insert(key.to_owned(), value.clone());
        i += 2;
    }
    Some((command, options))
}

fn get_usize(
    options: &BTreeMap<String, String>,
    key: &str,
    default: usize,
) -> Result<usize, String> {
    match options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} needs an integer, got `{v}`")),
    }
}

fn get_f64(options: &BTreeMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} needs a number, got `{v}`")),
    }
}

fn parse_rule(spec: &str, k: usize) -> Result<Rule, String> {
    match spec {
        "and" => Ok(Rule::And),
        "balanced" => Ok(Rule::Balanced),
        "centralized" => Ok(Rule::Centralized),
        other => {
            if let Some(t) = other.strip_prefix("threshold:") {
                let t: usize = t
                    .parse()
                    .map_err(|_| format!("threshold rule needs an integer, got `{t}`"))?;
                if t == 0 || t > k {
                    return Err(format!("threshold {t} outside 1..={k}"));
                }
                Ok(Rule::TThreshold { t })
            } else {
                Err(format!(
                    "unknown rule `{other}` (and | threshold:<T> | balanced | centralized)"
                ))
            }
        }
    }
}

fn parse_input(
    spec: &str,
    n: usize,
    eps: f64,
    rng: &mut rand::rngs::StdRng,
) -> Result<DenseDistribution, String> {
    match spec {
        "uniform" => Ok(families::uniform(n)),
        "two-level" => families::two_level(n, eps).map_err(|e| e.to_string()),
        "alternating" => families::alternating(n, eps).map_err(|e| e.to_string()),
        "zipf" => families::zipf(n, 1.0).map_err(|e| e.to_string()),
        "hard" => {
            // A random member of the paper's nu_z family; requires a
            // power-of-two domain of size >= 4.
            if !n.is_power_of_two() || n < 4 {
                return Err("the hard family needs a power-of-two domain >= 4".into());
            }
            let ell = n.trailing_zeros() - 1;
            let dom = distributed_uniformity::probability::PairedDomain::new(ell);
            let z = distributed_uniformity::probability::PerturbationVector::random(
                dom.cube_size(),
                rng,
            );
            dom.perturbed_distribution(&z, eps)
                .map_err(|e| e.to_string())
        }
        other => Err(format!(
            "unknown input `{other}` (uniform | two-level | alternating | zipf | hard)"
        )),
    }
}

fn cmd_test(options: &BTreeMap<String, String>) -> Result<(), String> {
    let n = get_usize(options, "n", 1024)?;
    let k = get_usize(options, "k", 16)?;
    let eps = get_f64(options, "eps", 0.5)?;
    let seed = get_usize(options, "seed", 20_190_729)? as u64;
    let trials = get_usize(options, "trials", 200)?;
    let rule = parse_rule(options.get("rule").map_or("balanced", String::as_str), k)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let input_spec = options.get("input").map_or("two-level", String::as_str);
    let input = parse_input(input_spec, n, eps, &mut rng)?;

    let tester = UniformityTester::builder()
        .domain_size(n)
        .players(k)
        .epsilon(eps)
        .rule(rule)
        .build()
        .map_err(|e| e.to_string())?;
    let q = match options.get("q") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--q needs an integer, got `{v}`"))?,
        None => tester.predicted_sample_count(),
    };
    println!("configuration: n={n} k={k} eps={eps} rule={rule} q={q} input={input_spec}");
    let prepared = tester.prepare(q, &mut rng);

    let target = input.alias_sampler();
    let accept = prepared.acceptance_rate(&target, trials, &mut rng);
    println!(
        "acceptance on `{input_spec}` over {trials} runs: {:.1}%",
        100.0 * accept
    );

    if input_spec != "uniform" {
        let uniform = families::uniform(n).alias_sampler();
        let completeness = prepared.acceptance_rate(&uniform, trials, &mut rng);
        println!(
            "acceptance on uniform (completeness):      {:.1}%",
            100.0 * completeness
        );
        let dist = distributed_uniformity::probability::distance::l1_distance(
            &input,
            &families::uniform(n),
        );
        println!("input l1 distance from uniform: {dist:.4}");
        if dist >= eps {
            let ok = completeness >= 2.0 / 3.0 && accept <= 1.0 / 3.0;
            println!(
                "two-sided 2/3 guarantee: {}",
                if ok { "HOLDS" } else { "violated at this q" }
            );
        }
    }
    Ok(())
}

/// `dut lint [root]` — workspace static analysis (dut-analyze).
///
/// Exits nonzero on any unsuppressed finding, so CI can gate on it.
/// The pass runs under a `lint.workspace` span and emits a
/// `lint_summary` event, so `dut report` shows analysis cost next to
/// experiment cost.
fn cmd_lint(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--rules") {
        print!("{}", dut_analyze::rules_table());
        return ExitCode::SUCCESS;
    }
    let root = match args {
        [] => match std::env::current_dir() {
            Ok(dir) => dir,
            Err(error) => {
                eprintln!("error: cannot resolve cwd: {error}");
                return ExitCode::FAILURE;
            }
        },
        [path] => std::path::PathBuf::from(path),
        _ => {
            eprintln!("usage: dut lint [workspace-root] | dut lint --rules");
            return ExitCode::FAILURE;
        }
    };
    dut_obs::init_from_env();
    let result = {
        let _span = dut_obs::span!("lint.workspace");
        dut_analyze::lint_workspace(&root)
    };
    let recorder = dut_obs::global();
    let code = match result {
        Ok(report) => {
            recorder.emit_with(|| {
                dut_obs::Event::new("lint_summary")
                    .with("files", report.files_checked as u64)
                    .with("findings", report.findings.len() as u64)
                    .with("suppressed", report.suppressed as u64)
            });
            println!("{report}");
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    };
    recorder.flush();
    code
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("usage: dut report <trace.jsonl>".into());
    };
    let summary = dut_obs::report::summarize_file(path)?;
    print!("{summary}");
    Ok(())
}

/// `dut faults` — graceful-degradation curves and Byzantine tolerance.
///
/// Sweeps a fault model's intensity and prints the measured two-sided
/// error of the AND rule next to a calibrated counting rule at the
/// same `k`, `q`, `ε`, then probes how many Byzantine bit-flippers
/// each rule absorbs before its error crosses 1/3 (predicted:
/// `t < min(T, k − T + 1)`, so AND breaks at `t = 1`).
fn cmd_faults(options: &BTreeMap<String, String>) -> Result<(), String> {
    use distributed_uniformity::simnet::{
        byzantine_tolerance, rejection_rate, ByzantinePlan, DecisionRule, FaultPlan,
        GilbertElliott, IidFaults, MissingPolicy, Recovery, ResilientNetwork, TargetedLoss,
    };
    use distributed_uniformity::testers::TThresholdTester;

    let n = get_usize(options, "n", 256)?;
    let k = get_usize(options, "k", 16)?;
    let eps = get_f64(options, "eps", 0.9)?;
    let seed = get_usize(options, "seed", 20_190_729)? as u64;
    let trials = get_usize(options, "trials", 60)?;
    let q = get_usize(options, "q", 100)?;
    let t = get_usize(options, "t", (k / 4).max(2))?;
    if t == 0 || t > k {
        return Err(format!("--t {t} outside 1..={k}"));
    }
    let model = options.get("model").map_or("iid", String::as_str);
    let policy = match options
        .get("policy")
        .map_or("assume-accept", String::as_str)
    {
        "assume-accept" => MissingPolicy::AssumeAccept,
        "assume-reject" => MissingPolicy::AssumeReject,
        "exclude" => MissingPolicy::Exclude,
        other => {
            return Err(format!(
                "unknown policy `{other}` (assume-accept | assume-reject | exclude)"
            ))
        }
    };
    let recovery = match options.get("recovery").map_or("none", String::as_str) {
        "none" => Recovery::None,
        other => {
            let parse_count = |spec: &str| -> Result<usize, String> {
                let count: usize = spec
                    .parse()
                    .map_err(|_| format!("--recovery needs an integer after `:`, got `{spec}`"))?;
                if count == 0 {
                    return Err("--recovery count must be at least 1".into());
                }
                Ok(count)
            };
            if let Some(copies) = other.strip_prefix("repeat:") {
                Recovery::Repetition {
                    copies: parse_count(copies)?,
                }
            } else if let Some(attempts) = other.strip_prefix("ack:") {
                Recovery::AckRetry {
                    max_attempts: parse_count(attempts)?,
                }
            } else {
                return Err(format!(
                    "unknown recovery `{other}` (none | repeat:<R> | ack:<A>)"
                ));
            }
        }
    };

    let uniform = families::uniform(n).alias_sampler();
    let far = families::two_level(n, eps)
        .map_err(|e| e.to_string())?
        .alias_sampler();
    let network = ResilientNetwork::new(k, policy).with_recovery(recovery);
    let node_player = |rule_t: usize| {
        let threshold = TThresholdTester::new(n, k, rule_t).node_threshold(q);
        move |_ctx: &distributed_uniformity::simnet::PlayerContext, samples: &[usize]| {
            distributed_uniformity::probability::empirical::collision_count_of(samples) < threshold
        }
    };

    // Each measurement gets its own fault-randomness stream, derived
    // deterministically from its position, so output is reproducible.
    let mut stream = 0u64;
    let mut measure =
        |rule: &DecisionRule, rule_t: usize, plan: &mut dyn FaultPlan, far_side: bool| {
            stream += 1;
            let rates = rejection_rate(
                &network,
                if far_side { &far } else { &uniform },
                q,
                &node_player(rule_t),
                rule,
                plan,
                trials,
                seed,
                stream,
            );
            if far_side {
                rates.error_on_far()
            } else {
                rates.error_on_uniform()
            }
        };

    let thr_rule = DecisionRule::Threshold { min_rejects: t };
    println!(
        "fault tolerance: n={n} k={k} eps={eps} q={q} trials={trials} model={model} \
         policy={policy:?} recovery={recovery}"
    );
    println!();

    // Sweep points: fault intensity per model. Targeted loss sweeps
    // its per-round deletion budget instead of a probability.
    type PlanFactory = Box<dyn Fn() -> Box<dyn FaultPlan>>;
    let sweep: Vec<(String, PlanFactory)> = match model {
        "iid" => (0..=5)
            .map(|s| {
                let rate = f64::from(s) * 0.1;
                let label = format!("{rate:.2}");
                let factory: PlanFactory = Box::new(move || Box::new(IidFaults::loss_only(rate)));
                (label, factory)
            })
            .collect(),
        "ge" => (0..=5)
            .map(|s| {
                let rate = f64::from(s) * 0.07;
                let label = format!("{rate:.2}");
                let factory: PlanFactory =
                    Box::new(move || Box::new(GilbertElliott::bursty_with_mean_loss(rate)));
                (label, factory)
            })
            .collect(),
        "targeted" => (0..=4usize)
            .map(|budget| {
                let label = format!("b={budget}");
                let factory: PlanFactory =
                    Box::new(move || Box::new(TargetedLoss::alarm_silencer(budget)));
                (label, factory)
            })
            .collect(),
        other => return Err(format!("unknown model `{other}` (iid | ge | targeted)")),
    };

    println!("graceful degradation (two-sided error per fault intensity):");
    println!("  rate   and:errU  and:errF  thr({t}):errU  thr({t}):errF");
    for (label, factory) in &sweep {
        let and_u = measure(&DecisionRule::And, 1, factory().as_mut(), false);
        let and_f = measure(&DecisionRule::And, 1, factory().as_mut(), true);
        let thr_u = measure(&thr_rule, t, factory().as_mut(), false);
        let thr_f = measure(&thr_rule, t, factory().as_mut(), true);
        println!("  {label:<6} {and_u:<9.3} {and_f:<9.3} {thr_u:<12.3} {thr_f:<12.3}");
    }
    println!();

    println!("byzantine tolerance (bit-flippers until two-sided error ≥ 1/3):");
    println!("  rule          predicted  measured");
    for (rule, rule_t) in [(DecisionRule::And, 1), (thr_rule.clone(), t)] {
        let predicted = byzantine_tolerance(&rule, k).unwrap_or(0);
        let scan_to = (predicted + 2).min(k);
        let mut measured = None;
        for flippers in 0..=scan_to {
            let err_u = measure(&rule, rule_t, &mut ByzantinePlan::flippers(flippers), false);
            let err_f = measure(&rule, rule_t, &mut ByzantinePlan::flippers(flippers), true);
            if err_u.max(err_f) >= 1.0 / 3.0 {
                measured = Some(flippers.saturating_sub(1));
                break;
            }
        }
        let measured = measured.map_or_else(|| format!(">={scan_to}"), |m| m.to_string());
        println!("  {:<13} {predicted:<10} {measured}", rule.name());
    }
    Ok(())
}

fn cmd_predict(options: &BTreeMap<String, String>) -> Result<(), String> {
    let n = get_usize(options, "n", 1024)?;
    let k = get_usize(options, "k", 16)?;
    let eps = get_f64(options, "eps", 0.5)?;
    println!("theory predictions for n={n}, k={k}, eps={eps}:");
    println!(
        "  centralized (Paninski)             q ~ {:>10.0}",
        theory::centralized(n, eps)
    );
    println!(
        "  any rule (Thm 1.1 floor)           q ≥ {:>10.0}",
        theory::theorem_1_1(n, k, eps)
    );
    println!(
        "  optimal threshold upper ([7])      q ~ {:>10.0}",
        theory::fmo_threshold_upper(n, k, eps)
    );
    println!(
        "  AND rule (Thm 1.2 floor)           q ≥ {:>10.0}",
        theory::theorem_1_2(n, k, eps).max(theory::theorem_1_1(n, k, eps))
    );
    println!(
        "  AND rule upper ([7])               q ~ {:>10.0}",
        theory::fmo_and_upper(n, k, eps)
    );
    println!(
        "  Thm 1.2 validity range             k ≤ 2^(1/eps) = {:.0}",
        theory::theorem_1_2_k_range(eps)
    );
    println!(
        "  learning floor at q=16 (Thm 1.4)   k ≥ {:>10.0}",
        theory::theorem_1_4_min_players(n, 16)
    );
    Ok(())
}

fn cmd_advise(options: &BTreeMap<String, String>) -> Result<(), String> {
    let n = get_usize(options, "n", 1024)?;
    let k = get_usize(options, "k", 16)?;
    let eps = get_f64(options, "eps", 0.5)?;
    let locality = match options.get("locality").map_or("any", String::as_str) {
        "and" => LocalityRequirement::FullyLocal,
        "any" => LocalityRequirement::Unrestricted,
        other => {
            if let Some(t) = other.strip_prefix("threshold:") {
                let t = t
                    .parse()
                    .map_err(|_| format!("threshold locality needs an integer, got `{t}`"))?;
                LocalityRequirement::AtMostThreshold(t)
            } else {
                return Err(format!(
                    "unknown locality `{other}` (and | threshold:<T> | any)"
                ));
            }
        }
    };
    let rec = recommend(n, k, eps, locality);
    println!("recommended rule: {}", rec.rule);
    println!("predicted samples/player: {:.0}", rec.predicted_samples);
    println!(
        "alternatives: AND {:.0} | optimal {:.0} | centralized {:.0}",
        rec.and_rule_samples, rec.optimal_samples, rec.centralized_samples
    );
    println!("rationale: {}", rec.rationale);
    Ok(())
}
