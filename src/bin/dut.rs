//! `dut` — the distributed-uniformity-testing command line.
//!
//! ```bash
//! # Run a distributed test and report acceptance rates:
//! dut test --n 4096 --k 64 --eps 0.5 --rule balanced --input two-level --trials 200
//!
//! # Print every theory prediction for a configuration:
//! dut predict --n 4096 --k 64 --eps 0.5
//!
//! # Ask the advisor which rule to deploy:
//! dut advise --n 4096 --k 64 --eps 0.5 --locality any
//! ```

use distributed_uniformity::advisor::{recommend, LocalityRequirement};
use distributed_uniformity::lowerbound::theory;
use distributed_uniformity::probability::{families, DenseDistribution};
use distributed_uniformity::{Rule, UniformityTester};
use rand::SeedableRng;
// BTreeMap, not HashMap: flag lookups never iterate today, but any
// future "unknown option" listing must print in a stable order
// (the unordered-collection lint bans HashMap here).
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "\
dut — distributed uniformity testing

USAGE:
    dut <COMMAND> [--key value]...

COMMANDS:
    test      run a tester and report acceptance rates
    predict   print the theory predictions for a configuration
    advise    recommend a decision rule
    report    summarize a JSONL trace (written via DUT_TRACE=<path>)
    lint      run workspace static analysis (determinism / numeric / obs rules)

COMMON OPTIONS:
    --n <int>         domain size                  [default: 1024]
    --k <int>         number of players            [default: 16]
    --eps <float>     proximity parameter          [default: 0.5]
    --seed <int>      master seed                  [default: 20190729]

test OPTIONS:
    --rule <name>     and | threshold:<T> | balanced | centralized
                                                   [default: balanced]
    --input <name>    uniform | two-level | alternating | zipf | hard
                                                   [default: two-level]
    --q <int>         samples per player           [default: predicted]
    --trials <int>    protocol executions          [default: 200]

advise OPTIONS:
    --locality <name> and | threshold:<T> | any    [default: any]

report USAGE:
    dut report <trace.jsonl>

lint USAGE:
    dut lint [workspace-root]     lint the workspace (default: cwd)
    dut lint --rules              list rule IDs and what they enforce
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `report` and `lint` take positional args, not --key value pairs.
    if args.first().map(String::as_str) == Some("report") {
        return match cmd_report(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("lint") {
        return cmd_lint(&args[1..]);
    }
    let Some((command, options)) = parse(&args) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // DUT_TRACE=<path> traces this invocation too.
    dut_obs::init_from_env();
    let result = match command.as_str() {
        "test" => cmd_test(&options),
        "predict" => cmd_predict(&options),
        "advise" => cmd_advise(&options),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    let recorder = dut_obs::global();
    recorder.emit_metrics_snapshot();
    recorder.flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `dut help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn parse(args: &[String]) -> Option<(String, BTreeMap<String, String>)> {
    let command = args.first()?.clone();
    let mut options = BTreeMap::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        let value = args.get(i + 1)?;
        options.insert(key.to_owned(), value.clone());
        i += 2;
    }
    Some((command, options))
}

fn get_usize(
    options: &BTreeMap<String, String>,
    key: &str,
    default: usize,
) -> Result<usize, String> {
    match options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} needs an integer, got `{v}`")),
    }
}

fn get_f64(options: &BTreeMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} needs a number, got `{v}`")),
    }
}

fn parse_rule(spec: &str, k: usize) -> Result<Rule, String> {
    match spec {
        "and" => Ok(Rule::And),
        "balanced" => Ok(Rule::Balanced),
        "centralized" => Ok(Rule::Centralized),
        other => {
            if let Some(t) = other.strip_prefix("threshold:") {
                let t: usize = t
                    .parse()
                    .map_err(|_| format!("threshold rule needs an integer, got `{t}`"))?;
                if t == 0 || t > k {
                    return Err(format!("threshold {t} outside 1..={k}"));
                }
                Ok(Rule::TThreshold { t })
            } else {
                Err(format!(
                    "unknown rule `{other}` (and | threshold:<T> | balanced | centralized)"
                ))
            }
        }
    }
}

fn parse_input(
    spec: &str,
    n: usize,
    eps: f64,
    rng: &mut rand::rngs::StdRng,
) -> Result<DenseDistribution, String> {
    match spec {
        "uniform" => Ok(families::uniform(n)),
        "two-level" => families::two_level(n, eps).map_err(|e| e.to_string()),
        "alternating" => families::alternating(n, eps).map_err(|e| e.to_string()),
        "zipf" => families::zipf(n, 1.0).map_err(|e| e.to_string()),
        "hard" => {
            // A random member of the paper's nu_z family; requires a
            // power-of-two domain of size >= 4.
            if !n.is_power_of_two() || n < 4 {
                return Err("the hard family needs a power-of-two domain >= 4".into());
            }
            let ell = n.trailing_zeros() - 1;
            let dom = distributed_uniformity::probability::PairedDomain::new(ell);
            let z = distributed_uniformity::probability::PerturbationVector::random(
                dom.cube_size(),
                rng,
            );
            dom.perturbed_distribution(&z, eps)
                .map_err(|e| e.to_string())
        }
        other => Err(format!(
            "unknown input `{other}` (uniform | two-level | alternating | zipf | hard)"
        )),
    }
}

fn cmd_test(options: &BTreeMap<String, String>) -> Result<(), String> {
    let n = get_usize(options, "n", 1024)?;
    let k = get_usize(options, "k", 16)?;
    let eps = get_f64(options, "eps", 0.5)?;
    let seed = get_usize(options, "seed", 20_190_729)? as u64;
    let trials = get_usize(options, "trials", 200)?;
    let rule = parse_rule(options.get("rule").map_or("balanced", String::as_str), k)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let input_spec = options.get("input").map_or("two-level", String::as_str);
    let input = parse_input(input_spec, n, eps, &mut rng)?;

    let tester = UniformityTester::builder()
        .domain_size(n)
        .players(k)
        .epsilon(eps)
        .rule(rule)
        .build()
        .map_err(|e| e.to_string())?;
    let q = match options.get("q") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--q needs an integer, got `{v}`"))?,
        None => tester.predicted_sample_count(),
    };
    println!("configuration: n={n} k={k} eps={eps} rule={rule} q={q} input={input_spec}");
    let prepared = tester.prepare(q, &mut rng);

    let target = input.alias_sampler();
    let accept = prepared.acceptance_rate(&target, trials, &mut rng);
    println!(
        "acceptance on `{input_spec}` over {trials} runs: {:.1}%",
        100.0 * accept
    );

    if input_spec != "uniform" {
        let uniform = families::uniform(n).alias_sampler();
        let completeness = prepared.acceptance_rate(&uniform, trials, &mut rng);
        println!(
            "acceptance on uniform (completeness):      {:.1}%",
            100.0 * completeness
        );
        let dist = distributed_uniformity::probability::distance::l1_distance(
            &input,
            &families::uniform(n),
        );
        println!("input l1 distance from uniform: {dist:.4}");
        if dist >= eps {
            let ok = completeness >= 2.0 / 3.0 && accept <= 1.0 / 3.0;
            println!(
                "two-sided 2/3 guarantee: {}",
                if ok { "HOLDS" } else { "violated at this q" }
            );
        }
    }
    Ok(())
}

/// `dut lint [root]` — workspace static analysis (dut-analyze).
///
/// Exits nonzero on any unsuppressed finding, so CI can gate on it.
/// The pass runs under a `lint.workspace` span and emits a
/// `lint_summary` event, so `dut report` shows analysis cost next to
/// experiment cost.
fn cmd_lint(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--rules") {
        print!("{}", dut_analyze::rules_table());
        return ExitCode::SUCCESS;
    }
    let root = match args {
        [] => match std::env::current_dir() {
            Ok(dir) => dir,
            Err(error) => {
                eprintln!("error: cannot resolve cwd: {error}");
                return ExitCode::FAILURE;
            }
        },
        [path] => std::path::PathBuf::from(path),
        _ => {
            eprintln!("usage: dut lint [workspace-root] | dut lint --rules");
            return ExitCode::FAILURE;
        }
    };
    dut_obs::init_from_env();
    let result = {
        let _span = dut_obs::span!("lint.workspace");
        dut_analyze::lint_workspace(&root)
    };
    let recorder = dut_obs::global();
    let code = match result {
        Ok(report) => {
            recorder.emit_with(|| {
                dut_obs::Event::new("lint_summary")
                    .with("files", report.files_checked as u64)
                    .with("findings", report.findings.len() as u64)
                    .with("suppressed", report.suppressed as u64)
            });
            println!("{report}");
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    };
    recorder.flush();
    code
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("usage: dut report <trace.jsonl>".into());
    };
    let summary = dut_obs::report::summarize_file(path)?;
    print!("{summary}");
    Ok(())
}

fn cmd_predict(options: &BTreeMap<String, String>) -> Result<(), String> {
    let n = get_usize(options, "n", 1024)?;
    let k = get_usize(options, "k", 16)?;
    let eps = get_f64(options, "eps", 0.5)?;
    println!("theory predictions for n={n}, k={k}, eps={eps}:");
    println!(
        "  centralized (Paninski)             q ~ {:>10.0}",
        theory::centralized(n, eps)
    );
    println!(
        "  any rule (Thm 1.1 floor)           q ≥ {:>10.0}",
        theory::theorem_1_1(n, k, eps)
    );
    println!(
        "  optimal threshold upper ([7])      q ~ {:>10.0}",
        theory::fmo_threshold_upper(n, k, eps)
    );
    println!(
        "  AND rule (Thm 1.2 floor)           q ≥ {:>10.0}",
        theory::theorem_1_2(n, k, eps).max(theory::theorem_1_1(n, k, eps))
    );
    println!(
        "  AND rule upper ([7])               q ~ {:>10.0}",
        theory::fmo_and_upper(n, k, eps)
    );
    println!(
        "  Thm 1.2 validity range             k ≤ 2^(1/eps) = {:.0}",
        theory::theorem_1_2_k_range(eps)
    );
    println!(
        "  learning floor at q=16 (Thm 1.4)   k ≥ {:>10.0}",
        theory::theorem_1_4_min_players(n, 16)
    );
    Ok(())
}

fn cmd_advise(options: &BTreeMap<String, String>) -> Result<(), String> {
    let n = get_usize(options, "n", 1024)?;
    let k = get_usize(options, "k", 16)?;
    let eps = get_f64(options, "eps", 0.5)?;
    let locality = match options.get("locality").map_or("any", String::as_str) {
        "and" => LocalityRequirement::FullyLocal,
        "any" => LocalityRequirement::Unrestricted,
        other => {
            if let Some(t) = other.strip_prefix("threshold:") {
                let t = t
                    .parse()
                    .map_err(|_| format!("threshold locality needs an integer, got `{t}`"))?;
                LocalityRequirement::AtMostThreshold(t)
            } else {
                return Err(format!(
                    "unknown locality `{other}` (and | threshold:<T> | any)"
                ));
            }
        }
    };
    let rec = recommend(n, k, eps, locality);
    println!("recommended rule: {}", rec.rule);
    println!("predicted samples/player: {:.0}", rec.predicted_samples);
    println!(
        "alternatives: AND {:.0} | optimal {:.0} | centralized {:.0}",
        rec.and_rule_samples, rec.optimal_samples, rec.centralized_samples
    );
    println!("rationale: {}", rec.rationale);
    Ok(())
}
