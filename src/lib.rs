//! # distributed-uniformity
//!
//! Reproduction of *Can Distributed Uniformity Testing Be Local?*
//! (Meir, Minzer, Oshman — PODC 2019).
//!
//! This facade crate re-exports the full public API of
//! [`dut_core`] — the tester builder, the decision-rule hierarchy, the
//! protocol advisor, and the substrate crates (probability, Fourier
//! analysis, the simulated network, the tester library, the experiment
//! harness, and the executable lower-bound machinery).
//!
//! See the repository `README.md` for an architectural overview,
//! `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for the
//! reproduced results. Runnable examples live under `examples/`:
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release --example sensor_network
//! cargo run --release --example rule_comparison
//! cargo run --release --example identity_testing
//! cargo run --release --example lower_bound_demo
//! cargo run --release --example congest_testing
//! ```

#![forbid(unsafe_code)]
// Tests assert exact constructed values and index with small literals.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]

pub use dut_core::*;
