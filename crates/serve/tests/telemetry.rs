//! End-to-end telemetry tests: the stats and flight admin commands
//! against a live server, queue-depth gauge hygiene, the shed-burst
//! flight dump, and the `dut top` dashboard loop.
//!
//! The metrics registry and flight recorder are process-global, so
//! every test that generates `run` traffic (or compares counter
//! deltas) serializes on [`TRAFFIC`]; pure protocol tests and the
//! renderer tests stay parallel.

use dut_core::Rule;
use dut_serve::protocol::{render_request, Family, ReplyLine, Request};
use dut_serve::server::{self, ServeConfig, SHED_BURST_THRESHOLD};
use dut_serve::stats::Stats;
use dut_serve::{loadgen, top};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes tests whose counter-delta assertions would see each
/// other's traffic through the process-global registry.
static TRAFFIC: Mutex<()> = Mutex::new(());

fn start_server(workers: usize, queue_cap: usize) -> server::ServerHandle {
    server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        cache_cap: 16,
        queue_cap,
        ..ServeConfig::default()
    })
    .expect("server starts on an ephemeral port")
}

fn request() -> Request {
    Request {
        n: 64,
        k: 8,
        q: 8,
        eps: 0.5,
        rule: Rule::Balanced,
        family: Family::Uniform,
        seed: 7,
        trials: 1,
    }
}

fn connect(addr: &std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn send_line(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(stream, "{line}").expect("send");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    reply.trim().to_owned()
}

#[test]
fn stats_accounting_is_exact_and_queue_drains() {
    let _traffic = TRAFFIC
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let handle = start_server(2, 64);
    let addr = handle.local_addr();
    let pre = loadgen::fetch_stats(&addr.to_string()).expect("pre stats");
    let total = 25u64;
    {
        let (mut stream, mut reader) = connect(&addr);
        for _ in 0..total {
            let reply = send_line(&mut stream, &mut reader, &render_request(&request()));
            assert!(
                matches!(ReplyLine::parse(&reply), Ok(ReplyLine::Reply(_))),
                "unexpected reply: {reply}"
            );
        }
    }
    let post = loadgen::fetch_stats(&addr.to_string()).expect("post stats");
    // Server-side accounting matches the client exactly: every request
    // answered, every one a cache lookup, nothing left in the queue.
    assert_eq!(post.requests - pre.requests, total);
    assert_eq!(
        (post.cache_hits + post.cache_misses) - (pre.cache_hits + pre.cache_misses),
        total
    );
    assert_eq!(
        post.queue_depth, 0,
        "queue depth must return to 0 after drain"
    );
    assert!(post.uptime_micros >= pre.uptime_micros);
    handle.request_shutdown();
    handle.join();
}

#[test]
fn flight_command_dumps_the_ring() {
    let handle = start_server(1, 8);
    let (mut stream, mut reader) = connect(&handle.local_addr());
    let reply = send_line(&mut stream, &mut reader, "{\"cmd\":\"flight\"}");
    let doc = dut_obs::json::parse(&reply).expect("flight reply is JSON");
    let retained = doc
        .get("retained")
        .and_then(dut_obs::json::Json::as_u64)
        .expect("retained count");
    let events = match doc.get("flight") {
        Some(dut_obs::json::Json::Arr(items)) => items.len() as u64,
        other => panic!("flight is not an array: {other:?}"),
    };
    assert_eq!(retained, events);
    // The server's own serve_started event is in the ring, so a live
    // server never dumps empty.
    assert!(retained >= 1);
    drop(stream);
    handle.request_shutdown();
    handle.join();
}

/// A request heavy enough (a couple of seconds in either build
/// profile) to pin the single worker while queue pressure builds
/// behind it. Its cache key is distinct from [`request`]'s, so it
/// never coalesces with the light traffic.
fn slow_request() -> Request {
    // Debug builds run the trial loop roughly 6x slower; scale so the
    // pin lasts seconds in both profiles without wasting minutes.
    let trials = if cfg!(debug_assertions) {
        20_000
    } else {
        60_000
    };
    Request {
        n: 256,
        k: 8,
        q: 24,
        eps: 0.5,
        rule: Rule::Balanced,
        family: Family::Uniform,
        seed: 11,
        trials,
    }
}

#[test]
fn shed_burst_triggers_a_flight_dump() {
    let _traffic = TRAFFIC
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let sink = std::sync::Arc::new(dut_obs::MemorySink::new());
    dut_obs::global().install_sink(sink.clone());
    let handle = start_server(1, 1);
    let addr = handle.local_addr();
    // Pin the only worker with a slow request and fill the one queue
    // slot with a light one, both from the same connection. The pin
    // goes first and gets a head start: sent back to back, the
    // filler could be shed at the still-full queue instead of
    // occupying it.
    let (mut busy, mut busy_reader) = connect(&addr);
    writeln!(busy, "{}", render_request(&slow_request())).expect("pin send");
    std::thread::sleep(Duration::from_millis(200));
    writeln!(busy, "{}", render_request(&request())).expect("filler send");
    std::thread::sleep(Duration::from_millis(200));
    // ...then every further request is shed; enough consecutive
    // sheds cross the burst threshold and dump the flight recorder —
    // once per burst, even though the victim connection stays open
    // the whole time.
    let (mut victim, mut victim_reader) = connect(&addr);
    for _ in 0..(SHED_BURST_THRESHOLD + 2) {
        let line = send_line(&mut victim, &mut victim_reader, &render_request(&request()));
        assert!(
            matches!(ReplyLine::parse(&line), Ok(ReplyLine::Overloaded)),
            "expected overloaded, got: {line}"
        );
    }
    let dumps: Vec<_> = sink
        .events()
        .into_iter()
        .filter(|e| e.name == "flight_dump")
        .collect();
    assert_eq!(dumps.len(), 1, "exactly one dump per burst");
    // Drain the pinned connection before shutdown.
    for _ in 0..2 {
        let mut line = String::new();
        busy_reader.read_line(&mut line).expect("busy reply");
        assert!(matches!(
            ReplyLine::parse(line.trim()),
            Ok(ReplyLine::Reply(_))
        ));
    }
    drop(busy);
    drop(victim);
    handle.request_shutdown();
    handle.join();
}

/// Coalescing keeps the books exact: queued requests for one
/// prepared tester answered in a single pass still count one cache
/// lookup each (hits + misses == requests), the coalesced counter
/// moves, and every reply stays bit-identical to the offline engine.
#[test]
fn coalesced_batches_keep_cache_accounting_exact() {
    let _traffic = TRAFFIC
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let handle = start_server(1, 64);
    let addr = handle.local_addr();
    let pre = loadgen::fetch_stats(&addr.to_string()).expect("pre stats");
    // Pin the single worker so the identical-key followers pile up
    // in the queue and dequeue as one coalesced batch.
    let (mut busy, mut busy_reader) = connect(&addr);
    writeln!(busy, "{}", render_request(&slow_request())).expect("pin send");
    std::thread::sleep(Duration::from_millis(100));
    let followers = 8usize;
    let mut conns = Vec::new();
    for _ in 0..followers {
        let (mut stream, reader) = connect(&addr);
        writeln!(stream, "{}", render_request(&request())).expect("follower send");
        conns.push((stream, reader));
    }
    let offline = dut_serve::engine::offline_reply(&request()).expect("offline reference");
    for (_stream, reader) in &mut conns {
        let mut line = String::new();
        reader.read_line(&mut line).expect("follower reply");
        let ReplyLine::Reply(reply) = ReplyLine::parse(line.trim()).expect("parses") else {
            panic!("non-reply follower line: {line}");
        };
        assert_eq!(reply.verdict, offline.verdict);
        assert_eq!(reply.p_hat.to_bits(), offline.p_hat.to_bits());
    }
    let mut line = String::new();
    busy_reader.read_line(&mut line).expect("pin reply");
    assert!(matches!(
        ReplyLine::parse(line.trim()),
        Ok(ReplyLine::Reply(_))
    ));
    let post = loadgen::fetch_stats(&addr.to_string()).expect("post stats");
    let requests = post.requests - pre.requests;
    let lookups = (post.cache_hits + post.cache_misses) - (pre.cache_hits + pre.cache_misses);
    assert_eq!(requests, followers as u64 + 1, "pin plus the followers");
    assert_eq!(
        lookups, requests,
        "hits + misses == requests, coalesced or not"
    );
    assert!(
        post.coalesced > pre.coalesced,
        "the follower batch must register as coalesced"
    );
    drop(busy);
    drop(conns);
    handle.request_shutdown();
    handle.join();
}

#[test]
fn top_renders_frames_from_a_live_server() {
    let handle = start_server(2, 16);
    let config = top::TopConfig {
        addr: handle.local_addr().to_string(),
        interval: Duration::from_millis(10),
        frames: Some(2),
        clear: true,
    };
    let mut out: Vec<u8> = Vec::new();
    top::run(&config, &mut out).expect("top runs");
    let text = String::from_utf8(out).expect("utf8 frames");
    assert_eq!(text.matches("dut top \u{2014}").count(), 2);
    // The second frame repaints in place.
    assert!(text.contains("\x1b[2J\x1b[H"));
    assert!(text.contains("req/s"));
    assert!(text.contains("SLO"));
    handle.request_shutdown();
    handle.join();
}

#[test]
fn stats_and_run_interleave_on_one_connection() {
    let handle = start_server(1, 8);
    let (mut stream, mut reader) = connect(&handle.local_addr());
    let first = send_line(&mut stream, &mut reader, "{\"cmd\":\"stats\"}");
    let stats = Stats::parse(&first).expect("first stats parses");
    let reply = send_line(&mut stream, &mut reader, &render_request(&request()));
    assert!(matches!(ReplyLine::parse(&reply), Ok(ReplyLine::Reply(_))));
    let second = send_line(&mut stream, &mut reader, "{\"cmd\":\"stats\"}");
    let later = Stats::parse(&second).expect("second stats parses");
    assert!(later.requests > stats.requests.saturating_sub(1));
    drop(stream);
    handle.request_shutdown();
    handle.join();
}
