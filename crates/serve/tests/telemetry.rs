//! End-to-end telemetry tests: the stats and flight admin commands
//! against a live server, queue-depth gauge hygiene, the shed-burst
//! flight dump, and the `dut top` dashboard loop.
//!
//! The metrics registry and flight recorder are process-global, so
//! every test that generates `run` traffic (or compares counter
//! deltas) serializes on [`TRAFFIC`]; pure protocol tests and the
//! renderer tests stay parallel.

use dut_core::Rule;
use dut_serve::protocol::{render_request, Family, ReplyLine, Request};
use dut_serve::server::{self, ServeConfig, SHED_BURST_THRESHOLD};
use dut_serve::stats::Stats;
use dut_serve::{loadgen, top};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes tests whose counter-delta assertions would see each
/// other's traffic through the process-global registry.
static TRAFFIC: Mutex<()> = Mutex::new(());

fn start_server(workers: usize, queue_cap: usize) -> server::ServerHandle {
    server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        cache_cap: 16,
        queue_cap,
        ..ServeConfig::default()
    })
    .expect("server starts on an ephemeral port")
}

fn request() -> Request {
    Request {
        n: 64,
        k: 8,
        q: 8,
        eps: 0.5,
        rule: Rule::Balanced,
        family: Family::Uniform,
        seed: 7,
        trials: 1,
    }
}

fn connect(addr: &std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn send_line(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(stream, "{line}").expect("send");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    reply.trim().to_owned()
}

#[test]
fn stats_accounting_is_exact_and_queue_drains() {
    let _traffic = TRAFFIC
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let handle = start_server(2, 64);
    let addr = handle.local_addr();
    let pre = loadgen::fetch_stats(&addr.to_string()).expect("pre stats");
    let total = 25u64;
    {
        let (mut stream, mut reader) = connect(&addr);
        for _ in 0..total {
            let reply = send_line(&mut stream, &mut reader, &render_request(&request()));
            assert!(
                matches!(ReplyLine::parse(&reply), Ok(ReplyLine::Reply(_))),
                "unexpected reply: {reply}"
            );
        }
    }
    let post = loadgen::fetch_stats(&addr.to_string()).expect("post stats");
    // Server-side accounting matches the client exactly: every request
    // answered, every one a cache lookup, nothing left in the queue.
    assert_eq!(post.requests - pre.requests, total);
    assert_eq!(
        (post.cache_hits + post.cache_misses) - (pre.cache_hits + pre.cache_misses),
        total
    );
    assert_eq!(
        post.queue_depth, 0,
        "queue depth must return to 0 after drain"
    );
    assert!(post.uptime_micros >= pre.uptime_micros);
    handle.request_shutdown();
    handle.join();
}

#[test]
fn run_checked_passes_against_a_live_server() {
    let _traffic = TRAFFIC
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let handle = start_server(2, 64);
    let config = loadgen::LoadgenConfig {
        addr: handle.local_addr().to_string(),
        rps: 400,
        duration: Duration::from_millis(400),
        connections: 2,
        verify_offline: false,
    };
    let (report, check) = loadgen::run_checked(&config).expect("run_checked");
    assert!(report.replies > 0);
    assert_eq!(report.errors, 0);
    assert!(
        check.passed(),
        "stats cross-check failed: {:?}",
        check.failures
    );
    handle.request_shutdown();
    handle.join();
}

#[test]
fn flight_command_dumps_the_ring() {
    let handle = start_server(1, 8);
    let (mut stream, mut reader) = connect(&handle.local_addr());
    let reply = send_line(&mut stream, &mut reader, "{\"cmd\":\"flight\"}");
    let doc = dut_obs::json::parse(&reply).expect("flight reply is JSON");
    let retained = doc
        .get("retained")
        .and_then(dut_obs::json::Json::as_u64)
        .expect("retained count");
    let events = match doc.get("flight") {
        Some(dut_obs::json::Json::Arr(items)) => items.len() as u64,
        other => panic!("flight is not an array: {other:?}"),
    };
    assert_eq!(retained, events);
    // The server's own serve_started event is in the ring, so a live
    // server never dumps empty.
    assert!(retained >= 1);
    drop(stream);
    handle.request_shutdown();
    handle.join();
}

#[test]
fn shed_burst_triggers_a_flight_dump() {
    let _traffic = TRAFFIC
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let sink = std::sync::Arc::new(dut_obs::MemorySink::new());
    dut_obs::global().install_sink(sink.clone());
    let handle = start_server(1, 1);
    let addr = handle.local_addr();
    // Pin the only worker on a connection mid-request...
    let (mut busy, mut busy_reader) = connect(&addr);
    let reply = send_line(&mut busy, &mut busy_reader, &render_request(&request()));
    assert!(matches!(ReplyLine::parse(&reply), Ok(ReplyLine::Reply(_))));
    // ...fill the queue bound with a second idle connection...
    let (_queued, _queued_reader) = connect(&addr);
    // ...then every further connection is shed; enough consecutive
    // sheds cross the burst threshold and dump the flight recorder.
    for _ in 0..(SHED_BURST_THRESHOLD + 2) {
        let (mut victim, mut victim_reader) = connect(&addr);
        writeln!(victim, "x").ok();
        let mut line = String::new();
        victim_reader.read_line(&mut line).expect("shed reply");
        assert!(
            matches!(ReplyLine::parse(line.trim()), Ok(ReplyLine::Overloaded)),
            "expected overloaded, got: {line}"
        );
    }
    let dumps: Vec<_> = sink
        .events()
        .into_iter()
        .filter(|e| e.name == "flight_dump")
        .collect();
    assert_eq!(dumps.len(), 1, "exactly one dump per burst");
    drop(busy);
    handle.request_shutdown();
    handle.join();
}

#[test]
fn top_renders_frames_from_a_live_server() {
    let handle = start_server(2, 16);
    let config = top::TopConfig {
        addr: handle.local_addr().to_string(),
        interval: Duration::from_millis(10),
        frames: Some(2),
        clear: true,
    };
    let mut out: Vec<u8> = Vec::new();
    top::run(&config, &mut out).expect("top runs");
    let text = String::from_utf8(out).expect("utf8 frames");
    assert_eq!(text.matches("dut top \u{2014}").count(), 2);
    // The second frame repaints in place.
    assert!(text.contains("\x1b[2J\x1b[H"));
    assert!(text.contains("req/s"));
    assert!(text.contains("SLO"));
    handle.request_shutdown();
    handle.join();
}

#[test]
fn stats_and_run_interleave_on_one_connection() {
    let handle = start_server(1, 8);
    let (mut stream, mut reader) = connect(&handle.local_addr());
    let first = send_line(&mut stream, &mut reader, "{\"cmd\":\"stats\"}");
    let stats = Stats::parse(&first).expect("first stats parses");
    let reply = send_line(&mut stream, &mut reader, &render_request(&request()));
    assert!(matches!(ReplyLine::parse(&reply), Ok(ReplyLine::Reply(_))));
    let second = send_line(&mut stream, &mut reader, "{\"cmd\":\"stats\"}");
    let later = Stats::parse(&second).expect("second stats parses");
    assert!(later.requests > stats.requests.saturating_sub(1));
    drop(stream);
    handle.request_shutdown();
    handle.join();
}
