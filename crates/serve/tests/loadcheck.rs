//! Load-generator integration tests that assert on *windowed* server
//! statistics (the stats cross-check and the trace replayer).
//!
//! These live in their own test binary on purpose: the metrics
//! registry is process-global and its latency histograms are
//! windowed, so tests that deliberately park requests behind a
//! multi-second pin (the shed and coalescing tests) would poison the
//! queue-wait percentiles these assertions read. A separate binary is
//! a separate process and a clean registry.

use dut_serve::server::{self, ServeConfig};
use dut_serve::trace::{self, TraceConfig};
use dut_serve::{loadgen, Trace};
use std::sync::Mutex;
use std::time::Duration;

/// Serializes the tests: both drive real load through the one
/// process-global registry.
static TRAFFIC: Mutex<()> = Mutex::new(());

fn start_server(workers: usize, queue_cap: usize) -> server::ServerHandle {
    server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        cache_cap: 16,
        queue_cap,
        ..ServeConfig::default()
    })
    .expect("server starts on an ephemeral port")
}

#[test]
fn run_checked_passes_against_a_live_server() {
    let _traffic = TRAFFIC
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let handle = start_server(2, 64);
    let config = loadgen::LoadgenConfig {
        addr: handle.local_addr().to_string(),
        rps: 400,
        duration: Duration::from_millis(400),
        connections: 2,
        pipeline: 1,
        verify_offline: false,
    };
    let (report, check) = loadgen::run_checked(&config).expect("run_checked");
    assert!(report.replies > 0);
    assert_eq!(report.errors, 0);
    assert!(
        check.passed(),
        "stats cross-check failed: {:?}",
        check.failures
    );
    handle.request_shutdown();
    handle.join();
}

/// Pipelined lanes (a window of requests per write) keep every reply
/// bit-identical and correctly paired: the server's per-connection
/// sequencing returns replies in send order even when workers finish
/// out of order, so offline verification must see zero mismatches.
#[test]
fn pipelined_lanes_verify_bit_identical() {
    let _traffic = TRAFFIC
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let handle = start_server(2, 64);
    let config = loadgen::LoadgenConfig {
        addr: handle.local_addr().to_string(),
        rps: 1200,
        duration: Duration::from_millis(400),
        connections: 2,
        pipeline: 4,
        verify_offline: true,
    };
    let report = loadgen::run(&config).expect("pipelined run");
    assert!(report.replies >= 8, "windows actually flowed");
    assert_eq!(report.errors, 0);
    assert_eq!(report.shed, 0);
    assert_eq!(
        report.mismatches, 0,
        "pipelined replies must stay in send order and bit-identical"
    );
    handle.request_shutdown();
    handle.join();
}

/// A generated bursty/diurnal trace replays cleanly against a live
/// server: every arrival is answered, nothing errors, the tenant
/// field survives the wire, and the replies verify bit-identical
/// against the offline engine.
#[test]
fn trace_replay_round_trips_against_a_live_server() {
    let _traffic = TRAFFIC
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let handle = start_server(2, 64);
    let trace = trace::generate(&TraceConfig {
        rps: 300,
        duration: Duration::from_millis(500),
        lanes: 4,
        burstiness: 0.3,
        diurnal: true,
        seed: 21,
        tenants: vec!["team-a".to_owned(), "team-b".to_owned()],
    });
    assert!(!trace.events.is_empty());
    // The artifact round-trips before it is replayed, the same path
    // `dut loadgen --trace <file>` takes.
    let parsed = Trace::parse(&trace.render()).expect("rendered trace parses");
    let config = loadgen::LoadgenConfig {
        addr: handle.local_addr().to_string(),
        rps: 300,
        duration: Duration::from_millis(500),
        connections: 4,
        pipeline: 1,
        verify_offline: true,
    };
    let report = loadgen::run_trace(&config, &parsed).expect("trace replay");
    assert_eq!(report.sent, parsed.events.len() as u64);
    assert_eq!(report.replies + report.shed, report.sent);
    assert_eq!(report.errors, 0, "no transport or protocol errors");
    assert_eq!(report.mismatches, 0, "replayed replies stay bit-identical");
    // Generous bound on shed: the queue is 64 deep and the rate low.
    assert_eq!(report.shed, 0, "nothing sheds at this gentle rate");
    handle.request_shutdown();
    handle.join();
}
