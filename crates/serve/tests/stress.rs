//! End-to-end stress tests for the service: concurrency, exact
//! reply accounting, offline bit-identity, load-shedding, and
//! graceful shutdown — all against a real server on a loopback
//! socket.

use dut_core::Rule;
use dut_serve::engine;
use dut_serve::protocol::{render_request, render_request_tenant, Family, ReplyLine, Request};
use dut_serve::server::{self, ServeConfig, TenantQuota};
use dut_serve::stats::Stats;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start_server(workers: usize, queue_cap: usize) -> server::ServerHandle {
    server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        cache_cap: 16,
        queue_cap,
        ..ServeConfig::default()
    })
    .expect("server starts on an ephemeral port")
}

/// A request heavy enough (a couple of seconds in either build
/// profile) to pin a worker while a test arranges queue pressure
/// behind it. Its cache key is distinct from every [`request`]
/// catalog slot, so it never coalesces with the light traffic.
fn slow_request(seed: u64) -> Request {
    // Debug builds run the trial loop roughly 6x slower; scale so the
    // pin lasts seconds in both profiles without wasting minutes.
    let trials = if cfg!(debug_assertions) {
        20_000
    } else {
        60_000
    };
    Request {
        n: 256,
        k: 8,
        q: 24,
        eps: 0.5,
        rule: Rule::Balanced,
        family: Family::Uniform,
        seed,
        trials,
    }
}

fn request(catalog_slot: u64, seed: u64) -> Request {
    let mut req = match catalog_slot % 3 {
        0 => Request {
            n: 64,
            k: 8,
            q: 8,
            eps: 0.5,
            rule: Rule::Balanced,
            family: Family::Uniform,
            seed: 0,
            trials: 2,
        },
        1 => Request {
            n: 128,
            k: 8,
            q: 10,
            eps: 0.5,
            rule: Rule::TThreshold { t: 2 },
            family: Family::TwoLevel,
            seed: 0,
            trials: 2,
        },
        _ => Request {
            n: 256,
            k: 1,
            q: 24,
            eps: 0.5,
            rule: Rule::Centralized,
            family: Family::Zipf,
            seed: 0,
            trials: 2,
        },
    };
    req.seed = seed;
    req
}

fn send_shutdown(addr: &std::net::SocketAddr) {
    let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    writeln!(stream, "{{\"cmd\":\"shutdown\"}}").expect("send shutdown");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("shutdown ack");
    assert_eq!(
        ReplyLine::parse(line.trim()).expect("parseable ack"),
        ReplyLine::ShutdownAck
    );
}

/// M concurrent clients, R requests each over persistent
/// connections: every request gets exactly one reply, and every
/// reply is bit-identical to the offline reference evaluation of the
/// same request.
#[test]
fn concurrent_clients_get_exact_offline_identical_replies() {
    let clients = 8u64;
    let per_client = 24u64;
    let handle = start_server(4, 64);
    let addr = handle.local_addr();
    let mut joins = Vec::new();
    for client in 0..clients {
        joins.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("timeout");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut replies = Vec::new();
            for i in 0..per_client {
                let req = request(client + i, 7000 + client * 1000 + i);
                writeln!(writer, "{}", render_request(&req)).expect("send");
                let mut line = String::new();
                let got = reader.read_line(&mut line).expect("reply arrives");
                assert!(got > 0, "server closed early on client {client}");
                replies.push((req, line.trim().to_owned()));
            }
            // Half-close the write side: the server sees EOF, closes
            // the connection, and the reader must observe a clean EOF
            // with no stray bytes (exactly one reply per request).
            writer
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close");
            let mut rest = String::new();
            let trailing = reader.read_to_string(&mut rest).expect("clean EOF");
            assert_eq!(trailing, 0, "stray bytes after replies: {rest:?}");
            replies
        }));
    }
    let mut total = 0u64;
    for join in joins {
        for (req, line) in join.join().expect("client thread") {
            total += 1;
            let ReplyLine::Reply(reply) = ReplyLine::parse(&line).expect("reply parses") else {
                panic!("non-reply line: {line}");
            };
            let offline = engine::offline_reply(&req).expect("offline reference");
            assert_eq!(reply.verdict, offline.verdict, "request {req:?}");
            assert_eq!(reply.p_hat.to_bits(), offline.p_hat.to_bits());
            assert_eq!(reply.wilson_lo.to_bits(), offline.wilson_lo.to_bits());
            assert_eq!(reply.wilson_hi.to_bits(), offline.wilson_hi.to_bits());
        }
    }
    assert_eq!(total, clients * per_client, "one reply per request");
    send_shutdown(&addr);
    handle.join();
}

/// Below the queue bound nothing is shed; beyond it, excess
/// *requests* get the explicit `overloaded` reply while the
/// connection stays parked and usable, and already accepted work
/// still completes.
#[test]
fn sheds_only_above_the_queue_bound() {
    // One worker, queue of two: the worker is pinned by a slow
    // request, two light requests sit queued behind it, and every
    // further request must be shed — per request, not per connection.
    let handle = start_server(1, 2);
    let addr = handle.local_addr();

    let mut busy = TcpStream::connect(addr).expect("busy connect");
    busy.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let pin = slow_request(42);
    let filler = request(0, 43);
    writeln!(busy, "{}", render_request(&pin)).expect("pin send");
    let mut busy_reader = BufReader::new(busy.try_clone().expect("clone"));
    // Wait until the worker holds the pin before queueing the
    // fillers — sent back to back, a filler can reach the full queue
    // before the worker pops the pin and be shed in its place.
    std::thread::sleep(Duration::from_millis(200));
    writeln!(busy, "{}", render_request(&filler)).expect("filler send");
    writeln!(busy, "{}", render_request(&filler)).expect("filler send");
    // Let the shard frame the fillers so they occupy the whole queue.
    std::thread::sleep(Duration::from_millis(200));

    // Overflow from a separate connection: each request is shed with
    // an explicit reply and the connection itself stays open.
    let victim = TcpStream::connect(addr).expect("victim connect");
    victim
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut victim_writer = victim.try_clone().expect("clone");
    let mut victim_reader = BufReader::new(victim);
    for i in 0..4 {
        writeln!(victim_writer, "{}", render_request(&request(i, 900 + i))).expect("overflow send");
        let mut line = String::new();
        let got = victim_reader.read_line(&mut line).expect("shed reply");
        assert!(got > 0, "connection must survive a shed");
        match ReplyLine::parse(line.trim()) {
            Ok(ReplyLine::Overloaded) => {}
            other => panic!("expected overloaded, got {other:?}"),
        }
    }

    // Accepted work completes: the pin and both fillers answer in
    // submission order on the busy connection.
    for expect in [&pin, &filler, &filler] {
        let mut line = String::new();
        busy_reader.read_line(&mut line).expect("busy reply");
        let ReplyLine::Reply(reply) = ReplyLine::parse(line.trim()).expect("parseable") else {
            panic!("non-reply on busy connection: {line}");
        };
        let offline = engine::offline_reply(expect).expect("offline reference");
        assert_eq!(reply.verdict, offline.verdict);
    }

    // The shed connection was never closed: with capacity back, the
    // same socket is served end to end.
    writeln!(victim_writer, "{}", render_request(&request(1, 77))).expect("victim send again");
    let mut line = String::new();
    victim_reader.read_line(&mut line).expect("victim served");
    assert!(
        matches!(ReplyLine::parse(line.trim()), Ok(ReplyLine::Reply(_))),
        "shed connection must be served once the queue drains: {line}"
    );

    drop(busy);
    drop(busy_reader);
    drop(victim_writer);
    drop(victim_reader);
    send_shutdown(&addr);
    handle.join();
}

/// Sixty-four persistent connections multiplexed over four shard
/// event loops: every reply is bit-identical to the offline
/// reference and every connection sees a clean EOF — no cross-shard
/// interleaving corruption.
#[test]
fn four_shards_keep_sixty_four_connections_bit_identical() {
    let handle = server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        shards: 4,
        cache_cap: 16,
        queue_cap: 256,
        ..ServeConfig::default()
    })
    .expect("server starts on an ephemeral port");
    let addr = handle.local_addr();
    let clients = 64u64;
    let per_client = 4u64;
    let mut joins = Vec::new();
    for client in 0..clients {
        joins.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("timeout");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut replies = Vec::new();
            for i in 0..per_client {
                let req = request(client + i, 40_000 + client * 100 + i);
                writeln!(writer, "{}", render_request(&req)).expect("send");
                let mut line = String::new();
                let got = reader.read_line(&mut line).expect("reply arrives");
                assert!(got > 0, "server closed early on client {client}");
                replies.push((req, line.trim().to_owned()));
            }
            writer
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close");
            let mut rest = String::new();
            let trailing = reader.read_to_string(&mut rest).expect("clean EOF");
            assert_eq!(trailing, 0, "stray bytes after replies: {rest:?}");
            replies
        }));
    }
    let mut total = 0u64;
    for join in joins {
        for (req, line) in join.join().expect("client thread") {
            total += 1;
            let ReplyLine::Reply(reply) = ReplyLine::parse(&line).expect("reply parses") else {
                panic!("non-reply line: {line}");
            };
            let offline = engine::offline_reply(&req).expect("offline reference");
            assert_eq!(reply.verdict, offline.verdict, "request {req:?}");
            assert_eq!(reply.p_hat.to_bits(), offline.p_hat.to_bits());
            assert_eq!(reply.wilson_lo.to_bits(), offline.wilson_lo.to_bits());
            assert_eq!(reply.wilson_hi.to_bits(), offline.wilson_hi.to_bits());
        }
    }
    assert_eq!(total, clients * per_client, "one reply per request");
    send_shutdown(&addr);
    handle.join();
}

/// Token-bucket admission: the over-quota tenant is shed at its
/// bucket, other tenants and the global queue are untouched, and the
/// per-tenant accounting lands in `{"cmd":"stats"}`.
#[test]
fn tenant_quota_sheds_only_the_over_quota_tenant() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_cap: 16,
        queue_cap: 64,
        ..ServeConfig::default()
    };
    config.tenancy.quotas.push(TenantQuota {
        name: "metered".to_owned(),
        rate: 0.001,
        burst: 3.0,
        priority: 0,
    });
    let handle = server::start(&config).expect("server starts");
    let addr = handle.local_addr();

    let metered = TcpStream::connect(addr).expect("metered connect");
    metered
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut metered_writer = metered.try_clone().expect("clone");
    let mut metered_reader = BufReader::new(metered);
    let mut verdicts = Vec::new();
    for i in 0..6 {
        let wire = render_request_tenant(&request(0, 600 + i), "metered");
        writeln!(metered_writer, "{wire}").expect("metered send");
        let mut line = String::new();
        metered_reader.read_line(&mut line).expect("metered reply");
        verdicts.push(match ReplyLine::parse(line.trim()) {
            Ok(ReplyLine::Reply(_)) => "served",
            Ok(ReplyLine::Overloaded) => {
                assert!(
                    line.contains("\"scope\":\"tenant\""),
                    "tenant shed must be marked: {line}"
                );
                "shed"
            }
            other => panic!("unexpected metered reply: {other:?}"),
        });
    }
    // Burst of 3 with a negligible refill rate: exactly the first
    // three admitted, the rest shed, all on one open connection.
    assert_eq!(
        verdicts,
        ["served", "served", "served", "shed", "shed", "shed"]
    );

    // An unlisted tenant rides the unlimited default and never sheds.
    let free = TcpStream::connect(addr).expect("free connect");
    free.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut free_writer = free.try_clone().expect("clone");
    let mut free_reader = BufReader::new(free);
    for i in 0..6 {
        let wire = render_request_tenant(&request(1, 700 + i), "free");
        writeln!(free_writer, "{wire}").expect("free send");
        let mut line = String::new();
        free_reader.read_line(&mut line).expect("free reply");
        assert!(
            matches!(ReplyLine::parse(line.trim()), Ok(ReplyLine::Reply(_))),
            "unlisted tenant must never shed: {line}"
        );
    }

    // Per-tenant accounting is server-local, so the stats reply is
    // exact even when other tests share the process-global registry.
    writeln!(free_writer, "{{\"cmd\":\"stats\"}}").expect("stats send");
    let mut line = String::new();
    free_reader.read_line(&mut line).expect("stats reply");
    let stats = Stats::parse(line.trim()).expect("stats parse");
    let row = stats
        .tenants
        .iter()
        .find(|t| t.name == "metered")
        .expect("metered tenant row");
    assert_eq!(row.requests, 3, "admitted requests for the metered tenant");
    assert_eq!(row.shed, 3, "shed requests for the metered tenant");

    drop(metered_writer);
    drop(metered_reader);
    drop(free_writer);
    drop(free_reader);
    send_shutdown(&addr);
    handle.join();
}

/// The accept-stall regression: shed replies ride the nonblocking
/// per-connection writer, so clients that never read do not stall
/// new connections, and every unread shed reply is still delivered —
/// exactly one per request — once the slow reader finally drains.
#[test]
fn slow_readers_do_not_stall_fresh_connections_during_a_shed_burst() {
    let handle = start_server(1, 1);
    let addr = handle.local_addr();

    // Pin the worker and fill the one queue slot from one connection.
    let mut busy = TcpStream::connect(addr).expect("busy connect");
    busy.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    writeln!(busy, "{}", render_request(&slow_request(8))).expect("pin send");
    let mut busy_reader = BufReader::new(busy.try_clone().expect("clone"));
    // Pin first, then the filler: back to back the filler could be
    // shed at the still-full queue instead of occupying it.
    std::thread::sleep(Duration::from_millis(200));
    writeln!(busy, "{}", render_request(&request(0, 9))).expect("filler send");
    std::thread::sleep(Duration::from_millis(200));

    // Three slow readers each fire four shed-bound requests and do
    // not read a single byte back.
    let mut slow_readers = Vec::new();
    for s in 0..3u64 {
        let stream = TcpStream::connect(addr).expect("slow-reader connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut writer = stream.try_clone().expect("clone");
        for i in 0..4u64 {
            writeln!(
                writer,
                "{}",
                render_request(&request(i, 8_000 + s * 10 + i))
            )
            .expect("slow-reader send");
        }
        slow_readers.push((writer, BufReader::new(stream)));
    }
    std::thread::sleep(Duration::from_millis(100));

    // A fresh connection is accepted and answered promptly even
    // though twelve shed replies sit undrained in other sockets.
    let fresh = TcpStream::connect(addr).expect("fresh connect");
    fresh
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut fresh_writer = fresh.try_clone().expect("clone");
    let mut fresh_reader = BufReader::new(fresh);
    let t0 = std::time::Instant::now();
    writeln!(fresh_writer, "{}", render_request(&request(2, 5))).expect("fresh send");
    let mut line = String::new();
    fresh_reader.read_line(&mut line).expect("fresh shed reply");
    assert!(
        matches!(ReplyLine::parse(line.trim()), Ok(ReplyLine::Overloaded)),
        "fresh connection sheds at the full queue: {line}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shed reply must not wait on slow readers: {:?}",
        t0.elapsed()
    );

    // Every slow reader now drains exactly its four shed replies.
    for (writer, mut reader) in slow_readers {
        for _ in 0..4 {
            let mut line = String::new();
            let got = reader.read_line(&mut line).expect("buffered shed reply");
            assert!(got > 0, "shed reply lost for a slow reader");
            assert!(
                matches!(ReplyLine::parse(line.trim()), Ok(ReplyLine::Overloaded)),
                "expected overloaded, got: {line}"
            );
        }
        writer
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut rest = String::new();
        let trailing = reader.read_to_string(&mut rest).expect("clean EOF");
        assert_eq!(trailing, 0, "stray bytes after shed replies: {rest:?}");
    }

    // The pinned connection's work still completes.
    for _ in 0..2 {
        let mut line = String::new();
        busy_reader.read_line(&mut line).expect("busy reply");
        assert!(matches!(
            ReplyLine::parse(line.trim()),
            Ok(ReplyLine::Reply(_))
        ));
    }
    drop(busy);
    drop(busy_reader);
    drop(fresh_writer);
    drop(fresh_reader);
    send_shutdown(&addr);
    handle.join();
}

/// Graceful shutdown: the ack arrives, `join` returns, queued work
/// drained, and the port stops accepting.
#[test]
fn shutdown_drains_and_releases_the_port() {
    let handle = start_server(2, 8);
    let addr = handle.local_addr();

    // A connection with one request in flight at shutdown time.
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let req = request(1, 99);
    writeln!(writer, "{}", render_request(&req)).expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply");
    assert!(matches!(
        ReplyLine::parse(line.trim()),
        Ok(ReplyLine::Reply(_))
    ));

    send_shutdown(&addr);
    assert!(handle.is_shutting_down());
    handle.join();

    // After join the listener is gone; a fresh connect must fail
    // outright or be closed without ever answering a request.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            late.set_read_timeout(Some(Duration::from_secs(2)))
                .expect("timeout");
            let _ = writeln!(late, "{}", render_request(&req));
            let mut reader = BufReader::new(late);
            let mut line = String::new();
            let got = reader.read_line(&mut line).unwrap_or(0);
            assert_eq!(got, 0, "a drained server must not answer: {line}");
        }
    }
}

/// The tester cache under a worker-pool-shaped herd: every lookup is
/// classified, exactly one build per distinct key, hits + misses ==
/// calls.
#[test]
fn cache_accounting_is_exact_under_threads() {
    let engine = dut_serve::Engine::new(8);
    let threads = 8u64;
    let calls_per_thread = 12u64;
    let outcomes = parking_lot::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = &engine;
            let outcomes = &outcomes;
            scope.spawn(move || {
                let mut local = Vec::new();
                for i in 0..calls_per_thread {
                    // Two distinct keys shared by all threads.
                    let req = request((t + i) % 2, 300 + i);
                    let reply = engine.handle(&req).expect("handled");
                    local.push(reply.cache_hit);
                }
                outcomes.lock().extend(local);
            });
        }
    });
    let outcomes = outcomes.into_inner();
    assert_eq!(outcomes.len() as u64, threads * calls_per_thread);
    let misses = outcomes.iter().filter(|&&hit| !hit).count();
    // Exactly one miss per distinct key — single flight — and every
    // other call a hit: hits + misses == calls by construction of
    // the two counts, misses == distinct keys by single-flight.
    assert_eq!(misses, 2, "one build per distinct key");
    assert_eq!(engine.cached_testers(), 2);
}
