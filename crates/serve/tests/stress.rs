//! End-to-end stress tests for the service: concurrency, exact
//! reply accounting, offline bit-identity, load-shedding, and
//! graceful shutdown — all against a real server on a loopback
//! socket.

use dut_core::Rule;
use dut_serve::engine;
use dut_serve::protocol::{render_request, Family, ReplyLine, Request};
use dut_serve::server::{self, ServeConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start_server(workers: usize, queue_cap: usize) -> server::ServerHandle {
    server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        cache_cap: 16,
        queue_cap,
        ..ServeConfig::default()
    })
    .expect("server starts on an ephemeral port")
}

fn request(catalog_slot: u64, seed: u64) -> Request {
    let mut req = match catalog_slot % 3 {
        0 => Request {
            n: 64,
            k: 8,
            q: 8,
            eps: 0.5,
            rule: Rule::Balanced,
            family: Family::Uniform,
            seed: 0,
            trials: 2,
        },
        1 => Request {
            n: 128,
            k: 8,
            q: 10,
            eps: 0.5,
            rule: Rule::TThreshold { t: 2 },
            family: Family::TwoLevel,
            seed: 0,
            trials: 2,
        },
        _ => Request {
            n: 256,
            k: 1,
            q: 24,
            eps: 0.5,
            rule: Rule::Centralized,
            family: Family::Zipf,
            seed: 0,
            trials: 2,
        },
    };
    req.seed = seed;
    req
}

fn send_shutdown(addr: &std::net::SocketAddr) {
    let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    writeln!(stream, "{{\"cmd\":\"shutdown\"}}").expect("send shutdown");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("shutdown ack");
    assert_eq!(
        ReplyLine::parse(line.trim()).expect("parseable ack"),
        ReplyLine::ShutdownAck
    );
}

/// M concurrent clients, R requests each over persistent
/// connections: every request gets exactly one reply, and every
/// reply is bit-identical to the offline reference evaluation of the
/// same request.
#[test]
fn concurrent_clients_get_exact_offline_identical_replies() {
    let clients = 8u64;
    let per_client = 24u64;
    let handle = start_server(4, 64);
    let addr = handle.local_addr();
    let mut joins = Vec::new();
    for client in 0..clients {
        joins.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("timeout");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut replies = Vec::new();
            for i in 0..per_client {
                let req = request(client + i, 7000 + client * 1000 + i);
                writeln!(writer, "{}", render_request(&req)).expect("send");
                let mut line = String::new();
                let got = reader.read_line(&mut line).expect("reply arrives");
                assert!(got > 0, "server closed early on client {client}");
                replies.push((req, line.trim().to_owned()));
            }
            // Half-close the write side: the server sees EOF, closes
            // the connection, and the reader must observe a clean EOF
            // with no stray bytes (exactly one reply per request).
            writer
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close");
            let mut rest = String::new();
            let trailing = reader.read_to_string(&mut rest).expect("clean EOF");
            assert_eq!(trailing, 0, "stray bytes after replies: {rest:?}");
            replies
        }));
    }
    let mut total = 0u64;
    for join in joins {
        for (req, line) in join.join().expect("client thread") {
            total += 1;
            let ReplyLine::Reply(reply) = ReplyLine::parse(&line).expect("reply parses") else {
                panic!("non-reply line: {line}");
            };
            let offline = engine::offline_reply(&req).expect("offline reference");
            assert_eq!(reply.verdict, offline.verdict, "request {req:?}");
            assert_eq!(reply.p_hat.to_bits(), offline.p_hat.to_bits());
            assert_eq!(reply.wilson_lo.to_bits(), offline.wilson_lo.to_bits());
            assert_eq!(reply.wilson_hi.to_bits(), offline.wilson_hi.to_bits());
        }
    }
    assert_eq!(total, clients * per_client, "one reply per request");
    send_shutdown(&addr);
    handle.join();
}

/// Below the queue bound nothing is shed; beyond it, excess
/// connections get the explicit `overloaded` reply while already
/// accepted work still completes.
#[test]
fn sheds_only_above_the_queue_bound() {
    // One worker, queue of two: the worker is pinned by a held-open
    // connection, two more connections sit queued, and every further
    // connection must be shed.
    let handle = start_server(1, 2);
    let addr = handle.local_addr();

    let mut busy = TcpStream::connect(addr).expect("busy connect");
    busy.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let busy_req = request(0, 42);
    writeln!(busy, "{}", render_request(&busy_req)).expect("busy send");
    let mut busy_reader = BufReader::new(busy.try_clone().expect("clone"));
    let mut line = String::new();
    busy_reader.read_line(&mut line).expect("busy reply");
    assert!(
        matches!(ReplyLine::parse(line.trim()), Ok(ReplyLine::Reply(_))),
        "busy connection is served: {line}"
    );
    // The worker now idles inside this connection; it stays occupied
    // until we close. Fill the queue, then overflow it.
    let parked: Vec<TcpStream> = (0..2)
        .map(|i| {
            let stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("park {i}: {e}"));
            // Give the accept loop time to enqueue before the next.
            std::thread::sleep(Duration::from_millis(50));
            stream
        })
        .collect();

    let mut shed = 0;
    for i in 0..4 {
        let stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("overflow {i}: {e}"));
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        std::thread::sleep(Duration::from_millis(50));
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => match ReplyLine::parse(line.trim()) {
                Ok(ReplyLine::Overloaded) => shed += 1,
                other => panic!("expected overloaded, got {other:?}"),
            },
            // A race where the connection closed without the shed
            // line still counts as not-served; but the server always
            // writes before closing, so require the line.
            other => panic!("no shed reply: {other:?}"),
        }
    }
    assert_eq!(shed, 4, "every connection beyond the bound is shed");

    // The pinned connection still works end to end afterwards.
    writeln!(busy, "{}", render_request(&busy_req)).expect("busy send again");
    let mut line = String::new();
    busy_reader.read_line(&mut line).expect("busy second reply");
    assert!(matches!(
        ReplyLine::parse(line.trim()),
        Ok(ReplyLine::Reply(_))
    ));

    drop(busy);
    drop(busy_reader);
    drop(parked);
    send_shutdown(&addr);
    handle.join();
}

/// Graceful shutdown: the ack arrives, `join` returns, queued work
/// drained, and the port stops accepting.
#[test]
fn shutdown_drains_and_releases_the_port() {
    let handle = start_server(2, 8);
    let addr = handle.local_addr();

    // A connection with one request in flight at shutdown time.
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let req = request(1, 99);
    writeln!(writer, "{}", render_request(&req)).expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply");
    assert!(matches!(
        ReplyLine::parse(line.trim()),
        Ok(ReplyLine::Reply(_))
    ));

    send_shutdown(&addr);
    assert!(handle.is_shutting_down());
    handle.join();

    // After join the listener is gone; a fresh connect must fail
    // outright or be closed without ever answering a request.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            late.set_read_timeout(Some(Duration::from_secs(2)))
                .expect("timeout");
            let _ = writeln!(late, "{}", render_request(&req));
            let mut reader = BufReader::new(late);
            let mut line = String::new();
            let got = reader.read_line(&mut line).unwrap_or(0);
            assert_eq!(got, 0, "a drained server must not answer: {line}");
        }
    }
}

/// The tester cache under a worker-pool-shaped herd: every lookup is
/// classified, exactly one build per distinct key, hits + misses ==
/// calls.
#[test]
fn cache_accounting_is_exact_under_threads() {
    let engine = dut_serve::Engine::new(8);
    let threads = 8u64;
    let calls_per_thread = 12u64;
    let outcomes = parking_lot::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = &engine;
            let outcomes = &outcomes;
            scope.spawn(move || {
                let mut local = Vec::new();
                for i in 0..calls_per_thread {
                    // Two distinct keys shared by all threads.
                    let req = request((t + i) % 2, 300 + i);
                    let reply = engine.handle(&req).expect("handled");
                    local.push(reply.cache_hit);
                }
                outcomes.lock().extend(local);
            });
        }
    });
    let outcomes = outcomes.into_inner();
    assert_eq!(outcomes.len() as u64, threads * calls_per_thread);
    let misses = outcomes.iter().filter(|&&hit| !hit).count();
    // Exactly one miss per distinct key — single flight — and every
    // other call a hit: hits + misses == calls by construction of
    // the two counts, misses == distinct keys by single-flight.
    assert_eq!(misses, 2, "one build per distinct key");
    assert_eq!(engine.cached_testers(), 2);
}
