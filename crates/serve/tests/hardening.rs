//! Hostile-client hardening, end to end against a real server:
//! oversized lines, idle/slowloris reaping, error budgets, panic
//! containment, and the full chaos mix — each followed by proof that
//! the service plane still answers honest requests bit-exactly.

use dut_serve::chaos::{self, ChaosConfig};
use dut_serve::protocol::{self, render_request, ReplyLine};
use dut_serve::server::{self, ServeConfig};
use dut_serve::stats::Stats;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn start_server(config: ServeConfig) -> server::ServerHandle {
    server::start(&config).expect("server starts on an ephemeral port")
}

fn connect(handle: &server::ServerHandle) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    let got = reader.read_line(&mut line).expect("reply arrives");
    assert!(got > 0, "connection closed without a reply");
    line.trim().to_owned()
}

/// A well-formed request the server must keep answering after abuse.
fn known_good(handle: &server::ServerHandle) {
    let (mut stream, mut reader) = connect(handle);
    writeln!(stream, "{}", render_request(&chaos::probe_request())).expect("send");
    let line = read_reply(&mut reader);
    match ReplyLine::parse(&line).expect("parseable reply") {
        ReplyLine::Reply(_) => {}
        other => panic!("known-good request got {other:?}"),
    }
}

fn shutdown(handle: server::ServerHandle) {
    handle.request_shutdown();
    handle.join();
}

#[test]
fn oversized_line_is_rejected_and_connection_closed() {
    let handle = start_server(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_line_bytes: 1024,
        ..ServeConfig::default()
    });
    let (mut stream, mut reader) = connect(&handle);
    // 8 KiB of garbage, no newline until the end: blows the 1 KiB cap.
    let bomb = "x".repeat(8 * 1024);
    stream.write_all(bomb.as_bytes()).expect("send bomb");
    stream.write_all(b"\n").expect("send newline");
    let line = read_reply(&mut reader);
    assert!(
        line.contains("line_too_long"),
        "expected line_too_long, got: {line}"
    );
    // The connection is closed after the reply.
    let mut rest = String::new();
    let got = reader.read_line(&mut rest).expect("EOF is clean");
    assert_eq!(got, 0, "connection stayed open after line_too_long");
    known_good(&handle);
    shutdown(handle);
}

#[test]
fn slowloris_is_reaped_on_no_completed_line() {
    let handle = start_server(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        // Clamped up to POLL_INTERVAL (100ms) internally; keep the
        // test's hold 5x above it for margin.
        idle_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    });
    let (mut stream, mut reader) = connect(&handle);
    // Drip bytes every 20ms without ever completing a line. A
    // byte-level timeout would never fire; the line-level one must.
    let started = Instant::now();
    let mut reply = None;
    while started.elapsed() < Duration::from_secs(3) {
        if stream.write_all(b"{").is_err() {
            break; // already reaped and closed
        }
        let _ = stream.flush();
        std::thread::sleep(Duration::from_millis(20));
        // Peek for the reap notice without blocking the drip.
        if reply.is_none() {
            let mut line = String::new();
            stream
                .set_read_timeout(Some(Duration::from_millis(1)))
                .expect("short timeout");
            if reader.read_line(&mut line).is_ok() && !line.trim().is_empty() {
                reply = Some(line.trim().to_owned());
                break;
            }
        }
    }
    let line = reply.expect("the drip was reaped within the test budget");
    assert!(
        line.contains("idle_timeout"),
        "expected idle_timeout, got: {line}"
    );
    known_good(&handle);
    shutdown(handle);
}

#[test]
fn error_budget_closes_abusive_connections() {
    let handle = start_server(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        error_budget: 3,
        ..ServeConfig::default()
    });
    let (mut stream, mut reader) = connect(&handle);
    // Three garbage lines exhaust the budget of 3.
    for i in 0..3 {
        writeln!(stream, "not json at all #{i}").expect("send garbage");
        let line = read_reply(&mut reader);
        assert!(line.contains("error"), "garbage got a non-error: {line}");
    }
    // The budget notice follows the final error reply, then EOF.
    let notice = read_reply(&mut reader);
    assert!(
        notice.contains("error_budget_exhausted"),
        "expected budget notice, got: {notice}"
    );
    let mut rest = String::new();
    let got = reader.read_line(&mut rest).expect("EOF is clean");
    assert_eq!(got, 0, "connection stayed open after budget exhausted");
    known_good(&handle);
    shutdown(handle);
}

#[test]
fn oversized_configs_are_rejected_cheaply() {
    let handle = start_server(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServeConfig::default()
    });
    let (mut stream, mut reader) = connect(&handle);
    // An allocation bomb: n far over MAX_N must be rejected by
    // validation, never by the allocator.
    let huge = format!(
        "{{\"n\":{},\"k\":4,\"q\":8,\"eps\":0.5,\"rule\":\"and\",\"seed\":1}}",
        u64::from(u32::MAX)
    );
    writeln!(stream, "{huge}").expect("send huge n");
    let line = read_reply(&mut reader);
    assert!(line.contains("error"), "huge n got a non-error: {line}");
    assert!(
        line.contains("maximum") || line.contains("large"),
        "error does not explain the cap: {line}"
    );
    // Work-product bomb: each dimension under its cap, product over.
    let wide = format!(
        "{{\"n\":{},\"k\":{},\"q\":{},\"eps\":0.5,\"rule\":\"and\",\"seed\":1}}",
        protocol::MAX_N,
        protocol::MAX_K,
        protocol::MAX_Q
    );
    writeln!(stream, "{wide}").expect("send wide config");
    let line = read_reply(&mut reader);
    assert!(line.contains("too large"), "work bomb got through: {line}");
    known_good(&handle);
    shutdown(handle);
}

#[test]
fn stats_accounting_survives_abuse() {
    let handle = start_server(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        error_budget: 2,
        ..ServeConfig::default()
    });
    // Metrics are process-global: snapshot a delta around the abuse.
    let pre = {
        let (mut stream, mut reader) = connect(&handle);
        writeln!(stream, "{{\"cmd\":\"stats\"}}").expect("send stats");
        Stats::parse(&read_reply(&mut reader)).expect("stats parse")
    };
    {
        let (mut stream, mut reader) = connect(&handle);
        writeln!(stream, "garbage one").expect("send");
        let _ = read_reply(&mut reader);
        writeln!(stream, "garbage two").expect("send");
        let _ = read_reply(&mut reader);
    }
    let post = {
        let (mut stream, mut reader) = connect(&handle);
        writeln!(stream, "{{\"cmd\":\"stats\"}}").expect("send stats");
        Stats::parse(&read_reply(&mut reader)).expect("stats parse")
    };
    assert!(
        post.malformed >= pre.malformed + 2,
        "malformed lines not counted: {} -> {}",
        pre.malformed,
        post.malformed
    );
    assert!(
        post.error_budget_closed > pre.error_budget_closed,
        "budget closure not counted"
    );
    // The core invariant the fuzz planes rely on: cache accounting
    // stays exact through abuse.
    assert_eq!(
        post.cache_hits + post.cache_misses,
        post.requests,
        "hits + misses != requests after abuse"
    );
    shutdown(handle);
}

#[test]
fn chaos_mix_does_not_take_down_the_server() {
    let handle = start_server(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        queue_cap: 32,
        idle_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    });
    let report = chaos::run(&ChaosConfig {
        addr: handle.local_addr().to_string(),
        duration: Duration::from_millis(800),
        lanes: 3,
        rate: 0.3,
        seed: 1,
        hold: Duration::from_millis(750),
    })
    .expect("chaos runs");
    assert!(
        report.survived(),
        "server did not survive chaos: {}",
        report.summary()
    );
    assert!(report.total_attacks() > 0, "no hostile actions launched");
    assert!(report.probes_sent > 0, "no honest probes interleaved");
    shutdown(handle);
}
