//! The request-multiplexed TCP front end.
//!
//! One accept thread hands each connection to a **shard**: an event
//! loop that parks any number of persistent connections on nonblocking
//! sockets, frames complete request lines, and dispatches them as
//! individual jobs to a shared worker pool. The dispatch queue holds
//! *requests*, not connections, so queue depth and shed decisions are
//! per request: a full queue sheds the request with an explicit
//! `{"error":"overloaded","shed":true}` line while the connection
//! stays parked — idle keep-alive clients no longer occupy workers,
//! and a shed never costs the client its connection.
//!
//! Workers coalesce every queued request that shares the leader's
//! [`CacheKey`](crate::engine::CacheKey) into one
//! [`Engine::handle_batch`] pass, so a herd of identical
//! configurations resolves its prepared tester once. Replies are
//! written through a per-connection reorder buffer: each request line
//! gets a sequence number at parse time and replies release strictly
//! in that order, so pipelined clients see answers in request order
//! even when workers finish out of order.
//!
//! Admission is two-tier. A per-tenant token bucket (see
//! [`TenantPolicy`]) sheds over-quota tenants before their requests
//! ever reach the queue, with the shed scoped to the tenant on the
//! wire (`"scope":"tenant"`). Above the global queue cap, an incoming
//! higher-priority request may evict the lowest-priority queued
//! request instead of being shed itself.
//!
//! Shutdown is cooperative. A `{"cmd":"shutdown"}` request flips a
//! flag; the accept thread stops accepting, shards stop reading new
//! lines, workers drain every queued request, and the shard loops keep
//! each connection parked until its in-flight replies have flushed
//! (bounded by a grace period). [`ServerHandle::join`] returns once
//! all threads exit.

use crate::engine::{CacheKey, Engine, QueuedRequest};
use crate::protocol::{self, Command};
use crate::stats;
use dut_obs::metrics::{Counter, Gauge, HistogramId};
use dut_obs::slo::SloConfig;
use parking_lot::Mutex as PlMutex;
use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Worker condvar / accept backoff granularity; bounds
/// shutdown-notice latency for threads blocked waiting for work.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// How long a shard sleeps after a pass in which no connection read
/// or wrote a byte. This is the parked-connection polling latency: it
/// is added (at most, and only on an idle shard) to a request's
/// read-side latency, so it must stay well under the SLO target.
const SHARD_IDLE_SLEEP: Duration = Duration::from_micros(100);

/// Read chunks one connection may consume per shard pass, so one
/// firehose client cannot starve its shard siblings.
const READS_PER_PASS: usize = 16;

/// Bytes of un-flushed reply a connection may accumulate before the
/// server declares the client a non-reader and drops it. Bounds
/// memory under the slow-reader attack the per-connection writer
/// otherwise invites.
const OUTBUF_CAP: usize = 256 * 1024;

/// How long a closing connection is drained (client bytes read and
/// discarded) after the final notice, so the notice survives instead
/// of being destroyed by an RST from unread input.
const DRAIN_WINDOW: Duration = Duration::from_millis(250);

/// How long shards keep parked connections alive after shutdown to
/// let in-flight replies flush before the loop exits anyway.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// Consecutive shed *requests* that count as a burst and trigger an
/// automatic flight-recorder dump (once per burst; the streak resets
/// when a request is admitted again).
pub const SHED_BURST_THRESHOLD: u64 = 8;

/// Tenant name charged when a request carries no `tenant` field.
pub const DEFAULT_TENANT: &str = "default";

/// One tenant's admission quota.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// Tenant id as it appears on the wire.
    pub name: String,
    /// Sustained admissions per second (0 disables rate limiting for
    /// this tenant).
    pub rate: f64,
    /// Token-bucket burst capacity.
    pub burst: f64,
    /// Priority above the global queue cap: an incoming request may
    /// evict a queued lower-priority request instead of shedding.
    pub priority: u8,
}

/// Multi-tenant admission policy: defaults applied to tenants with no
/// explicit [`TenantQuota`]. The all-zero default means "no tenancy":
/// every request is admitted without touching the tenant table.
#[derive(Debug, Clone, Default)]
pub struct TenantPolicy {
    /// Default sustained rate for unlisted tenants (0 = unlimited).
    pub default_rate: f64,
    /// Default burst for unlisted tenants.
    pub default_burst: f64,
    /// Default priority for unlisted tenants.
    pub default_priority: u8,
    /// Explicit per-tenant quotas.
    pub quotas: Vec<TenantQuota>,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Prepared testers kept resident (across all cache shards).
    pub cache_cap: usize,
    /// Requests waiting for a worker before the server sheds.
    pub queue_cap: usize,
    /// One request in this many emits a sampled `serve_trace` event
    /// (0 disables sampling).
    pub trace_sample: u64,
    /// Service-level objectives evaluated by `{"cmd":"stats"}`.
    pub slo: SloConfig,
    /// A connection that completes no request line for this long is
    /// reaped (covers both idle-forever clients and slowloris drips
    /// that send bytes but never a newline).
    pub idle_timeout: Duration,
    /// Error replies a single connection may receive before the
    /// server closes it (0 disables the budget). Honest clients never
    /// get near it; a fuzzer or abuser hits it quickly.
    pub error_budget: u32,
    /// Hard cap on one request line's bytes; longer lines get
    /// `{"error":"line_too_long"}` and the connection closes.
    pub max_line_bytes: usize,
    /// Connection-shard event loops (each parks a subset of the
    /// persistent connections).
    pub shards: usize,
    /// Independent prepared-tester cache shards.
    pub cache_shards: usize,
    /// Max queued requests coalesced into one answer pass when they
    /// share a [`CacheKey`] (values below 2 disable coalescing).
    pub coalesce: usize,
    /// Multi-tenant admission policy.
    pub tenancy: TenantPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            cache_cap: 32,
            queue_cap: 64,
            trace_sample: crate::engine::DEFAULT_TRACE_SAMPLE,
            slo: SloConfig::default(),
            idle_timeout: Duration::from_secs(30),
            error_budget: 64,
            max_line_bytes: protocol::MAX_LINE_BYTES,
            shards: 2,
            cache_shards: crate::engine::DEFAULT_CACHE_SHARDS,
            coalesce: 16,
            tenancy: TenantPolicy::default(),
        }
    }
}

/// One reply line waiting in a connection's reorder buffer.
struct Line {
    text: String,
    /// Counts against the connection's error budget when released.
    is_error: bool,
    /// Close the connection after this line (shutdown ack, final
    /// notice, caught handler panic).
    close_after: bool,
}

/// The write half of a connection: a reorder buffer keyed by request
/// sequence number, an output byte buffer, and the error-budget
/// ledger. Replies may be submitted from any worker in any order;
/// they release strictly in sequence order so pipelined clients see
/// answers in request order.
struct ConnWriter {
    stream: TcpStream,
    /// The next sequence number allowed to release.
    next_release: u64,
    /// Out-of-order replies parked until their turn.
    ready: BTreeMap<u64, Line>,
    /// Released bytes not yet accepted by the socket.
    out: Vec<u8>,
    errors_released: u32,
    error_budget: u32,
    /// A close-after line released: no further lines release, and the
    /// write side shuts down once `out` drains.
    closing: bool,
    /// `shutdown(Write)` already issued.
    write_shut: bool,
    /// The socket failed or the client stopped reading; the shard
    /// drops the connection on its next pass.
    dead: bool,
}

impl ConnWriter {
    /// Moves every consecutively-sequenced reply from the reorder
    /// buffer into the output buffer, applying the close-after and
    /// error-budget contracts in release order (so "N errors, then
    /// the budget notice, then EOF" holds exactly even when workers
    /// finish out of order).
    fn release(&mut self) {
        while !self.closing && !self.dead {
            let Some(line) = self.ready.remove(&self.next_release) else {
                break;
            };
            self.next_release += 1;
            self.out.extend_from_slice(line.text.as_bytes());
            self.out.push(b'\n');
            if line.close_after {
                self.closing = true;
                self.ready.clear();
                break;
            }
            if line.is_error {
                self.errors_released = self.errors_released.saturating_add(1);
                if self.error_budget > 0 && self.errors_released >= self.error_budget {
                    dut_obs::metrics::global().incr(Counter::ServeErrorBudget);
                    self.out
                        .extend_from_slice(protocol::render_error_budget_exhausted().as_bytes());
                    self.out.push(b'\n');
                    self.closing = true;
                    self.ready.clear();
                    break;
                }
            }
        }
    }

    /// Writes as much of the output buffer as the socket accepts
    /// right now. Returns the bytes written this call.
    fn flush(&mut self) -> usize {
        let mut written = 0usize;
        while written < self.out.len() {
            match self.stream.write(&self.out[written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if written > 0 {
            self.out.drain(..written);
        }
        if self.out.len() > OUTBUF_CAP {
            // The client is not reading; buffering further replies
            // only converts their stall into our memory.
            self.dead = true;
        }
        written
    }
}

/// Writer-side snapshot taken once per shard pass.
struct WriterStatus {
    dead: bool,
    closing: bool,
    write_shut: bool,
    /// Nothing released or buffered remains unwritten.
    drained: bool,
    wrote: usize,
}

/// One live connection, shared between its shard (reads) and any
/// workers holding its queued jobs (reply submission).
struct Conn {
    writer: PlMutex<ConnWriter>,
    /// Requests parsed off this connection not yet answered.
    inflight: AtomicU64,
}

impl Conn {
    /// Submits the reply for sequence `seq` and opportunistically
    /// flushes. Called from workers and from the shard itself; safe
    /// to call after the connection started closing (the reply is
    /// dropped — the close-after line already won).
    fn submit(&self, seq: u64, text: String, is_error: bool, close_after: bool) {
        let mut writer = self.writer.lock();
        if writer.dead || writer.closing {
            return;
        }
        writer.ready.insert(
            seq,
            Line {
                text,
                is_error,
                close_after,
            },
        );
        writer.release();
        writer.flush();
    }

    fn is_closing(&self) -> bool {
        let writer = self.writer.lock();
        writer.closing || writer.dead
    }

    /// One shard-pass service step: flush pending output, start the
    /// write-side shutdown once a closing connection drains, and
    /// report state for the shard's keep/drop decision.
    fn pump(&self) -> WriterStatus {
        let mut writer = self.writer.lock();
        let wrote = if writer.dead { 0 } else { writer.flush() };
        if writer.closing && !writer.dead && !writer.write_shut && writer.out.is_empty() {
            let _ = writer.stream.shutdown(Shutdown::Write);
            writer.write_shut = true;
        }
        WriterStatus {
            dead: writer.dead,
            closing: writer.closing,
            write_shut: writer.write_shut,
            drained: writer.out.is_empty() && writer.ready.is_empty(),
            wrote,
        }
    }
}

/// A freshly accepted connection in transit from the accept thread to
/// its shard.
struct NewConn {
    stream: TcpStream,
    conn: Arc<Conn>,
}

/// The read half of a parked connection, owned by exactly one shard.
struct ConnReader {
    conn: Arc<Conn>,
    stream: TcpStream,
    pending: Vec<u8>,
    /// Next request sequence number on this connection. Allocated at
    /// parse time on the shard thread, so sequences are consecutive
    /// and the writer's reorder buffer releases without gaps.
    next_seq: u64,
    last_line_at: Instant,
    peer_eof: bool,
    /// A final notice was submitted; stop reading request lines.
    muted: bool,
    drain_deadline: Option<Instant>,
}

impl ConnReader {
    fn new(item: NewConn) -> ConnReader {
        ConnReader {
            conn: item.conn,
            stream: item.stream,
            pending: Vec::new(),
            next_seq: 0,
            last_line_at: Instant::now(),
            peer_eof: false,
            muted: false,
            drain_deadline: None,
        }
    }

    fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }
}

/// A parsed request waiting for (or evicted from) the dispatch queue.
struct Job {
    conn: Arc<Conn>,
    seq: u64,
    req: protocol::Request,
    key: CacheKey,
    priority: u8,
    enqueued_at: Instant,
}

/// One tenant's token bucket and ledger.
struct TenantState {
    tokens: f64,
    last_refill: Instant,
    rate: f64,
    burst: f64,
    priority: u8,
    admitted: u64,
    shed: u64,
}

/// The tenant table. Requests with no tenant field are charged to
/// [`DEFAULT_TENANT`]; when the policy is the all-zero default the
/// admit path is lock-free.
struct Tenants {
    policy: TenantPolicy,
    states: PlMutex<BTreeMap<String, TenantState>>,
}

impl Tenants {
    fn new(policy: TenantPolicy) -> Tenants {
        Tenants {
            policy,
            states: PlMutex::new(BTreeMap::new()),
        }
    }

    fn inert(&self) -> bool {
        self.policy.default_rate <= 0.0 && self.policy.quotas.is_empty()
    }

    /// Admission decision for one request: `(admitted, priority)`.
    fn admit(&self, tenant: Option<&str>) -> (bool, u8) {
        if tenant.is_none() && self.inert() {
            return (true, self.policy.default_priority);
        }
        let name = tenant.unwrap_or(DEFAULT_TENANT);
        let mut states = self.states.lock();
        let state = states.entry(name.to_owned()).or_insert_with(|| {
            let quota = self.policy.quotas.iter().find(|q| q.name == name);
            let (rate, burst, priority) = match quota {
                Some(q) => (q.rate, q.burst, q.priority),
                None => (
                    self.policy.default_rate,
                    self.policy.default_burst,
                    self.policy.default_priority,
                ),
            };
            TenantState {
                tokens: burst.max(1.0),
                last_refill: Instant::now(),
                rate,
                burst: burst.max(1.0),
                priority,
                admitted: 0,
                shed: 0,
            }
        });
        if state.rate > 0.0 {
            let now = Instant::now();
            let elapsed = now.duration_since(state.last_refill).as_secs_f64();
            state.tokens = (state.tokens + elapsed * state.rate).min(state.burst);
            state.last_refill = now;
            if state.tokens < 1.0 {
                state.shed += 1;
                return (false, state.priority);
            }
            state.tokens -= 1.0;
        }
        state.admitted += 1;
        (true, state.priority)
    }

    fn snapshot(&self) -> Vec<stats::TenantStat> {
        self.states
            .lock()
            .iter()
            .map(|(name, state)| stats::TenantStat {
                name: name.clone(),
                requests: state.admitted,
                shed: state.shed,
            })
            .collect()
    }
}

struct Shared {
    engine: Engine,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    queue_cap: usize,
    coalesce: usize,
    slo: SloConfig,
    /// Consecutive shed requests since the last admission; crossing
    /// [`SHED_BURST_THRESHOLD`] dumps the flight recorder once per
    /// burst (the compare-exchange in [`streak_shed`] makes the
    /// crossing a single atomic transition, so concurrent shedders
    /// cannot double-fire or skip it).
    shed_streak: AtomicU64,
    idle_timeout: Duration,
    error_budget: u32,
    max_line_bytes: usize,
    /// Per-shard hand-off boxes from the accept thread.
    inboxes: Vec<PlMutex<Vec<NewConn>>>,
    tenants: Tenants,
    conn_count: AtomicU64,
}

impl Shared {
    /// Locks the request queue, recovering from poisoning (a
    /// panicking worker must not wedge the whole server).
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Atomically advances the shed streak by one and reports whether
/// *this* increment crossed [`SHED_BURST_THRESHOLD`] — exactly one
/// caller per burst observes `true`, no matter how increments and
/// [`streak_reset`] calls interleave across threads.
fn streak_shed(streak: &AtomicU64) -> bool {
    let mut current = streak.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_add(1);
        match streak.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return next == SHED_BURST_THRESHOLD,
            Err(found) => current = found,
        }
    }
}

/// An admission ends the current burst.
fn streak_reset(streak: &AtomicU64) {
    streak.store(0, Ordering::Relaxed);
}

/// A running server. Dropping the handle detaches the threads; call
/// [`ServerHandle::join`] (usually after a client sent `shutdown`, or
/// after [`ServerHandle::request_shutdown`]) for a clean exit.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves `:0` to the real port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates shutdown from the host process (equivalent to a
    /// client's `{"cmd":"shutdown"}`).
    pub fn request_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has been initiated.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.is_shutting_down()
    }

    /// Waits for the accept thread, every shard, and every worker to
    /// exit. Returns only after a shutdown was requested (by a client
    /// or by [`Self::request_shutdown`]) and all in-flight work
    /// drained.
    pub fn join(self) {
        for thread in self.threads {
            // A worker that panicked already served its panic to the
            // affected requests; the server still drains the rest.
            let _ = thread.join();
        }
    }
}

/// Binds the listener and starts the accept thread, connection
/// shards, and worker pool.
///
/// # Errors
///
/// Returns the bind/configuration error message.
pub fn start(config: &ServeConfig) -> Result<ServerHandle, String> {
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set nonblocking accept: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    // The flight recorder is a process-wide sink: install it once no
    // matter how many servers this process starts (tests start many).
    static FLIGHT_INSTALL: Once = Once::new();
    FLIGHT_INSTALL.call_once(|| {
        dut_obs::global()
            .install_sink(Arc::clone(dut_obs::flight::global()) as Arc<dyn dut_obs::Sink>);
    });
    let shards = config.shards.max(1);
    let shared = Arc::new(Shared {
        engine: Engine::with_options(
            config.cache_cap,
            config.trace_sample,
            config.cache_shards.max(1),
        ),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
        queue_cap: config.queue_cap.max(1),
        coalesce: config.coalesce.max(1),
        slo: config.slo,
        shed_streak: AtomicU64::new(0),
        idle_timeout: config.idle_timeout.max(POLL_INTERVAL),
        error_budget: config.error_budget,
        max_line_bytes: config.max_line_bytes.max(1),
        inboxes: (0..shards).map(|_| PlMutex::new(Vec::new())).collect(),
        tenants: Tenants::new(config.tenancy.clone()),
        conn_count: AtomicU64::new(0),
    });
    let workers = config.workers.max(1);
    let mut threads = Vec::with_capacity(workers + shards + 1);
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || worker_loop(&shared)));
    }
    for shard in 0..shards {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || shard_loop(&shared, shard)));
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
    }
    dut_obs::global().emit_with(|| {
        dut_obs::Event::new("serve_started")
            .with("addr", addr.to_string())
            .with("workers", workers)
            .with("shards", shards)
            .with("queue_cap", config.queue_cap.max(1))
    });
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn conn_opened(shared: &Shared) {
    let count = shared.conn_count.fetch_add(1, Ordering::AcqRel) + 1;
    dut_obs::metrics::global().set_gauge(Gauge::ServeConnections, count);
}

fn conn_closed(shared: &Shared) {
    let before = shared.conn_count.fetch_sub(1, Ordering::AcqRel);
    dut_obs::metrics::global().set_gauge(Gauge::ServeConnections, before.saturating_sub(1));
}

/// Accepts connections and hands each to a shard round-robin. This
/// thread never writes to a socket: under overload the shed decision
/// is per *request* and happens on the shard/worker side, so a burst
/// of slow clients cannot stall the accept path.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let mut next_shard = 0usize;
    loop {
        if shared.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // One-line replies must leave immediately: without
                // nodelay the reply sits in Nagle's buffer waiting on
                // the client's delayed ACK (~40ms a round trip).
                let _ = stream.set_nodelay(true);
                // Both halves share the fd, so this covers the writer
                // clone too.
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                let conn = Arc::new(Conn {
                    writer: PlMutex::new(ConnWriter {
                        stream: write_half,
                        next_release: 0,
                        ready: BTreeMap::new(),
                        out: Vec::new(),
                        errors_released: 0,
                        error_budget: shared.error_budget,
                        closing: false,
                        write_shut: false,
                        dead: false,
                    }),
                    inflight: AtomicU64::new(0),
                });
                conn_opened(shared);
                shared.inboxes[next_shard]
                    .lock()
                    .push(NewConn { stream, conn });
                next_shard = (next_shard + 1) % shared.inboxes.len();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Listener drops here: further connects are refused, which is the
    // observable "server is gone" signal clients get after drain.
    shared.available.notify_all();
}

/// Outcome of one connection's service step within a shard pass.
struct ConnStep {
    keep: bool,
    /// Bytes moved in either direction (suppresses the idle sleep).
    active: bool,
}

/// One shard: parks its connections, frames request lines, dispatches
/// jobs, and retires connections that died, drained after EOF, or
/// finished their closing handshake.
fn shard_loop(shared: &Shared, shard: usize) {
    let mut conns: Vec<ConnReader> = Vec::new();
    let mut shutdown_deadline: Option<Instant> = None;
    loop {
        let fresh: Vec<NewConn> = std::mem::take(&mut *shared.inboxes[shard].lock());
        let mut active = !fresh.is_empty();
        conns.extend(fresh.into_iter().map(ConnReader::new));
        let shutting = shared.is_shutting_down();
        if shutting && shutdown_deadline.is_none() {
            shutdown_deadline = Some(Instant::now() + SHUTDOWN_GRACE);
        }
        conns.retain_mut(|reader| {
            let step = step_conn(shared, reader, shutting);
            if step.active {
                active = true;
            }
            if !step.keep {
                conn_closed(shared);
            }
            step.keep
        });
        if shutting {
            let expired = shutdown_deadline.is_some_and(|deadline| Instant::now() >= deadline);
            if conns.is_empty() || expired {
                for _ in &conns {
                    conn_closed(shared);
                }
                conns.clear();
                break;
            }
        }
        if !active {
            std::thread::sleep(SHARD_IDLE_SLEEP);
        }
    }
}

/// Services one connection for one shard pass. Order matters: flush
/// first (replies drain even off a muted or closing connection), then
/// the closing handshake, then EOF/shutdown drain conditions, then
/// the idle reap, and only then new reads.
fn step_conn(shared: &Shared, reader: &mut ConnReader, shutting: bool) -> ConnStep {
    let status = reader.conn.pump();
    let mut active = status.wrote > 0;
    if status.dead {
        return ConnStep {
            keep: false,
            active,
        };
    }
    if status.write_shut {
        // Final notice sent and write side shut: drain (and discard)
        // client leftovers for a bounded moment so the notice is not
        // destroyed by an RST, then drop.
        let deadline = *reader
            .drain_deadline
            .get_or_insert_with(|| Instant::now() + DRAIN_WINDOW);
        let mut sink = [0u8; 4096];
        loop {
            match reader.stream.read(&mut sink) {
                Ok(0) => {
                    return ConnStep {
                        keep: false,
                        active: true,
                    }
                }
                Ok(_) => active = true,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    return ConnStep {
                        keep: false,
                        active: true,
                    }
                }
            }
        }
        let keep = Instant::now() < deadline;
        return ConnStep { keep, active };
    }
    if status.closing {
        // Close-after reply released but not fully flushed yet.
        return ConnStep { keep: true, active };
    }
    if reader.peer_eof || shutting {
        // Half-closed client (served until its queued work drains,
        // then dropped → clean FIN) or server shutdown (no new reads;
        // in-flight replies still flush).
        let inflight = reader.conn.inflight.load(Ordering::Acquire);
        let keep = inflight > 0 || !status.drained;
        return ConnStep { keep, active };
    }
    if !reader.muted
        && reader.conn.inflight.load(Ordering::Acquire) == 0
        && reader.last_line_at.elapsed() >= shared.idle_timeout
    {
        dut_obs::metrics::global().incr(Counter::ServeReaped);
        let seq = reader.alloc_seq();
        reader
            .conn
            .submit(seq, protocol::render_idle_timeout(), false, true);
        reader.muted = true;
        return ConnStep {
            keep: true,
            active: true,
        };
    }
    if reader.muted {
        return ConnStep { keep: true, active };
    }
    let mut chunk = [0u8; 4096];
    for _ in 0..READS_PER_PASS {
        match reader.stream.read(&mut chunk) {
            Ok(0) => {
                reader.peer_eof = true;
                break;
            }
            Ok(got) => {
                active = true;
                reader.pending.extend_from_slice(&chunk[..got]);
                process_pending(shared, reader);
                if reader.muted {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                return ConnStep {
                    keep: false,
                    active,
                }
            }
        }
    }
    ConnStep { keep: true, active }
}

/// Frames and answers every complete request line buffered on the
/// connection. A partial trailing line stays buffered (or trips the
/// line cap). Three hostile-client defenses live here and in
/// [`step_conn`], all with explicit final replies so a
/// well-meaning-but-buggy client can diagnose itself: the line cap,
/// the idle reap, and (enforced at release time by [`ConnWriter`])
/// the error budget.
fn process_pending(shared: &Shared, reader: &mut ConnReader) {
    loop {
        if reader.muted || reader.conn.is_closing() {
            reader.pending.clear();
            return;
        }
        let Some(newline) = reader.pending.iter().position(|&b| b == b'\n') else {
            break;
        };
        let line: Vec<u8> = reader.pending.drain(..=newline).collect();
        reader.last_line_at = Instant::now();
        if line.len() > shared.max_line_bytes {
            mute_with_notice(reader, protocol::render_line_too_long());
            return;
        }
        let text = String::from_utf8_lossy(&line);
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        answer_parsed(shared, reader, text);
    }
    if reader.pending.len() > shared.max_line_bytes {
        // A line still has no newline but already blew the cap: stop
        // buffering it.
        mute_with_notice(reader, protocol::render_line_too_long());
    }
}

/// Submits a final malformed-line notice and mutes the reader.
fn mute_with_notice(reader: &mut ConnReader, notice: String) {
    dut_obs::metrics::global().incr(Counter::ServeMalformed);
    let seq = reader.alloc_seq();
    reader.conn.submit(seq, notice, false, true);
    reader.muted = true;
    reader.pending.clear();
}

/// Allocates the line's sequence number and evaluates it behind a
/// panic boundary. A panicking handler must cost at most its own
/// connection: without this, the unwind kills the shard thread and
/// every connection parked on it.
fn answer_parsed(shared: &Shared, reader: &mut ConnReader, text: &str) {
    let seq = reader.alloc_seq();
    let conn = Arc::clone(&reader.conn);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle_line(shared, &conn, seq, text);
    }));
    if caught.is_err() {
        dut_obs::metrics::global().incr(Counter::ServePanicsCaught);
        conn.submit(
            seq,
            protocol::render_error("internal: request handler panicked"),
            true,
            true,
        );
        reader.muted = true;
    }
}

/// Evaluates one request line: admin commands answer inline on the
/// shard; runs pass tenant admission and enter the dispatch queue.
fn handle_line(shared: &Shared, conn: &Arc<Conn>, seq: u64, line: &str) {
    let registry = dut_obs::metrics::global();
    match protocol::parse_command_meta(line) {
        Ok((Command::Run(request), meta)) => {
            let (admitted, priority) = shared.tenants.admit(meta.tenant.as_deref());
            if !admitted {
                // A tenant-scoped shed: the *tenant* is over quota,
                // not the server — it neither feeds the burst streak
                // nor costs the connection its error budget.
                registry.incr(Counter::ServeShed);
                registry.incr(Counter::ServeTenantShed);
                let name = meta.tenant.as_deref().unwrap_or(DEFAULT_TENANT);
                conn.submit(seq, protocol::render_overloaded_tenant(name), false, false);
                return;
            }
            enqueue_request(
                shared,
                Job {
                    conn: Arc::clone(conn),
                    seq,
                    req: request,
                    key: CacheKey::of(&request),
                    priority,
                    enqueued_at: Instant::now(),
                },
            );
        }
        Ok((Command::Shutdown, _meta)) => {
            shared.begin_shutdown();
            conn.submit(seq, protocol::render_shutdown_ack(), false, true);
        }
        Ok((Command::Stats, _meta)) => {
            conn.submit(seq, render_stats(shared), false, false);
        }
        Ok((Command::Flight, _meta)) => {
            conn.submit(
                seq,
                stats::render_flight(dut_obs::flight::global()),
                false,
                false,
            );
        }
        Err(message) => {
            registry.incr(Counter::ServeMalformed);
            conn.submit(seq, protocol::render_error(&message), true, false);
        }
    }
}

/// Current stats with the live tenant table attached.
fn render_stats(shared: &Shared) -> String {
    let cached = u64::try_from(shared.engine.cached_testers()).unwrap_or(u64::MAX);
    let mut gathered = stats::gather(cached, &shared.slo);
    gathered.tenants = shared.tenants.snapshot();
    gathered.render()
}

/// Queues one admitted request, or sheds. At the cap an incoming
/// request may evict the lowest-priority queued request strictly
/// below its own priority (the evictee gets the shed reply); equal
/// priorities never preempt each other.
fn enqueue_request(shared: &Shared, job: Job) {
    let registry = dut_obs::metrics::global();
    job.conn.inflight.fetch_add(1, Ordering::AcqRel);
    let mut queue = shared.lock_queue();
    if queue.len() >= shared.queue_cap {
        let victim_at = (0..queue.len())
            .filter(|&i| queue[i].priority < job.priority)
            .min_by_key(|&i| queue[i].priority);
        if let Some(at) = victim_at {
            let victim = queue.remove(at);
            queue.push_back(job);
            registry.set_gauge(Gauge::ServeQueueDepth, queue.len() as u64);
            drop(queue);
            shared.available.notify_one();
            if let Some(victim) = victim {
                shed_request(shared, &victim.conn, victim.seq);
                victim.conn.inflight.fetch_sub(1, Ordering::AcqRel);
            }
        } else {
            registry.set_gauge(Gauge::ServeQueueDepth, queue.len() as u64);
            drop(queue);
            shed_request(shared, &job.conn, job.seq);
            job.conn.inflight.fetch_sub(1, Ordering::AcqRel);
        }
    } else {
        streak_reset(&shared.shed_streak);
        queue.push_back(job);
        registry.set_gauge(Gauge::ServeQueueDepth, queue.len() as u64);
        drop(queue);
        shared.available.notify_one();
    }
}

/// Sheds one request: explicit reply on the request's own sequence
/// slot (the connection stays parked), plus the burst accounting.
fn shed_request(shared: &Shared, conn: &Conn, seq: u64) {
    dut_obs::metrics::global().incr(Counter::ServeShed);
    if streak_shed(&shared.shed_streak) {
        // A burst is in progress: capture what led up to it. The
        // dump travels as a trace event, so file sinks record the
        // incident context; the ring itself skips it.
        dut_obs::global().emit_with(|| dut_obs::flight::global().dump_event("shed_burst"));
    }
    conn.submit(seq, protocol::render_overloaded(), false, false);
}

fn worker_loop(shared: &Shared) {
    while let Some(jobs) = next_batch(shared) {
        process_batch(shared, &jobs);
    }
}

/// Pops the next job and coalesces every queued job sharing its
/// [`CacheKey`] (up to the coalesce cap) into one batch. Returns
/// `None` only when the queue is empty *and* shutdown was requested,
/// so drain is guaranteed.
fn next_batch(shared: &Shared) -> Option<Vec<Job>> {
    let mut queue = shared.lock_queue();
    loop {
        if let Some(lead) = queue.pop_front() {
            let key = lead.key;
            let mut jobs = vec![lead];
            let mut i = 0;
            while i < queue.len() && jobs.len() < shared.coalesce {
                if queue[i].key == key {
                    if let Some(job) = queue.remove(i) {
                        jobs.push(job);
                    }
                } else {
                    i += 1;
                }
            }
            dut_obs::metrics::global().set_gauge(Gauge::ServeQueueDepth, queue.len() as u64);
            return Some(jobs);
        }
        if shared.is_shutting_down() {
            return None;
        }
        let (guard, _timed_out) = shared
            .available
            .wait_timeout(queue, POLL_INTERVAL)
            .unwrap_or_else(PoisonError::into_inner);
        queue = guard;
    }
}

/// Answers one coalesced batch. The queue wait recorded here is the
/// *request's* scheduling delay — parse to worker pickup — which is
/// the number `queue_wait_p99` in stats actually promises.
fn process_batch(shared: &Shared, jobs: &[Job]) {
    let registry = dut_obs::metrics::global();
    let mut items = Vec::with_capacity(jobs.len());
    for job in jobs {
        let waited = u64::try_from(job.enqueued_at.elapsed().as_micros()).unwrap_or(u64::MAX);
        registry.observe(HistogramId::QueueWaitMicros, waited);
        items.push(QueuedRequest {
            req: job.req,
            queue_wait_micros: waited,
        });
    }
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.engine.handle_batch(&items)
    }));
    match caught {
        Ok(replies) => {
            for (index, job) in jobs.iter().enumerate() {
                match replies.get(index) {
                    Some(Ok(reply)) => job.conn.submit(job.seq, reply.render(), false, false),
                    Some(Err(message)) => {
                        job.conn
                            .submit(job.seq, protocol::render_error(message), true, false);
                    }
                    None => {
                        job.conn.submit(
                            job.seq,
                            protocol::render_error("internal: missing batch reply"),
                            true,
                            false,
                        );
                    }
                }
            }
        }
        Err(_panic) => {
            registry.incr(Counter::ServePanicsCaught);
            for job in jobs {
                job.conn.submit(
                    job.seq,
                    protocol::render_error("internal: request handler panicked"),
                    true,
                    true,
                );
            }
        }
    }
    for job in jobs {
        job.conn.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streak_crossing_fires_exactly_once_per_burst() {
        let streak = AtomicU64::new(0);
        let mut fired = 0;
        for _ in 0..(SHED_BURST_THRESHOLD * 3) {
            if streak_shed(&streak) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "one crossing per uninterrupted burst");
        streak_reset(&streak);
        let mut refired = 0;
        for _ in 0..SHED_BURST_THRESHOLD {
            if streak_shed(&streak) {
                refired += 1;
            }
        }
        assert_eq!(refired, 1, "a reset starts a new burst");
    }

    #[test]
    fn streak_crossing_is_exactly_once_under_contention() {
        // 16 threads race SHED_BURST_THRESHOLD * 16 total increments
        // with no resets: the threshold is crossed once, so exactly
        // one thread may observe `true`.
        let streak = Arc::new(AtomicU64::new(0));
        let fired = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let streak = Arc::clone(&streak);
            let fired = Arc::clone(&fired);
            handles.push(std::thread::spawn(move || {
                for _ in 0..SHED_BURST_THRESHOLD {
                    if streak_shed(&streak) {
                        fired.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for handle in handles {
            handle.join().expect("streak thread");
        }
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        assert_eq!(
            streak.load(Ordering::Relaxed),
            SHED_BURST_THRESHOLD * 16,
            "every increment landed exactly once"
        );
    }

    #[test]
    fn writer_releases_replies_in_sequence_order() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server_side, _peer) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        let mut writer = ConnWriter {
            stream: server_side,
            next_release: 0,
            ready: BTreeMap::new(),
            out: Vec::new(),
            errors_released: 0,
            error_budget: 0,
            closing: false,
            write_shut: false,
            dead: false,
        };
        for (seq, text) in [(2u64, "third"), (0, "first")] {
            writer.ready.insert(
                seq,
                Line {
                    text: text.to_owned(),
                    is_error: false,
                    close_after: false,
                },
            );
        }
        writer.release();
        assert_eq!(writer.out, b"first\n", "seq 1 gates seq 2");
        writer.ready.insert(
            1,
            Line {
                text: "second".to_owned(),
                is_error: false,
                close_after: false,
            },
        );
        writer.release();
        assert_eq!(writer.out, b"first\nsecond\nthird\n");
        drop(client);
    }

    #[test]
    fn writer_error_budget_appends_notice_in_release_order() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server_side, _peer) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        let mut writer = ConnWriter {
            stream: server_side,
            next_release: 0,
            ready: BTreeMap::new(),
            out: Vec::new(),
            errors_released: 0,
            error_budget: 2,
            closing: false,
            write_shut: false,
            dead: false,
        };
        for seq in 0..3u64 {
            writer.ready.insert(
                seq,
                Line {
                    text: format!("err{seq}"),
                    is_error: true,
                    close_after: false,
                },
            );
        }
        writer.release();
        let text = String::from_utf8(writer.out.clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "err0",
                "err1",
                protocol::render_error_budget_exhausted().as_str()
            ],
            "budget notice lands after the budget-th error, never after more"
        );
        assert!(writer.closing, "budget exhaustion closes the connection");
        drop(client);
    }

    #[test]
    fn tenant_bucket_sheds_only_the_over_quota_tenant() {
        let tenants = Tenants::new(TenantPolicy {
            default_rate: 0.0,
            default_burst: 0.0,
            default_priority: 1,
            quotas: vec![TenantQuota {
                name: "metered".to_owned(),
                rate: 0.001, // effectively no refill within the test
                burst: 3.0,
                priority: 2,
            }],
        });
        let mut metered_ok = 0;
        let mut metered_shed = 0;
        for _ in 0..10 {
            let (admitted, priority) = tenants.admit(Some("metered"));
            assert_eq!(priority, 2);
            if admitted {
                metered_ok += 1;
            } else {
                metered_shed += 1;
            }
        }
        assert_eq!(metered_ok, 3, "burst capacity admits exactly the bucket");
        assert_eq!(metered_shed, 7);
        for _ in 0..10 {
            let (admitted, _) = tenants.admit(Some("open"));
            assert!(admitted, "unlisted tenant with rate 0 is unlimited");
        }
        let snapshot = tenants.snapshot();
        let metered = snapshot.iter().find(|t| t.name == "metered").expect("row");
        assert_eq!((metered.requests, metered.shed), (3, 7));
        let open = snapshot.iter().find(|t| t.name == "open").expect("row");
        assert_eq!((open.requests, open.shed), (10, 0));
    }

    #[test]
    fn inert_policy_admits_without_touching_the_table() {
        let tenants = Tenants::new(TenantPolicy::default());
        let (admitted, _) = tenants.admit(None);
        assert!(admitted);
        assert!(tenants.snapshot().is_empty(), "fast path bypasses the map");
        // A named tenant is still tracked even under the inert policy
        // so stats can attribute traffic.
        let (admitted, _) = tenants.admit(Some("named"));
        assert!(admitted);
        assert_eq!(tenants.snapshot().len(), 1);
    }
}
