//! The multi-threaded TCP front end.
//!
//! One accept thread feeds a bounded queue of connections; a fixed
//! pool of workers drains it, serving newline-delimited requests per
//! connection until EOF. The queue bound is the overload contract:
//! a connection that arrives while the queue is full is shed with an
//! explicit `{"error":"overloaded","shed":true}` line rather than
//! queued without limit (unbounded queues hide overload until memory
//! or latency collapses) or silently reset.
//!
//! Shutdown is cooperative. A `{"cmd":"shutdown"}` request flips a
//! flag; the accept thread stops accepting, workers drain the queued
//! connections and finish every complete request line already
//! received, and [`ServerHandle::join`] returns once all threads
//! exit. Workers notice the flag within one read-timeout tick
//! (`POLL_INTERVAL`), so join latency is bounded.

use crate::engine::Engine;
use crate::protocol::{self, Command};
use crate::stats;
use dut_obs::metrics::{Counter, Gauge, HistogramId};
use dut_obs::slo::SloConfig;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Read/accept poll granularity; bounds shutdown-notice latency.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Consecutive sheds that count as a burst and trigger an automatic
/// flight-recorder dump (once per burst; the streak resets when a
/// connection is accepted again).
pub const SHED_BURST_THRESHOLD: u64 = 8;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Prepared testers kept resident.
    pub cache_cap: usize,
    /// Connections waiting for a worker before the server sheds.
    pub queue_cap: usize,
    /// One request in this many emits a sampled `serve_trace` event
    /// (0 disables sampling).
    pub trace_sample: u64,
    /// Service-level objectives evaluated by `{"cmd":"stats"}`.
    pub slo: SloConfig,
    /// A connection that completes no request line for this long is
    /// reaped (covers both idle-forever clients and slowloris drips
    /// that send bytes but never a newline).
    pub idle_timeout: Duration,
    /// Error replies a single connection may receive before the
    /// server closes it (0 disables the budget). Honest clients never
    /// get near it; a fuzzer or abuser hits it quickly.
    pub error_budget: u32,
    /// Hard cap on one request line's bytes; longer lines get
    /// `{"error":"line_too_long"}` and the connection closes.
    pub max_line_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            cache_cap: 32,
            queue_cap: 64,
            trace_sample: crate::engine::DEFAULT_TRACE_SAMPLE,
            slo: SloConfig::default(),
            idle_timeout: Duration::from_secs(30),
            error_budget: 64,
            max_line_bytes: protocol::MAX_LINE_BYTES,
        }
    }
}

/// A queued connection: the socket plus when it entered the queue,
/// so the dequeuing worker can charge the wait to the queue phase.
struct QueuedConn {
    stream: TcpStream,
    enqueued_at: Instant,
}

struct Shared {
    engine: Engine,
    queue: Mutex<VecDeque<QueuedConn>>,
    available: Condvar,
    shutdown: AtomicBool,
    queue_cap: usize,
    slo: SloConfig,
    /// Consecutive sheds since the last successful enqueue; crossing
    /// [`SHED_BURST_THRESHOLD`] dumps the flight recorder once.
    shed_streak: AtomicU64,
    idle_timeout: Duration,
    error_budget: u32,
    max_line_bytes: usize,
}

impl Shared {
    /// Locks the connection queue, recovering from poisoning (a
    /// panicking worker must not wedge the whole server).
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<QueuedConn>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running server. Dropping the handle detaches the threads; call
/// [`ServerHandle::join`] (usually after a client sent `shutdown`, or
/// after [`ServerHandle::request_shutdown`]) for a clean exit.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves `:0` to the real port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates shutdown from the host process (equivalent to a
    /// client's `{"cmd":"shutdown"}`).
    pub fn request_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has been initiated.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.is_shutting_down()
    }

    /// Waits for the accept thread and every worker to exit. Returns
    /// only after a shutdown was requested (by a client or by
    /// [`Self::request_shutdown`]) and all in-flight work drained.
    pub fn join(self) {
        for thread in self.threads {
            // A worker that panicked already served its panic to the
            // connection's demise; the server still drains the rest.
            let _ = thread.join();
        }
    }
}

/// Binds the listener and starts the accept thread and worker pool.
///
/// # Errors
///
/// Returns the bind/configuration error message.
pub fn start(config: &ServeConfig) -> Result<ServerHandle, String> {
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set nonblocking accept: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    // The flight recorder is a process-wide sink: install it once no
    // matter how many servers this process starts (tests start many).
    static FLIGHT_INSTALL: Once = Once::new();
    FLIGHT_INSTALL.call_once(|| {
        dut_obs::global()
            .install_sink(Arc::clone(dut_obs::flight::global()) as Arc<dyn dut_obs::Sink>);
    });
    let shared = Arc::new(Shared {
        engine: Engine::with_trace_sample(config.cache_cap, config.trace_sample),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
        queue_cap: config.queue_cap.max(1),
        slo: config.slo,
        shed_streak: AtomicU64::new(0),
        idle_timeout: config.idle_timeout.max(POLL_INTERVAL),
        error_budget: config.error_budget,
        max_line_bytes: config.max_line_bytes.max(1),
    });
    let workers = config.workers.max(1);
    let mut threads = Vec::with_capacity(workers + 1);
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || worker_loop(&shared)));
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
    }
    dut_obs::global().emit_with(|| {
        dut_obs::Event::new("serve_started")
            .with("addr", addr.to_string())
            .with("workers", workers)
            .with("queue_cap", config.queue_cap.max(1))
    });
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Accepted sockets inherit nonblocking on some
                // platforms; workers want blocking reads + timeouts.
                let _ = stream.set_nonblocking(false);
                enqueue_or_shed(shared, stream);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Listener drops here: further connects are refused, which is the
    // observable "server is gone" signal clients get after drain.
    shared.available.notify_all();
}

fn enqueue_or_shed(shared: &Shared, mut stream: TcpStream) {
    let registry = dut_obs::metrics::global();
    let mut queue = shared.lock_queue();
    if queue.len() >= shared.queue_cap {
        // The gauge is authoritative on every path; a full queue is
        // still a queue-depth observation. Written under the lock so
        // concurrent enqueues/dequeues cannot interleave a stale
        // value over a fresh one.
        registry.set_gauge(Gauge::ServeQueueDepth, queue.len() as u64);
        drop(queue);
        // Shed: explicit reply, then close. The write is best effort
        // — a client that already gave up is not our problem — but
        // the counter always moves.
        registry.incr(Counter::ServeShed);
        let streak = shared.shed_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak == SHED_BURST_THRESHOLD {
            // A burst is in progress: capture what led up to it. The
            // dump travels as a trace event, so file sinks record the
            // incident context; the ring itself skips it.
            dut_obs::global().emit_with(|| dut_obs::flight::global().dump_event("shed_burst"));
        }
        let _ = stream.set_write_timeout(Some(POLL_INTERVAL));
        let _ = writeln!(stream, "{}", protocol::render_overloaded());
    } else {
        shared.shed_streak.store(0, Ordering::Relaxed);
        queue.push_back(QueuedConn {
            stream,
            enqueued_at: Instant::now(),
        });
        registry.set_gauge(Gauge::ServeQueueDepth, queue.len() as u64);
        drop(queue);
        shared.available.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(conn) = queue.pop_front() {
                    dut_obs::metrics::global()
                        .set_gauge(Gauge::ServeQueueDepth, queue.len() as u64);
                    break Some(conn);
                }
                if shared.is_shutting_down() {
                    break None;
                }
                let (guard, _timed_out) = shared
                    .available
                    .wait_timeout(queue, POLL_INTERVAL)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        match conn {
            Some(conn) => {
                let waited =
                    u64::try_from(conn.enqueued_at.elapsed().as_micros()).unwrap_or(u64::MAX);
                dut_obs::metrics::global().observe(HistogramId::QueueWaitMicros, waited);
                serve_connection(shared, conn.stream, waited);
            }
            None => break,
        }
    }
}

/// Serves one connection until EOF, error, or drained shutdown.
/// Every complete request line gets exactly one reply line; a partial
/// line at shutdown or disconnect is dropped (never half-answered).
///
/// `queue_wait_micros` is how long the connection sat in the accept
/// queue; it is charged to the *first* request only (later requests on
/// the same connection never waited in that queue).
///
/// Three hostile-client defenses live here, all with explicit final
/// replies so a well-meaning-but-buggy client can diagnose itself:
///
/// * **Line cap.** Bytes accumulated without a newline past
///   `max_line_bytes` (or a drained line over it) get
///   `{"error":"line_too_long"}` and a close — the only alternative
///   is unbounded buffering.
/// * **Idle reap.** No *completed line* within `idle_timeout` reaps
///   the connection. Keying on completed lines (not raw bytes)
///   catches slowloris drips, which send a byte at a time forever.
/// * **Error budget.** More than `error_budget` error replies close
///   the connection; a worker slot is not a fuzzing amplifier.
fn serve_connection(shared: &Shared, mut stream: TcpStream, queue_wait_micros: u64) {
    let registry = dut_obs::metrics::global();
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    // One-line replies must leave immediately: without nodelay the
    // reply sits in Nagle's buffer waiting on the client's delayed
    // ACK, turning every request into a ~40ms round trip.
    let _ = stream.set_nodelay(true);
    let mut queue_wait = queue_wait_micros;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_line_at = Instant::now();
    let mut errors_seen: u32 = 0;
    loop {
        if last_line_at.elapsed() >= shared.idle_timeout {
            registry.incr(Counter::ServeReaped);
            notice_and_close(stream, &protocol::render_idle_timeout());
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(got) => {
                pending.extend_from_slice(&chunk[..got]);
                while let Some(newline) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=newline).collect();
                    last_line_at = Instant::now();
                    if line.len() > shared.max_line_bytes {
                        registry.incr(Counter::ServeMalformed);
                        notice_and_close(stream, &protocol::render_line_too_long());
                        return;
                    }
                    let text = String::from_utf8_lossy(&line);
                    let text = text.trim();
                    if text.is_empty() {
                        continue;
                    }
                    let answer = answer_line_caught(shared, text, queue_wait);
                    queue_wait = 0;
                    if writeln!(stream, "{}", answer.reply).is_err() {
                        return;
                    }
                    if answer.close {
                        let _ = stream.flush();
                        return;
                    }
                    if answer.is_error {
                        errors_seen = errors_seen.saturating_add(1);
                        if shared.error_budget > 0 && errors_seen >= shared.error_budget {
                            registry.incr(Counter::ServeErrorBudget);
                            notice_and_close(stream, &protocol::render_error_budget_exhausted());
                            return;
                        }
                    }
                }
                if pending.len() > shared.max_line_bytes {
                    // A line still has no newline but already blew the
                    // cap: stop buffering it.
                    registry.incr(Counter::ServeMalformed);
                    notice_and_close(stream, &protocol::render_line_too_long());
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle tick between requests; at shutdown every
                // complete line was already answered, so drain done.
                if shared.is_shutting_down() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let _ = stream.flush();
}

/// Writes a final notice, then closes without destroying it: an
/// abrupt `close(2)` with unread client bytes still queued makes the
/// kernel send RST, which discards the notice before the client can
/// read it. Shutting down only the write side first, then draining
/// (and discarding) the client's leftovers for a bounded moment,
/// lets the notice actually arrive.
fn notice_and_close(mut stream: TcpStream, notice: &str) {
    if writeln!(stream, "{notice}").is_err() {
        return;
    }
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let deadline = Instant::now() + Duration::from_millis(250);
    let mut sink = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
}

/// One evaluated request line.
struct Answer {
    reply: String,
    /// Close the connection after writing the reply (shutdown ack or
    /// a caught handler panic).
    close: bool,
    /// The reply is an error line; it counts against the
    /// connection's error budget.
    is_error: bool,
}

impl Answer {
    fn ok(reply: String) -> Answer {
        Answer {
            reply,
            close: false,
            is_error: false,
        }
    }

    fn error(reply: String) -> Answer {
        Answer {
            reply,
            close: false,
            is_error: true,
        }
    }
}

/// [`answer_line`] behind a panic boundary. A panicking handler must
/// cost at most its own connection: without this, the unwind kills
/// the worker thread, and enough of them wedge the whole pool.
fn answer_line_caught(shared: &Shared, line: &str, queue_wait_micros: u64) -> Answer {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        answer_line(shared, line, queue_wait_micros)
    }));
    match caught {
        Ok(answer) => answer,
        Err(_panic) => {
            dut_obs::metrics::global().incr(Counter::ServePanicsCaught);
            Answer {
                reply: protocol::render_error("internal: request handler panicked"),
                close: true,
                is_error: true,
            }
        }
    }
}

/// Evaluates one request line.
fn answer_line(shared: &Shared, line: &str, queue_wait_micros: u64) -> Answer {
    match protocol::parse_command(line) {
        Ok(Command::Run(request)) => {
            match shared.engine.handle_queued(&request, queue_wait_micros) {
                Ok(reply) => Answer::ok(reply.render()),
                Err(message) => Answer::error(protocol::render_error(&message)),
            }
        }
        Ok(Command::Shutdown) => {
            shared.begin_shutdown();
            Answer {
                reply: protocol::render_shutdown_ack(),
                close: true,
                is_error: false,
            }
        }
        Ok(Command::Stats) => {
            let cached = u64::try_from(shared.engine.cached_testers()).unwrap_or(u64::MAX);
            Answer::ok(stats::gather(cached, &shared.slo).render())
        }
        Ok(Command::Flight) => Answer::ok(stats::render_flight(dut_obs::flight::global())),
        Err(message) => {
            dut_obs::metrics::global().incr(Counter::ServeMalformed);
            Answer::error(protocol::render_error(&message))
        }
    }
}
