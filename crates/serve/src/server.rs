//! The multi-threaded TCP front end.
//!
//! One accept thread feeds a bounded queue of connections; a fixed
//! pool of workers drains it, serving newline-delimited requests per
//! connection until EOF. The queue bound is the overload contract:
//! a connection that arrives while the queue is full is shed with an
//! explicit `{"error":"overloaded","shed":true}` line rather than
//! queued without limit (unbounded queues hide overload until memory
//! or latency collapses) or silently reset.
//!
//! Shutdown is cooperative. A `{"cmd":"shutdown"}` request flips a
//! flag; the accept thread stops accepting, workers drain the queued
//! connections and finish every complete request line already
//! received, and [`ServerHandle::join`] returns once all threads
//! exit. Workers notice the flag within one read-timeout tick
//! (`POLL_INTERVAL`), so join latency is bounded.

use crate::engine::Engine;
use crate::protocol::{self, Command};
use dut_obs::metrics::{Counter, Gauge};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Read/accept poll granularity; bounds shutdown-notice latency.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Prepared testers kept resident.
    pub cache_cap: usize,
    /// Connections waiting for a worker before the server sheds.
    pub queue_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            cache_cap: 32,
            queue_cap: 64,
        }
    }
}

struct Shared {
    engine: Engine,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    queue_cap: usize,
}

impl Shared {
    /// Locks the connection queue, recovering from poisoning (a
    /// panicking worker must not wedge the whole server).
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<TcpStream>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running server. Dropping the handle detaches the threads; call
/// [`ServerHandle::join`] (usually after a client sent `shutdown`, or
/// after [`ServerHandle::request_shutdown`]) for a clean exit.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves `:0` to the real port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates shutdown from the host process (equivalent to a
    /// client's `{"cmd":"shutdown"}`).
    pub fn request_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has been initiated.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.is_shutting_down()
    }

    /// Waits for the accept thread and every worker to exit. Returns
    /// only after a shutdown was requested (by a client or by
    /// [`Self::request_shutdown`]) and all in-flight work drained.
    pub fn join(self) {
        for thread in self.threads {
            // A worker that panicked already served its panic to the
            // connection's demise; the server still drains the rest.
            let _ = thread.join();
        }
    }
}

/// Binds the listener and starts the accept thread and worker pool.
///
/// # Errors
///
/// Returns the bind/configuration error message.
pub fn start(config: &ServeConfig) -> Result<ServerHandle, String> {
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set nonblocking accept: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    let shared = Arc::new(Shared {
        engine: Engine::new(config.cache_cap),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
        queue_cap: config.queue_cap.max(1),
    });
    let workers = config.workers.max(1);
    let mut threads = Vec::with_capacity(workers + 1);
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || worker_loop(&shared)));
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
    }
    dut_obs::global().emit_with(|| {
        dut_obs::Event::new("serve_started")
            .with("addr", addr.to_string())
            .with("workers", workers)
            .with("queue_cap", config.queue_cap.max(1))
    });
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Accepted sockets inherit nonblocking on some
                // platforms; workers want blocking reads + timeouts.
                let _ = stream.set_nonblocking(false);
                enqueue_or_shed(shared, stream);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Listener drops here: further connects are refused, which is the
    // observable "server is gone" signal clients get after drain.
    shared.available.notify_all();
}

fn enqueue_or_shed(shared: &Shared, mut stream: TcpStream) {
    let registry = dut_obs::metrics::global();
    let mut queue = shared.lock_queue();
    if queue.len() >= shared.queue_cap {
        drop(queue);
        // Shed: explicit reply, then close. The write is best effort
        // — a client that already gave up is not our problem — but
        // the counter always moves.
        registry.incr(Counter::ServeShed);
        let _ = stream.set_write_timeout(Some(POLL_INTERVAL));
        let _ = writeln!(stream, "{}", protocol::render_overloaded());
    } else {
        queue.push_back(stream);
        let depth = queue.len();
        drop(queue);
        registry.set_gauge(Gauge::ServeQueueDepth, depth as u64);
        shared.available.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(stream) = queue.pop_front() {
                    dut_obs::metrics::global()
                        .set_gauge(Gauge::ServeQueueDepth, queue.len() as u64);
                    break Some(stream);
                }
                if shared.is_shutting_down() {
                    break None;
                }
                let (guard, _timed_out) = shared
                    .available
                    .wait_timeout(queue, POLL_INTERVAL)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        match stream {
            Some(stream) => serve_connection(shared, stream),
            None => break,
        }
    }
}

/// Serves one connection until EOF, error, or drained shutdown.
/// Every complete request line gets exactly one reply line; a partial
/// line at shutdown or disconnect is dropped (never half-answered).
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    // One-line replies must leave immediately: without nodelay the
    // reply sits in Nagle's buffer waiting on the client's delayed
    // ACK, turning every request into a ~40ms round trip.
    let _ = stream.set_nodelay(true);
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(got) => {
                pending.extend_from_slice(&chunk[..got]);
                while let Some(newline) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=newline).collect();
                    let text = String::from_utf8_lossy(&line);
                    let text = text.trim();
                    if text.is_empty() {
                        continue;
                    }
                    let (reply, stop) = answer_line(shared, text);
                    if writeln!(stream, "{reply}").is_err() {
                        return;
                    }
                    if stop {
                        let _ = stream.flush();
                        return;
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle tick between requests; at shutdown every
                // complete line was already answered, so drain done.
                if shared.is_shutting_down() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let _ = stream.flush();
}

/// Evaluates one request line; returns the reply and whether this
/// connection should close (shutdown acknowledgement).
fn answer_line(shared: &Shared, line: &str) -> (String, bool) {
    match protocol::parse_command(line) {
        Ok(Command::Run(request)) => match shared.engine.handle(&request) {
            Ok(reply) => (reply.render(), false),
            Err(message) => (protocol::render_error(&message), false),
        },
        Ok(Command::Shutdown) => {
            shared.begin_shutdown();
            (protocol::render_shutdown_ack(), true)
        }
        Err(message) => (protocol::render_error(&message), false),
    }
}
