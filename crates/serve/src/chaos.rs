//! Chaos injection: a hostile-client mix for `dut loadgen --chaos`.
//!
//! Where the load generator measures how the server performs for
//! *honest* clients, this module measures whether it survives
//! *hostile* ones. A pool of chaos lanes runs a seeded mix of attack
//! behaviors — slowloris drips, half-open connects, mid-frame
//! disconnects, idle-forever holds, reconnect storms — while honest
//! probe requests interleave between bursts to prove the service
//! plane stays alive throughout.
//!
//! Hostility arrives in *bursts*, not i.i.d.: real abuse (and real
//! network pathology) clusters. The burst structure is the same
//! [`GilbertElliott`] two-state channel the resilience experiments
//! use — a lane's next action is hostile exactly when the channel
//! drops the delivery, so runs are deterministic per seed and the
//! burstiness matches the paper-side fault model.
//!
//! The invariant enforced at the end of a run: the server still
//! answers a known-good request with the bit-exact offline verdict,
//! and `{"cmd":"stats"}` still parses. A server that survived chaos
//! but wedged a worker fails that probe.

use crate::engine;
use crate::protocol::{self, ReplyLine, Request};
use crate::stats::Stats;
use dut_obs::metrics::Counter;
use dut_simnet::{FaultPlan, GilbertElliott};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Chaos-run configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Server address.
    pub addr: String,
    /// How long to keep injecting.
    pub duration: Duration,
    /// Concurrent chaos lanes.
    pub lanes: usize,
    /// Mean fraction of actions that are hostile (the Gilbert-Elliott
    /// mean loss rate; bursts make the instantaneous rate swing).
    /// Clamped to the channel's bursty ceiling of 0.375 — above the
    /// bad state's stationary mass the model cannot deliver the mean.
    pub rate: f64,
    /// Master seed; every lane derives its own stream from it.
    pub seed: u64,
    /// How long idle-forever / slowloris clients hold their socket.
    /// Keep this comfortably above the server's idle timeout to
    /// exercise the reaper, or below it to exercise patience.
    pub hold: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            addr: "127.0.0.1:7979".to_owned(),
            duration: Duration::from_secs(2),
            lanes: 4,
            rate: 0.3,
            seed: 7,
            hold: Duration::from_millis(750),
        }
    }
}

/// The hostile behaviors a lane can perform. `COUNT`/`ALL` follow the
/// same exhaustive-enum idiom as the metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Send a valid request one byte at a time, far too slowly to
    /// ever finish a line.
    Slowloris,
    /// Connect and immediately vanish without sending anything.
    HalfOpen,
    /// Send half a frame, then drop the connection mid-line.
    MidFrameCut,
    /// Connect, send nothing, and hold the socket open.
    IdleForever,
    /// A rapid burst of connect/close cycles.
    ReconnectStorm,
}

impl Attack {
    /// Every attack, for mix selection and reporting.
    pub const ALL: [Attack; 5] = [
        Attack::Slowloris,
        Attack::HalfOpen,
        Attack::MidFrameCut,
        Attack::IdleForever,
        Attack::ReconnectStorm,
    ];

    /// Stable label for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Attack::Slowloris => "slowloris",
            Attack::HalfOpen => "half_open",
            Attack::MidFrameCut => "mid_frame_cut",
            Attack::IdleForever => "idle_forever",
            Attack::ReconnectStorm => "reconnect_storm",
        }
    }
}

/// What a chaos run did and whether the server survived it.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Hostile actions launched, per [`Attack::ALL`] order.
    pub attacks: [u64; Attack::ALL.len()],
    /// Honest probe requests interleaved between hostile actions.
    pub probes_sent: u64,
    /// Honest probes answered with the bit-exact offline verdict.
    pub probes_ok: u64,
    /// Honest probes shed by an overloaded server (acceptable: shed
    /// is the contract, not a failure).
    pub probes_shed: u64,
    /// The final known-good request after all chaos drained was
    /// answered bit-exactly.
    pub final_probe_ok: bool,
    /// The final `{"cmd":"stats"}` reply parsed.
    pub final_stats_ok: bool,
    /// Post-run server stats, when the final poll succeeded.
    pub final_stats: Option<Stats>,
}

impl ChaosReport {
    /// Total hostile actions across every attack kind.
    #[must_use]
    pub fn total_attacks(&self) -> u64 {
        self.attacks.iter().sum()
    }

    /// The survival verdict: every mid-run probe that was answered
    /// (not shed) was answered correctly, and the server still serves
    /// and accounts after the storm.
    #[must_use]
    pub fn survived(&self) -> bool {
        self.final_probe_ok
            && self.final_stats_ok
            && self.probes_ok + self.probes_shed == self.probes_sent
    }

    /// One-line summary for CLI output.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut parts: Vec<String> = Attack::ALL
            .iter()
            .zip(self.attacks.iter())
            .map(|(attack, count)| format!("{}={count}", attack.name()))
            .collect();
        parts.push(format!(
            "probes={}/{} (+{} shed)",
            self.probes_ok, self.probes_sent, self.probes_shed
        ));
        parts.push(format!(
            "survived={}",
            if self.survived() { "yes" } else { "NO" }
        ));
        parts.join("  ")
    }
}

/// The known-good request every probe sends; small enough that its
/// tester builds in microseconds and its offline verdict is cheap.
#[must_use]
pub fn probe_request() -> Request {
    Request {
        n: 64,
        k: 4,
        q: 8,
        eps: 0.5,
        rule: dut_core::Rule::And,
        family: protocol::Family::Uniform,
        seed: 42,
        trials: 1,
    }
}

/// Sends the probe request on a fresh connection and checks the reply
/// against the offline reference. Returns `Ok(true)` for a bit-exact
/// answer, `Ok(false)` for a shed, `Err` for anything else.
fn probe(addr: &str) -> Result<bool, String> {
    let request = probe_request();
    let stream =
        TcpStream::connect(addr).map_err(|e| format!("probe cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("probe cannot clone stream: {e}"))?;
    writeln!(writer, "{}", protocol::render_request(&request))
        .map_err(|e| format!("probe cannot send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let got = reader
        .read_line(&mut line)
        .map_err(|e| format!("probe got no reply: {e}"))?;
    if got == 0 {
        return Err("probe connection closed without a reply".to_owned());
    }
    match ReplyLine::parse(line.trim())? {
        ReplyLine::Reply(reply) => {
            let expected = engine::offline_reply(&request)?;
            let exact = expected.verdict == reply.verdict
                && expected.p_hat.to_bits() == reply.p_hat.to_bits()
                && expected.wilson_lo.to_bits() == reply.wilson_lo.to_bits()
                && expected.wilson_hi.to_bits() == reply.wilson_hi.to_bits();
            if exact {
                Ok(true)
            } else {
                Err(format!("probe verdict diverged from offline: {line}"))
            }
        }
        ReplyLine::Overloaded => Ok(false),
        other => Err(format!("probe got unexpected reply: {other:?}")),
    }
}

/// Performs one hostile action against the server. Every path is
/// best-effort: a hostile client gets no guarantees, and connect
/// failures (a shedding server writes its overloaded line and closes)
/// are part of the scenery.
fn attack(addr: &str, kind: Attack, hold: Duration, rng: &mut StdRng) {
    dut_obs::metrics::global().incr(Counter::ChaosInjected);
    match kind {
        Attack::Slowloris => {
            let Ok(mut stream) = TcpStream::connect(addr) else {
                return;
            };
            let line = protocol::render_request(&probe_request());
            let bytes = line.as_bytes();
            // Drip bytes (never the newline) until the hold expires;
            // the server must reap on "no completed line", because
            // bytes keep arriving the whole time.
            let started = Instant::now();
            let mut i = 0usize;
            while started.elapsed() < hold {
                if stream.write_all(&bytes[i..=i]).is_err() {
                    return; // reaped mid-drip: mission accomplished
                }
                let _ = stream.flush();
                i = (i + 1) % bytes.len().saturating_sub(1).max(1);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        Attack::HalfOpen => {
            // Connect and drop instantly: the worker sees EOF.
            let _ = TcpStream::connect(addr);
        }
        Attack::MidFrameCut => {
            let Ok(mut stream) = TcpStream::connect(addr) else {
                return;
            };
            let line = protocol::render_request(&probe_request());
            let cut = rng.random_range(1..line.len());
            let _ = stream.write_all(&line.as_bytes()[..cut]);
            let _ = stream.flush();
            // Drop without the newline: the partial line must be
            // discarded, never half-answered.
        }
        Attack::IdleForever => {
            let Ok(stream) = TcpStream::connect(addr) else {
                return;
            };
            std::thread::sleep(hold);
            drop(stream);
        }
        Attack::ReconnectStorm => {
            for _ in 0..8 {
                let _ = TcpStream::connect(addr);
            }
        }
    }
}

/// One lane: alternates hostile actions and honest probes, gated by
/// its own Gilbert-Elliott channel and RNG stream.
struct LaneTally {
    attacks: [u64; Attack::ALL.len()],
    probes_sent: u64,
    probes_ok: u64,
    probes_shed: u64,
}

fn lane_loop(config: &ChaosConfig, lane: u64, start: Instant) -> LaneTally {
    let mut tally = LaneTally {
        attacks: [0; Attack::ALL.len()],
        probes_sent: 0,
        probes_ok: 0,
        probes_shed: 0,
    };
    // Lane seeds come from the same split-mix derivation the engine
    // uses for trial seeds, so lanes are decorrelated but replayable.
    let mut rng = StdRng::seed_from_u64(dut_stats::seed::derive_seed(config.seed, lane));
    // 0.375 is the bursty channel's stationary bad-state mass; see
    // `GilbertElliott::bursty_with_mean_loss` (it panics above that).
    let mut channel = GilbertElliott::bursty_with_mean_loss(config.rate.clamp(0.0, 0.375));
    channel.begin_run(1, &mut rng);
    while start.elapsed() < config.duration {
        // A dropped delivery = a hostile action this step.
        let hostile = channel.deliver_round(&[Some(true)], &mut rng)[0].is_none();
        if hostile {
            let kind = Attack::ALL[rng.random_range(0..Attack::ALL.len())];
            tally.attacks[Attack::ALL.iter().position(|&a| a == kind).unwrap_or(0)] += 1;
            attack(&config.addr, kind, config.hold, &mut rng);
        } else {
            tally.probes_sent += 1;
            match probe(&config.addr) {
                Ok(true) => tally.probes_ok += 1,
                Ok(false) => tally.probes_shed += 1,
                Err(_) => {}
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    tally
}

/// Runs the chaos mix and the post-storm survival checks.
///
/// # Errors
///
/// Returns an error only when the server is unreachable before any
/// chaos starts; everything after that is reported, not fatal.
pub fn run(config: &ChaosConfig) -> Result<ChaosReport, String> {
    let probe_first =
        probe(&config.addr).map_err(|e| format!("server not healthy before chaos: {e}"))?;
    if !probe_first {
        return Err("server shed the pre-chaos probe; start chaos against an idle server".into());
    }
    let lanes = config.lanes.max(1);
    let start = Instant::now();
    let tallies: Vec<LaneTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..lanes)
            .map(|lane| scope.spawn(move || lane_loop(config, lane as u64, start)))
            .collect();
        handles.into_iter().filter_map(|h| h.join().ok()).collect()
    });
    let mut report = ChaosReport::default();
    for tally in tallies {
        for (total, lane) in report.attacks.iter_mut().zip(tally.attacks.iter()) {
            *total += lane;
        }
        report.probes_sent += tally.probes_sent;
        report.probes_ok += tally.probes_ok;
        report.probes_shed += tally.probes_shed;
    }
    // Give the reaper one idle-timeout's grace to collect held
    // sockets before the verdict probes.
    std::thread::sleep(Duration::from_millis(50));
    report.final_probe_ok = matches!(probe(&config.addr), Ok(true));
    match crate::loadgen::fetch_stats(&config.addr) {
        Ok(stats) => {
            report.final_stats_ok = true;
            report.final_stats = Some(stats);
        }
        Err(_) => report.final_stats_ok = false,
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_names_are_stable_and_distinct() {
        let names: std::collections::BTreeSet<_> = Attack::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), Attack::ALL.len());
    }

    #[test]
    fn report_survival_requires_all_probes_accounted() {
        let mut report = ChaosReport {
            probes_sent: 10,
            probes_ok: 9,
            probes_shed: 1,
            final_probe_ok: true,
            final_stats_ok: true,
            ..ChaosReport::default()
        };
        assert!(report.survived());
        report.probes_ok = 8; // one probe vanished
        assert!(!report.survived());
        report.probes_ok = 9;
        report.final_probe_ok = false;
        assert!(!report.survived());
    }

    #[test]
    fn summary_names_every_attack() {
        let report = ChaosReport::default();
        let summary = report.summary();
        for attack in Attack::ALL {
            assert!(summary.contains(attack.name()), "missing {}", attack.name());
        }
        assert!(summary.contains("survived"));
    }

    #[test]
    fn unreachable_server_fails_fast() {
        let config = ChaosConfig {
            addr: "127.0.0.1:1".to_owned(),
            ..ChaosConfig::default()
        };
        assert!(run(&config).is_err());
    }
}
