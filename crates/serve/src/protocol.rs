//! The wire protocol: one JSON object per line, in both directions.
//!
//! Requests name a complete test configuration:
//!
//! ```json
//! {"n":1024,"k":16,"q":40,"eps":0.5,"rule":"balanced","seed":7,
//!  "samples":"two-level","trials":20}
//! ```
//!
//! `samples` (the input family) defaults to `"uniform"` and `trials`
//! to 1. Admin commands share the line format: `{"cmd":"shutdown"}`
//! drains and stops the server, `{"cmd":"stats"}` returns cumulative
//! and windowed metrics with SLO status, `{"cmd":"flight"}` dumps the
//! flight recorder's recent events. Replies are single lines too:
//!
//! ```json
//! {"verdict":"accept","p_hat":0.95,"wilson_lo":0.76,"wilson_hi":0.99,
//!  "cache":"hit","micros":412,"rid":1042}
//! ```
//!
//! Errors come back as `{"error":"..."}`; a shed *request* receives
//! `{"error":"overloaded","shed":true}` on its line (the connection
//! stays open — shedding is per request under the request-level
//! scheduler). Requests may carry an optional `"tenant":"name"` field
//! for admission control; a request shed by its tenant's quota gets
//! the overloaded line extended with `"scope":"tenant"` and the
//! tenant name, which still parses as [`ReplyLine::Overloaded`].
//!
//! Numbers cross the wire through Rust's shortest-round-trip `f64`
//! formatting, so a reply parsed back yields bit-identical floats —
//! the loadgen's offline-agreement check depends on this.

use dut_core::Rule;
use dut_obs::json::{self, Json};
use dut_probability::{families, DenseDistribution};
use dut_simnet::Verdict;
use std::fmt;

/// Most trials a single request may ask for; keeps one malformed
/// request from pinning a worker for minutes.
pub const MAX_TRIALS: u64 = 100_000;

/// Largest domain size a served request may name. A prepared tester
/// materializes O(n) probability tables, so an unchecked
/// `{"n":1e18}` is a one-line allocation bomb — the fuzzer's favorite
/// abusive config. Offline runs (`dut test`) are not bound by this;
/// only the wire protocol is.
pub const MAX_N: usize = 1 << 20;

/// Largest per-player sample count a served request may name (same
/// rationale as [`MAX_N`]: per-request work is O(k·(n+q)) per trial).
pub const MAX_Q: usize = 1 << 20;

/// Largest player count a served request may name.
pub const MAX_K: usize = 1 << 12;

/// Upper bound on `k·(n+q)`: the per-trial work of one request.
/// Individually legal n, q, k can still multiply into minutes of
/// worker time; this cap bounds the product so one request can pin a
/// worker for milliseconds, not minutes.
pub const MAX_WORK: u64 = 1 << 26;

/// Longest request line the server will buffer, in bytes. A client
/// that streams bytes without a newline used to grow the server's
/// line buffer without limit; past this cap the connection gets
/// [`render_line_too_long`] and is closed.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// The input families a request can name. A closed enum (rather than
/// an arbitrary distribution) keeps cache keys small and totally
/// ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    /// The uniform distribution on `[n]`.
    Uniform,
    /// `families::two_level` at the request's `ε`.
    TwoLevel,
    /// `families::alternating` at the request's `ε`.
    Alternating,
    /// `families::zipf` with exponent 1.
    Zipf,
}

impl Family {
    /// All families, for iteration in tests and docs.
    pub const ALL: [Family; 4] = [
        Family::Uniform,
        Family::TwoLevel,
        Family::Alternating,
        Family::Zipf,
    ];

    /// Parses the wire name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Family> {
        match name {
            "uniform" => Some(Family::Uniform),
            "two-level" => Some(Family::TwoLevel),
            "alternating" => Some(Family::Alternating),
            "zipf" => Some(Family::Zipf),
            _ => None,
        }
    }

    /// The wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Uniform => "uniform",
            Family::TwoLevel => "two-level",
            Family::Alternating => "alternating",
            Family::Zipf => "zipf",
        }
    }

    /// Builds the named distribution for a domain of size `n` at
    /// proximity `eps`.
    ///
    /// # Errors
    ///
    /// Propagates the family constructor's validation error (e.g. a
    /// domain too small for the requested `ε`).
    pub fn build(self, n: usize, eps: f64) -> Result<DenseDistribution, String> {
        match self {
            Family::Uniform => Ok(families::uniform(n)),
            Family::TwoLevel => families::two_level(n, eps).map_err(|e| e.to_string()),
            Family::Alternating => families::alternating(n, eps).map_err(|e| e.to_string()),
            Family::Zipf => families::zipf(n, 1.0).map_err(|e| e.to_string()),
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A validated test request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Domain size `n`.
    pub n: usize,
    /// Number of players `k`.
    pub k: usize,
    /// Samples per player `q`.
    pub q: usize,
    /// Proximity parameter `ε ∈ (0, 1]`.
    pub eps: f64,
    /// Decision rule.
    pub rule: Rule,
    /// Input family to sample from.
    pub family: Family,
    /// Master seed; trial `i` runs on `derive_seed(seed, i)`.
    pub seed: u64,
    /// Number of protocol executions (default 1).
    pub trials: u64,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a test and reply with the verdict.
    Run(Request),
    /// Drain in-flight work and stop the server.
    Shutdown,
    /// Reply with cumulative + windowed metrics and SLO status.
    Stats,
    /// Reply with the flight recorder's retained events.
    Flight,
}

/// Longest tenant name accepted on the wire.
pub const MAX_TENANT_BYTES: usize = 64;

/// Request envelope fields that ride alongside a [`Command`] but are
/// not part of the test configuration (and therefore never enter the
/// cache key): today just the tenant identity for admission control.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestMeta {
    /// The tenant this request bills against (`"tenant"` on the
    /// wire). Absent requests bill against the default tenant.
    pub tenant: Option<String>,
}

fn field_usize(doc: &Json, key: &str) -> Result<usize, String> {
    let raw = doc
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))?;
    usize::try_from(raw).map_err(|_| format!("`{key}` out of range"))
}

/// Parses one request line, discarding the envelope metadata; see
/// [`parse_command_meta`] for the full form the server uses.
///
/// # Errors
///
/// Returns a message naming the first malformed or missing field;
/// the server sends it back verbatim as `{"error":...}`.
pub fn parse_command(line: &str) -> Result<Command, String> {
    parse_command_meta(line).map(|(cmd, _)| cmd)
}

/// Parses one request line together with its envelope metadata
/// (tenant identity). This is the server's parser; [`parse_command`]
/// is the metadata-free convenience wrapper.
///
/// # Errors
///
/// Returns a message naming the first malformed or missing field;
/// the server sends it back verbatim as `{"error":...}`.
pub fn parse_command_meta(line: &str) -> Result<(Command, RequestMeta), String> {
    let doc = json::parse(line)?;
    let mut meta = RequestMeta::default();
    if let Some(tenant) = doc.get("tenant") {
        let name = tenant
            .as_str()
            .ok_or("`tenant` must be a string")?
            .to_owned();
        if name.is_empty() || name.len() > MAX_TENANT_BYTES {
            return Err(format!(
                "`tenant` must be 1..={MAX_TENANT_BYTES} bytes, got {}",
                name.len()
            ));
        }
        meta.tenant = Some(name);
    }
    if let Some(cmd) = doc.get("cmd").and_then(Json::as_str) {
        return match cmd {
            "shutdown" => Ok((Command::Shutdown, meta)),
            "stats" => Ok((Command::Stats, meta)),
            "flight" => Ok((Command::Flight, meta)),
            other => Err(format!("unknown cmd `{other}` (shutdown | stats | flight)")),
        };
    }
    let n = field_usize(&doc, "n")?;
    let k = field_usize(&doc, "k")?;
    let q = field_usize(&doc, "q")?;
    if n > MAX_N {
        return Err(format!("`n` exceeds the served maximum {MAX_N}"));
    }
    if k > MAX_K {
        return Err(format!("`k` exceeds the served maximum {MAX_K}"));
    }
    if q > MAX_Q {
        return Err(format!("`q` exceeds the served maximum {MAX_Q}"));
    }
    let work = (k as u64).saturating_mul((n as u64).saturating_add(q as u64));
    if work > MAX_WORK {
        return Err(format!(
            "configuration too large: k*(n+q) = {work} exceeds {MAX_WORK}"
        ));
    }
    let eps = doc
        .get("eps")
        .and_then(Json::as_f64)
        .ok_or("`eps` must be a number")?;
    if !(eps > 0.0 && eps <= 1.0) {
        return Err(format!("`eps` must be in (0, 1], got {eps}"));
    }
    if q == 0 {
        return Err("`q` must be at least 1".into());
    }
    let seed = doc.get("seed").and_then(Json::as_u64).unwrap_or(0);
    let trials = doc.get("trials").and_then(Json::as_u64).unwrap_or(1);
    if trials == 0 || trials > MAX_TRIALS {
        return Err(format!("`trials` must be in 1..={MAX_TRIALS}"));
    }
    let rule_spec = doc.get("rule").and_then(Json::as_str).unwrap_or("balanced");
    let rule = parse_rule(rule_spec, k)?;
    let family_spec = doc
        .get("samples")
        .and_then(Json::as_str)
        .unwrap_or("uniform");
    let family = Family::parse(family_spec).ok_or_else(|| {
        format!("unknown samples family `{family_spec}` (uniform | two-level | alternating | zipf)")
    })?;
    Ok((
        Command::Run(Request {
            n,
            k,
            q,
            eps,
            rule,
            family,
            seed,
            trials,
        }),
        meta,
    ))
}

/// Parses a rule spec: `and | threshold:<T> | balanced | centralized`.
///
/// # Errors
///
/// Returns a message for unknown names or a threshold outside `1..=k`.
pub fn parse_rule(spec: &str, k: usize) -> Result<Rule, String> {
    match spec {
        "and" => Ok(Rule::And),
        "balanced" => Ok(Rule::Balanced),
        "centralized" => Ok(Rule::Centralized),
        other => {
            if let Some(t) = other.strip_prefix("threshold:") {
                let t: usize = t
                    .parse()
                    .map_err(|_| format!("threshold rule needs an integer, got `{t}`"))?;
                if t == 0 || t > k {
                    return Err(format!("threshold {t} outside 1..={k}"));
                }
                Ok(Rule::TThreshold { t })
            } else {
                Err(format!(
                    "unknown rule `{other}` (and | threshold:<T> | balanced | centralized)"
                ))
            }
        }
    }
}

/// Renders a request as its wire line (no trailing newline). Used by
/// the load generator and tests; the server only parses.
#[must_use]
pub fn render_request(req: &Request) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"n\":{},\"k\":{},\"q\":{},\"eps\":",
        req.n, req.k, req.q
    );
    json::write_f64(&mut out, req.eps);
    out.push_str(",\"rule\":");
    json::write_escaped(&mut out, &rule_wire_name(req.rule));
    out.push_str(",\"samples\":");
    json::write_escaped(&mut out, req.family.name());
    let _ = write!(out, ",\"seed\":{},\"trials\":{}", req.seed, req.trials);
    out.push('}');
    out
}

/// The wire spelling of a rule (`Display` for `TThreshold` prints
/// `threshold(T)`, the wire wants `threshold:T`).
#[must_use]
pub fn rule_wire_name(rule: Rule) -> String {
    match rule {
        Rule::TThreshold { t } => format!("threshold:{t}"),
        other => other.to_string(),
    }
}

/// A successful test reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reply {
    /// Verdict of trial 0 (the canonical single-run answer).
    pub verdict: Verdict,
    /// Fraction of trials that accepted.
    pub p_hat: f64,
    /// Wilson lower bound on the acceptance probability (z = 1.96).
    pub wilson_lo: f64,
    /// Wilson upper bound on the acceptance probability (z = 1.96).
    pub wilson_hi: f64,
    /// Whether a cached prepared tester served this request.
    pub cache_hit: bool,
    /// Service time in microseconds (cache resolution + trials).
    pub micros: u64,
    /// Server-assigned request id, unique per process lifetime; the
    /// correlation handle between a reply and its trace events
    /// (0 for offline/legacy replies, which have no server).
    pub rid: u64,
}

impl Reply {
    /// Renders the reply as its wire line (no trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"verdict\":");
        json::write_escaped(&mut out, &self.verdict.to_string());
        out.push_str(",\"p_hat\":");
        json::write_f64(&mut out, self.p_hat);
        out.push_str(",\"wilson_lo\":");
        json::write_f64(&mut out, self.wilson_lo);
        out.push_str(",\"wilson_hi\":");
        json::write_f64(&mut out, self.wilson_hi);
        let _ = write!(
            out,
            ",\"cache\":\"{}\",\"micros\":{},\"rid\":{}",
            if self.cache_hit { "hit" } else { "miss" },
            self.micros,
            self.rid
        );
        out.push('}');
        out
    }
}

/// Any line a client can receive.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyLine {
    /// A completed test.
    Reply(Reply),
    /// The server shed this connection at the accept queue.
    Overloaded,
    /// The request was rejected with a message.
    Error(String),
    /// Acknowledgement of a shutdown command.
    ShutdownAck,
}

impl ReplyLine {
    /// Parses one reply line.
    ///
    /// # Errors
    ///
    /// Returns a message if the line is not one of the reply shapes.
    pub fn parse(line: &str) -> Result<ReplyLine, String> {
        let doc = json::parse(line)?;
        if let Some(message) = doc.get("error").and_then(Json::as_str) {
            if doc.get("shed") == Some(&Json::Bool(true)) {
                return Ok(ReplyLine::Overloaded);
            }
            return Ok(ReplyLine::Error(message.to_owned()));
        }
        if doc.get("ok").and_then(Json::as_str) == Some("shutdown") {
            return Ok(ReplyLine::ShutdownAck);
        }
        let verdict = match doc.get("verdict").and_then(Json::as_str) {
            Some("accept") => Verdict::Accept,
            Some("reject") => Verdict::Reject,
            other => return Err(format!("bad verdict field: {other:?}")),
        };
        let num = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing `{key}`"))
        };
        Ok(ReplyLine::Reply(Reply {
            verdict,
            p_hat: num("p_hat")?,
            wilson_lo: num("wilson_lo")?,
            wilson_hi: num("wilson_hi")?,
            cache_hit: doc.get("cache").and_then(Json::as_str) == Some("hit"),
            micros: doc.get("micros").and_then(Json::as_u64).unwrap_or(0),
            rid: doc.get("rid").and_then(Json::as_u64).unwrap_or(0),
        }))
    }
}

/// The line sent for a request shed at the global queue bound.
#[must_use]
pub fn render_overloaded() -> String {
    "{\"error\":\"overloaded\",\"shed\":true}".to_owned()
}

/// The line sent for a request shed by its tenant's admission quota.
/// The extra fields keep it parsing as [`ReplyLine::Overloaded`]
/// while letting clients distinguish quota sheds from global ones.
#[must_use]
pub fn render_overloaded_tenant(tenant: &str) -> String {
    let mut out =
        String::from("{\"error\":\"overloaded\",\"shed\":true,\"scope\":\"tenant\",\"tenant\":");
    json::write_escaped(&mut out, tenant);
    out.push('}');
    out
}

/// Renders a request with a tenant envelope field; used by the load
/// generator's tenant lanes and the trace replayer.
#[must_use]
pub fn render_request_tenant(req: &Request, tenant: &str) -> String {
    let mut out = render_request(req);
    out.pop(); // trailing '}'
    out.push_str(",\"tenant\":");
    json::write_escaped(&mut out, tenant);
    out.push('}');
    out
}

/// The line sent for a malformed or invalid request.
#[must_use]
pub fn render_error(message: &str) -> String {
    let mut out = String::from("{\"error\":");
    json::write_escaped(&mut out, message);
    out.push('}');
    out
}

/// The acknowledgement for a shutdown command.
#[must_use]
pub fn render_shutdown_ack() -> String {
    "{\"ok\":\"shutdown\"}".to_owned()
}

/// The line sent when a request line exceeds [`MAX_LINE_BYTES`]; the
/// connection is closed right after.
#[must_use]
pub fn render_line_too_long() -> String {
    "{\"error\":\"line_too_long\"}".to_owned()
}

/// The line sent when a connection exhausts its error budget; the
/// connection is closed right after.
#[must_use]
pub fn render_error_budget_exhausted() -> String {
    "{\"error\":\"error_budget_exhausted\"}".to_owned()
}

/// The line sent when a connection is reaped for failing to complete
/// a request line within the idle timeout.
#[must_use]
pub fn render_idle_timeout() -> String {
    "{\"error\":\"idle_timeout\"}".to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            n: 256,
            k: 8,
            q: 12,
            eps: 0.5,
            rule: Rule::TThreshold { t: 2 },
            family: Family::TwoLevel,
            seed: 42,
            trials: 5,
        }
    }

    #[test]
    fn request_round_trips() {
        let req = sample_request();
        let line = render_request(&req);
        assert_eq!(parse_command(&line), Ok(Command::Run(req)));
    }

    #[test]
    fn reply_round_trips_bit_identically() {
        let reply = Reply {
            verdict: Verdict::Accept,
            p_hat: 2.0 / 3.0,
            wilson_lo: 0.123_456_789_012_345_6,
            wilson_hi: 0.999_999_999_999_999_9,
            cache_hit: true,
            micros: 777,
            rid: 31,
        };
        let parsed = ReplyLine::parse(&reply.render()).unwrap();
        let ReplyLine::Reply(back) = parsed else {
            panic!("not a reply: {parsed:?}");
        };
        // Bit-exact floats across the wire: shortest round-trip repr.
        assert_eq!(back.p_hat.to_bits(), reply.p_hat.to_bits());
        assert_eq!(back.wilson_lo.to_bits(), reply.wilson_lo.to_bits());
        assert_eq!(back.wilson_hi.to_bits(), reply.wilson_hi.to_bits());
        assert_eq!(back, reply);
    }

    #[test]
    fn shutdown_and_service_lines_parse() {
        assert_eq!(
            parse_command("{\"cmd\":\"shutdown\"}"),
            Ok(Command::Shutdown)
        );
        assert_eq!(parse_command("{\"cmd\":\"stats\"}"), Ok(Command::Stats));
        assert_eq!(parse_command("{\"cmd\":\"flight\"}"), Ok(Command::Flight));
        assert_eq!(
            ReplyLine::parse(&render_overloaded()),
            Ok(ReplyLine::Overloaded)
        );
        assert_eq!(
            ReplyLine::parse(&render_error("nope")),
            Ok(ReplyLine::Error("nope".into()))
        );
        assert_eq!(
            ReplyLine::parse(&render_shutdown_ack()),
            Ok(ReplyLine::ShutdownAck)
        );
    }

    #[test]
    fn rejects_bad_fields() {
        assert!(parse_command("{\"n\":64}").is_err());
        assert!(parse_command("not json").is_err());
        let bad_eps = "{\"n\":64,\"k\":4,\"q\":8,\"eps\":1.5,\"seed\":1}";
        assert!(parse_command(bad_eps).unwrap_err().contains("eps"));
        let bad_rule = "{\"n\":64,\"k\":4,\"q\":8,\"eps\":0.5,\"rule\":\"vote\"}";
        assert!(parse_command(bad_rule).unwrap_err().contains("rule"));
        let bad_thresh = "{\"n\":64,\"k\":4,\"q\":8,\"eps\":0.5,\"rule\":\"threshold:9\"}";
        assert!(parse_command(bad_thresh).unwrap_err().contains("threshold"));
        let zero_trials = "{\"n\":64,\"k\":4,\"q\":8,\"eps\":0.5,\"trials\":0}";
        assert!(parse_command(zero_trials).is_err());
        assert!(parse_command("{\"cmd\":\"restart\"}").is_err());
    }

    #[test]
    fn defaults_fill_in() {
        let cmd = parse_command("{\"n\":64,\"k\":4,\"q\":8,\"eps\":0.5}").unwrap();
        let Command::Run(req) = cmd else {
            panic!("not a run");
        };
        assert_eq!(req.family, Family::Uniform);
        assert_eq!(req.trials, 1);
        assert_eq!(req.seed, 0);
        assert_eq!(req.rule, Rule::Balanced);
    }

    #[test]
    fn tenant_meta_round_trips_and_validates() {
        let req = sample_request();
        let line = render_request_tenant(&req, "team-a");
        let (cmd, meta) = parse_command_meta(&line).unwrap();
        assert_eq!(cmd, Command::Run(req));
        assert_eq!(meta.tenant.as_deref(), Some("team-a"));
        // The tenant-free parser accepts the same line and drops the
        // envelope.
        assert_eq!(parse_command(&line), Ok(Command::Run(req)));
        // No tenant -> default meta.
        let (_, bare) = parse_command_meta(&render_request(&req)).unwrap();
        assert_eq!(bare, RequestMeta::default());
        // Admin commands carry the envelope too.
        let (cmd, meta) = parse_command_meta("{\"cmd\":\"stats\",\"tenant\":\"ops\"}").unwrap();
        assert_eq!(cmd, Command::Stats);
        assert_eq!(meta.tenant.as_deref(), Some("ops"));
        // Bad tenants are rejected before the config is looked at.
        assert!(parse_command_meta("{\"tenant\":17,\"n\":64}").is_err());
        assert!(parse_command_meta("{\"tenant\":\"\",\"n\":64}").is_err());
        let long = format!("{{\"tenant\":\"{}\",\"n\":64}}", "x".repeat(65));
        assert!(parse_command_meta(&long).is_err());
    }

    #[test]
    fn tenant_shed_line_still_parses_as_overloaded() {
        let line = render_overloaded_tenant("team-b");
        assert_eq!(ReplyLine::parse(&line), Ok(ReplyLine::Overloaded));
        assert!(line.contains("\"scope\":\"tenant\""));
        assert!(line.contains("\"tenant\":\"team-b\""));
    }

    #[test]
    fn family_names_round_trip() {
        for family in Family::ALL {
            assert_eq!(Family::parse(family.name()), Some(family));
            assert!(family.build(64, 0.5).is_ok(), "{family}");
        }
        assert_eq!(Family::parse("hard"), None);
    }
}
