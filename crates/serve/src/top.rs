//! `dut top` — a live text dashboard over the stats admin command.
//!
//! Connects to a running `dut serve`, sends `{"cmd":"stats"}` once per
//! tick, and renders the reply as a compact frame: throughput, shed
//! and queue pressure, cache effectiveness, windowed latency quantiles
//! split by phase, and SLO burn rates. Rendering is a pure function of
//! a parsed [`Stats`] ([`render_frame`]), so the dashboard is testable
//! without a terminal or a server; [`run`] only adds the socket loop
//! and writes frames to any `Write` sink (the `dut` binary passes
//! stdout).

use crate::stats::Stats;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// ANSI "clear screen, cursor home" — prefixed to every frame after
/// the first when `clear` is on, so the dashboard repaints in place.
const CLEAR: &str = "\x1b[2J\x1b[H";

/// Dashboard configuration.
#[derive(Debug, Clone)]
pub struct TopConfig {
    /// Server address to poll.
    pub addr: String,
    /// Delay between polls.
    pub interval: Duration,
    /// Stop after this many frames; `None` polls until the connection
    /// drops. `Some(1)` is the `--once` snapshot mode.
    pub frames: Option<u64>,
    /// Repaint in place with ANSI clear codes (off for `--once` and
    /// for piped output).
    pub clear: bool,
}

impl Default for TopConfig {
    fn default() -> Self {
        TopConfig {
            addr: "127.0.0.1:7878".to_owned(),
            interval: Duration::from_secs(1),
            frames: None,
            clear: true,
        }
    }
}

/// Formats a microsecond quantity with a unit that keeps 3-4
/// significant figures readable (µs below 1ms, ms below 1s, else s).
fn fmt_micros(us: f64) -> String {
    if us < 1_000.0 {
        format!("{us:.0}\u{b5}s")
    } else if us < 1_000_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{:.2}s", us / 1_000_000.0)
    }
}

/// Renders one dashboard frame (multi-line, trailing newline).
#[must_use]
#[allow(clippy::cast_precision_loss)] // display-only µs→s scaling
pub fn render_frame(stats: &Stats, addr: &str) -> String {
    let mut out = String::with_capacity(512);
    let slo = if stats.slo_healthy {
        "SLO ok".to_owned()
    } else {
        let mut what = Vec::new();
        if stats.latency_breach {
            what.push("latency");
        }
        if stats.shed_breach {
            what.push("shed");
        }
        format!("SLO BREACH [{}]", what.join("+"))
    };
    let _ = writeln!(
        out,
        "dut top \u{2014} {addr}   up {:.1}s   window {:.1}s   {slo}",
        stats.uptime_micros as f64 / 1e6,
        stats.window_micros as f64 / 1e6,
    );
    let _ = writeln!(
        out,
        "traffic  {:.1} req/s   {:.2} shed/s   queue depth {}   total {} req / {} shed",
        stats.req_per_sec, stats.shed_per_sec, stats.queue_depth, stats.requests, stats.shed
    );
    let mut tenant_note = String::new();
    for tenant in stats.tenants.iter().take(4) {
        let _ = write!(
            tenant_note,
            "   {} {}r/{}s",
            tenant.name, tenant.requests, tenant.shed
        );
    }
    let _ = writeln!(
        out,
        "serve    {} connections   {} coalesced   {} tenant-shed{tenant_note}",
        stats.connections, stats.coalesced, stats.tenant_shed,
    );
    let _ = writeln!(
        out,
        "cache    hit ratio {:.1}%   testers resident {}   lifetime {} hits / {} misses",
        stats.hit_ratio * 100.0,
        stats.cached_testers,
        stats.cache_hits,
        stats.cache_misses
    );
    let backend_total = stats.backend_per_draw + stats.backend_histogram;
    let _ = writeln!(
        out,
        "backend  {} per-draw / {} histogram ({:.0}% histogram, cost-model resolved)",
        stats.backend_per_draw,
        stats.backend_histogram,
        if backend_total == 0 {
            0.0
        } else {
            stats.backend_histogram as f64 / backend_total as f64 * 100.0
        },
    );
    let _ = writeln!(
        out,
        "latency  p50 {}   p95 {}   p99 {}   (target p99 {})",
        fmt_micros(stats.p50_micros),
        fmt_micros(stats.p95_micros),
        fmt_micros(stats.p99_micros),
        fmt_micros(stats.p99_target_micros as f64),
    );
    let _ = writeln!(
        out,
        "phases   queue-wait p99 {}   calibrate p99 {}   compute p99 {}",
        fmt_micros(stats.queue_wait_p99),
        fmt_micros(stats.calibrate_p99),
        fmt_micros(stats.compute_p99),
    );
    let _ = writeln!(
        out,
        "burn     latency {:.2}/{:.2}   shed {:.2}/{:.2}   (short/long, budget {:.0}% shed)",
        stats.latency_burn_short,
        stats.latency_burn_long,
        stats.shed_burn_short,
        stats.shed_burn_long,
        stats.max_shed_rate * 100.0,
    );
    let _ = writeln!(
        out,
        "abuse    {} malformed   {} reaped   {} budget-closed",
        stats.malformed, stats.reaped, stats.error_budget_closed,
    );
    out
}

/// Fetches one stats reply over a fresh line on an open connection.
fn poll_stats(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) -> Result<Stats, String> {
    writeln!(stream, "{{\"cmd\":\"stats\"}}").map_err(|e| format!("send stats: {e}"))?;
    let mut line = String::new();
    let got = reader
        .read_line(&mut line)
        .map_err(|e| format!("read stats: {e}"))?;
    if got == 0 {
        return Err("server closed the connection".to_owned());
    }
    Stats::parse(line.trim())
}

/// Runs the dashboard loop: poll, render, write, sleep, repeat.
///
/// # Errors
///
/// Returns a message when the server is unreachable, closes the
/// connection, or replies with something that is not a stats line.
pub fn run(config: &TopConfig, out: &mut impl Write) -> Result<(), String> {
    let mut stream = TcpStream::connect(&config.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", config.addr))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("cannot set read timeout: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?,
    );
    let mut rendered: u64 = 0;
    loop {
        let stats = poll_stats(&mut stream, &mut reader)?;
        let frame = render_frame(&stats, &config.addr);
        let prefix = if config.clear && rendered > 0 {
            CLEAR
        } else {
            ""
        };
        write!(out, "{prefix}{frame}").map_err(|e| format!("write frame: {e}"))?;
        out.flush().map_err(|e| format!("flush frame: {e}"))?;
        rendered += 1;
        if let Some(limit) = config.frames {
            if rendered >= limit {
                return Ok(());
            }
        }
        std::thread::sleep(config.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Stats {
        Stats {
            uptime_micros: 12_500_000,
            queue_depth: 2,
            connections: 16,
            cached_testers: 4,
            requests: 1_000,
            shed: 7,
            coalesced: 120,
            tenant_shed: 3,
            cache_hits: 950,
            cache_misses: 50,
            malformed: 13,
            reaped: 2,
            error_budget_closed: 1,
            backend_per_draw: 40,
            backend_histogram: 960,
            window_micros: 10_000_000,
            req_per_sec: 99.5,
            shed_per_sec: 0.25,
            hit_ratio: 0.95,
            p50_micros: 210.0,
            p95_micros: 4_805.0,
            p99_micros: 1_024_000.0,
            queue_wait_p99: 88.0,
            calibrate_p99: 45_000.0,
            compute_p99: 333.0,
            slo_healthy: false,
            latency_breach: true,
            shed_breach: false,
            latency_burn_short: 3.5,
            latency_burn_long: 2.5,
            shed_burn_short: 0.4,
            shed_burn_long: 0.1,
            p99_target_micros: 250_000,
            max_shed_rate: 0.05,
            tenants: vec![crate::stats::TenantStat {
                name: "metered".to_owned(),
                requests: 200,
                shed: 3,
            }],
        }
    }

    #[test]
    fn frame_shows_all_sections() {
        let frame = render_frame(&sample(), "127.0.0.1:7878");
        assert!(frame.contains("dut top"));
        assert!(frame.contains("99.5 req/s"));
        assert!(frame.contains("hit ratio 95.0%"));
        assert!(frame.contains("SLO BREACH [latency]"));
        assert!(frame.contains("queue depth 2"));
        // Unit scaling: µs, ms, and s all appear for these values.
        assert!(frame.contains("p50 210\u{b5}s"));
        assert!(frame.contains("p95 4.8ms"));
        assert!(frame.contains("p99 1.02s"));
        assert!(frame.contains("13 malformed"));
        assert!(frame.contains("backend  40 per-draw / 960 histogram (96% histogram"));
        assert!(frame.contains("serve    16 connections   120 coalesced   3 tenant-shed"));
        assert!(frame.contains("metered 200r/3s"));
        assert_eq!(frame.lines().count(), 9);
    }

    #[test]
    fn healthy_frame_says_so() {
        let mut stats = sample();
        stats.slo_healthy = true;
        stats.latency_breach = false;
        let frame = render_frame(&stats, "x");
        assert!(frame.contains("SLO ok"));
        assert!(!frame.contains("BREACH"));
    }

    #[test]
    fn breach_frame_names_both_budgets() {
        let mut stats = sample();
        stats.shed_breach = true;
        let frame = render_frame(&stats, "x");
        assert!(frame.contains("SLO BREACH [latency+shed]"));
    }
}
