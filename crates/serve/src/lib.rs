//! `dut serve` — a long-lived concurrent uniformity-testing service.
//!
//! Everything the workspace builds elsewhere runs one experiment and
//! exits; this crate keeps the calibrated testers resident. A
//! multi-threaded TCP server accepts newline-delimited JSON requests
//! (`{"n":..,"k":..,"q":..,"eps":..,"rule":..,"seed":..}`), resolves
//! each against a bounded LRU of prepared testers (the balanced rule's
//! Monte-Carlo calibration and the Poisson-threshold memo in
//! `dut_testers::cache` are both amortized across requests), runs the
//! verdict on the histogram fast path, and replies with the verdict,
//! the acceptance estimate with its Wilson interval, whether the
//! tester was cached, and the service time.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** A served verdict must be bit-identical to the
//!    offline run of the same `(n, k, q, ε, rule, input, seed)`.
//!    Calibration randomness is therefore derived from the cache key —
//!    never from the request seed or a global RNG — so a cache hit, a
//!    cache miss, and a fresh offline evaluation all prepare the
//!    identical tester. [`engine::offline_reply`] is that reference
//!    path; the stress tests and `dut loadgen --smoke` hold the server
//!    to it.
//! 2. **Bounded overload.** The dispatch queue holds *requests*, not
//!    connections, and is bounded; beyond the bound the server sheds
//!    the request with an explicit `overloaded` reply (the connection
//!    stays parked) instead of queueing without limit or silently
//!    dropping connections. Per-tenant token buckets shed over-quota
//!    tenants before the queue, and a higher-priority arrival may
//!    evict a queued lower-priority request at the cap.
//! 3. **Observability.** Requests, cache hits/misses, coalesced
//!    batches, shed requests (global and per tenant), parked
//!    connections, queue depth, and per-request phase timings all
//!    land in the [`dut_obs`] registry and are surfaced by
//!    `{"cmd":"stats"}`, `dut top`, and `dut report`.
//!
//! The serving path is request-multiplexed: shard event loops park
//! persistent connections on nonblocking sockets and dispatch framed
//! request lines to the worker pool, which coalesces queued requests
//! sharing a prepared tester into one answer pass over the sharded
//! tester cache. The crate is std-only on the network path:
//! `std::net` sockets and `std::thread` shards/workers, no async
//! runtime.

pub mod cache;
pub mod chaos;
pub mod engine;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod top;
pub mod trace;

pub use chaos::{ChaosConfig, ChaosReport};
pub use engine::Engine;
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use protocol::{Command, Reply, Request};
pub use server::{ServeConfig, ServerHandle, TenantPolicy, TenantQuota};
pub use stats::Stats;
pub use trace::{Trace, TraceConfig};
