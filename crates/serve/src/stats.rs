//! The `{"cmd":"stats"}` reply: cumulative totals, windowed rates and
//! quantiles, and SLO status in one JSON line.
//!
//! Built server-side by [`gather`] from the global metrics registry,
//! the windowed [`SnapshotRing`](dut_obs::window::SnapshotRing), and
//! the configured [`SloConfig`]; parsed client-side by
//! [`Stats::parse`] (the `dut top` dashboard and the loadgen's
//! `--stats-check` both consume it). All numbers cross the wire
//! through shortest-round-trip `f64` formatting, so a parsed reply
//! reproduces the server's values exactly.

use dut_obs::json::{self, Json};
use dut_obs::metrics::{Counter, Gauge, HistogramId, Snapshot};
use dut_obs::slo::{self, SloConfig};
use std::fmt::Write as _;

/// Short burn-rate / quantile window: the "still happening" signal.
pub const SHORT_WINDOW_MICROS: u64 = 10 * 1_000_000;
/// Long burn-rate window: the "sustained, not a blip" signal.
pub const LONG_WINDOW_MICROS: u64 = 60 * 1_000_000;

/// One tenant's row in the stats reply.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStat {
    /// Tenant id as it appears on the wire.
    pub name: String,
    /// Requests this tenant had admitted since boot.
    pub requests: u64,
    /// Requests shed at this tenant's quota since boot.
    pub shed: u64,
}

/// One stats reply, flattened for easy consumption.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Microseconds since the server's recorder epoch.
    pub uptime_micros: u64,
    /// Requests waiting in the dispatch queue right now.
    pub queue_depth: u64,
    /// Persistent connections currently parked on the shard loops.
    pub connections: u64,
    /// Prepared testers resident in the LRU.
    pub cached_testers: u64,
    /// Cumulative requests answered since boot.
    pub requests: u64,
    /// Cumulative requests shed since boot (global cap + tenant
    /// quotas combined).
    pub shed: u64,
    /// Cumulative requests answered as followers of a coalesced
    /// batch (one prepared tester resolved for the whole batch).
    pub coalesced: u64,
    /// Cumulative requests shed by per-tenant admission (a subset of
    /// `shed`).
    pub tenant_shed: u64,
    /// Cumulative tester-cache hits since boot.
    pub cache_hits: u64,
    /// Cumulative tester-cache misses since boot.
    pub cache_misses: u64,
    /// Cumulative malformed lines (unparseable or over the byte cap).
    pub malformed: u64,
    /// Cumulative connections reaped for idleness / slowloris drips.
    pub reaped: u64,
    /// Cumulative connections closed for exhausting the error budget.
    pub error_budget_closed: u64,
    /// Cumulative requests whose resolved backend was the per-draw
    /// engine (the cost model's pick for their `(n, q)`).
    pub backend_per_draw: u64,
    /// Cumulative requests whose resolved backend was the histogram
    /// engine.
    pub backend_histogram: u64,
    /// Actual span of the short window, microseconds.
    pub window_micros: u64,
    /// Requests per second over the short window.
    pub req_per_sec: f64,
    /// Sheds per second over the short window.
    pub shed_per_sec: f64,
    /// Cache hit ratio over the short window (0 when no lookups).
    pub hit_ratio: f64,
    /// Windowed request-latency quantiles, microseconds.
    pub p50_micros: f64,
    /// 95th percentile over the short window.
    pub p95_micros: f64,
    /// 99th percentile over the short window.
    pub p99_micros: f64,
    /// Windowed p99 of the queue-wait phase.
    pub queue_wait_p99: f64,
    /// Windowed p99 of the calibrate phase (miss builds).
    pub calibrate_p99: f64,
    /// Windowed p99 of the compute phase.
    pub compute_p99: f64,
    /// No SLO currently breached.
    pub slo_healthy: bool,
    /// Latency burn exceeds threshold in both windows.
    pub latency_breach: bool,
    /// Shed burn exceeds threshold in both windows.
    pub shed_breach: bool,
    /// Latency-budget burn over the short window.
    pub latency_burn_short: f64,
    /// Latency-budget burn over the long window.
    pub latency_burn_long: f64,
    /// Shed-budget burn over the short window.
    pub shed_burn_short: f64,
    /// Shed-budget burn over the long window.
    pub shed_burn_long: f64,
    /// Configured p99 latency target, microseconds.
    pub p99_target_micros: u64,
    /// Configured shed-rate budget.
    pub max_shed_rate: f64,
    /// Per-tenant admission rows (empty when tenancy is unused; the
    /// wire object is omitted entirely in that case).
    pub tenants: Vec<TenantStat>,
}

fn hist_quantile(delta: &Snapshot, id: HistogramId, p: f64) -> f64 {
    delta.histogram(id).map_or(0.0, |h| h.quantile(p))
}

/// Assembles a stats reply from the global registry and windowed
/// ring. Ticks the ring first so an idle server still rolls its
/// epochs forward (otherwise windows would only advance under load).
#[must_use]
pub fn gather(cached_testers: u64, slo_config: &SloConfig) -> Stats {
    let registry = dut_obs::metrics::global();
    let now = dut_obs::global().now_micros();
    let ring = dut_obs::window::global();
    ring.maybe_capture(registry, now);
    let short = ring.window(registry, now, SHORT_WINDOW_MICROS);
    let long = ring.window(registry, now, LONG_WINDOW_MICROS);
    let status = slo::evaluate(&short.delta, &long.delta, slo_config);
    let hits = short.delta.counter(Counter::ServeCacheHits);
    let misses = short.delta.counter(Counter::ServeCacheMisses);
    #[allow(clippy::cast_precision_loss)]
    let hit_ratio = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    Stats {
        uptime_micros: now,
        queue_depth: registry.gauge(Gauge::ServeQueueDepth),
        connections: registry.gauge(Gauge::ServeConnections),
        cached_testers,
        requests: registry.counter(Counter::ServeRequests),
        shed: registry.counter(Counter::ServeShed),
        coalesced: registry.counter(Counter::ServeCoalesced),
        tenant_shed: registry.counter(Counter::ServeTenantShed),
        cache_hits: registry.counter(Counter::ServeCacheHits),
        cache_misses: registry.counter(Counter::ServeCacheMisses),
        malformed: registry.counter(Counter::ServeMalformed),
        reaped: registry.counter(Counter::ServeReaped),
        error_budget_closed: registry.counter(Counter::ServeErrorBudget),
        backend_per_draw: registry.counter(Counter::ServeBackendPerDraw),
        backend_histogram: registry.counter(Counter::ServeBackendHistogram),
        window_micros: short.span_micros,
        req_per_sec: short.rate_per_sec(Counter::ServeRequests),
        shed_per_sec: short.rate_per_sec(Counter::ServeShed),
        hit_ratio,
        p50_micros: hist_quantile(&short.delta, HistogramId::RequestMicros, 0.5),
        p95_micros: hist_quantile(&short.delta, HistogramId::RequestMicros, 0.95),
        p99_micros: hist_quantile(&short.delta, HistogramId::RequestMicros, 0.99),
        queue_wait_p99: hist_quantile(&short.delta, HistogramId::QueueWaitMicros, 0.99),
        calibrate_p99: hist_quantile(&short.delta, HistogramId::CalibrateMicros, 0.99),
        compute_p99: hist_quantile(&short.delta, HistogramId::ComputeMicros, 0.99),
        slo_healthy: status.healthy(),
        latency_breach: status.latency_breach,
        shed_breach: status.shed_breach,
        latency_burn_short: status.short.latency_burn,
        latency_burn_long: status.long.latency_burn,
        shed_burn_short: status.short.shed_burn,
        shed_burn_long: status.long.shed_burn,
        p99_target_micros: slo_config.p99_target_micros,
        max_shed_rate: slo_config.max_shed_rate,
        // The tenant table lives in the server, not the registry; the
        // caller attaches its snapshot.
        tenants: Vec::new(),
    }
}

/// Renders the `{"cmd":"flight"}` reply: the retained event count and
/// the recorder's ring as a JSON array, one line total.
#[must_use]
pub fn render_flight(recorder: &dut_obs::FlightRecorder) -> String {
    let dump = recorder.dump_json();
    let mut out = String::with_capacity(dump.len() + 32);
    let _ = write!(out, "{{\"flight\":{dump},\"retained\":{}}}", recorder.len());
    out
}

impl Stats {
    /// Renders the wire line (no trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"stats\":{{\"uptime_us\":{},\"queue_depth\":{},\"connections\":{},\"cached_testers\":{}",
            self.uptime_micros, self.queue_depth, self.connections, self.cached_testers
        );
        let _ = write!(
            out,
            ",\"cumulative\":{{\"requests\":{},\"shed\":{},\"coalesced\":{},\"tenant_shed\":{},\"cache_hits\":{},\"cache_misses\":{},\"malformed\":{},\"reaped\":{},\"error_budget_closed\":{},\"backend_per_draw\":{},\"backend_histogram\":{}}}",
            self.requests, self.shed, self.coalesced, self.tenant_shed,
            self.cache_hits, self.cache_misses,
            self.malformed, self.reaped, self.error_budget_closed,
            self.backend_per_draw, self.backend_histogram
        );
        let _ = write!(out, ",\"window\":{{\"span_us\":{}", self.window_micros);
        let field = |out: &mut String, key: &str, value: f64| {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            json::write_f64(out, value);
        };
        field(&mut out, "req_per_sec", self.req_per_sec);
        field(&mut out, "shed_per_sec", self.shed_per_sec);
        field(&mut out, "hit_ratio", self.hit_ratio);
        field(&mut out, "p50_us", self.p50_micros);
        field(&mut out, "p95_us", self.p95_micros);
        field(&mut out, "p99_us", self.p99_micros);
        field(&mut out, "queue_wait_p99_us", self.queue_wait_p99);
        field(&mut out, "calibrate_p99_us", self.calibrate_p99);
        field(&mut out, "compute_p99_us", self.compute_p99);
        out.push('}');
        let _ = write!(
            out,
            ",\"slo\":{{\"healthy\":{},\"latency_breach\":{},\"shed_breach\":{}",
            self.slo_healthy, self.latency_breach, self.shed_breach
        );
        field(&mut out, "latency_burn_short", self.latency_burn_short);
        field(&mut out, "latency_burn_long", self.latency_burn_long);
        field(&mut out, "shed_burn_short", self.shed_burn_short);
        field(&mut out, "shed_burn_long", self.shed_burn_long);
        let _ = write!(out, ",\"p99_target_us\":{}", self.p99_target_micros);
        field(&mut out, "max_shed_rate", self.max_shed_rate);
        out.push('}');
        if !self.tenants.is_empty() {
            out.push_str(",\"tenants\":{");
            for (index, tenant) in self.tenants.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                json::write_escaped(&mut out, &tenant.name);
                let _ = write!(
                    out,
                    ":{{\"requests\":{},\"shed\":{}}}",
                    tenant.requests, tenant.shed
                );
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Parses a stats wire line.
    ///
    /// # Errors
    ///
    /// Returns a message when the line is not a stats reply.
    pub fn parse(line: &str) -> Result<Stats, String> {
        let doc = json::parse(line)?;
        let stats = doc.get("stats").ok_or("missing `stats` object")?;
        let u = |node: &Json, key: &str| node.get(key).and_then(Json::as_u64).unwrap_or(0);
        let f = |node: &Json, key: &str| node.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let b = |node: &Json, key: &str| node.get(key) == Some(&Json::Bool(true));
        let cumulative = stats.get("cumulative").ok_or("missing `cumulative`")?;
        let window = stats.get("window").ok_or("missing `window`")?;
        let slo = stats.get("slo").ok_or("missing `slo`")?;
        let tenants = stats
            .get("tenants")
            .and_then(Json::as_obj)
            .map(|rows| {
                rows.iter()
                    .map(|(name, row)| TenantStat {
                        name: name.clone(),
                        requests: u(row, "requests"),
                        shed: u(row, "shed"),
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(Stats {
            uptime_micros: u(stats, "uptime_us"),
            queue_depth: u(stats, "queue_depth"),
            connections: u(stats, "connections"),
            cached_testers: u(stats, "cached_testers"),
            requests: u(cumulative, "requests"),
            shed: u(cumulative, "shed"),
            coalesced: u(cumulative, "coalesced"),
            tenant_shed: u(cumulative, "tenant_shed"),
            cache_hits: u(cumulative, "cache_hits"),
            cache_misses: u(cumulative, "cache_misses"),
            // `unwrap_or(0)` keeps stats lines from older servers
            // parseable: the hardening counters simply read zero.
            malformed: u(cumulative, "malformed"),
            reaped: u(cumulative, "reaped"),
            error_budget_closed: u(cumulative, "error_budget_closed"),
            backend_per_draw: u(cumulative, "backend_per_draw"),
            backend_histogram: u(cumulative, "backend_histogram"),
            window_micros: u(window, "span_us"),
            req_per_sec: f(window, "req_per_sec"),
            shed_per_sec: f(window, "shed_per_sec"),
            hit_ratio: f(window, "hit_ratio"),
            p50_micros: f(window, "p50_us"),
            p95_micros: f(window, "p95_us"),
            p99_micros: f(window, "p99_us"),
            queue_wait_p99: f(window, "queue_wait_p99_us"),
            calibrate_p99: f(window, "calibrate_p99_us"),
            compute_p99: f(window, "compute_p99_us"),
            slo_healthy: b(slo, "healthy"),
            latency_breach: b(slo, "latency_breach"),
            shed_breach: b(slo, "shed_breach"),
            latency_burn_short: f(slo, "latency_burn_short"),
            latency_burn_long: f(slo, "latency_burn_long"),
            shed_burn_short: f(slo, "shed_burn_short"),
            shed_burn_long: f(slo, "shed_burn_long"),
            p99_target_micros: u(slo, "p99_target_us"),
            max_shed_rate: f(slo, "max_shed_rate"),
            tenants,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Stats {
        Stats {
            uptime_micros: 12_345_678,
            queue_depth: 3,
            connections: 17,
            cached_testers: 4,
            requests: 1_000,
            shed: 7,
            coalesced: 120,
            tenant_shed: 2,
            cache_hits: 950,
            cache_misses: 50,
            malformed: 11,
            reaped: 2,
            error_budget_closed: 1,
            backend_per_draw: 40,
            backend_histogram: 960,
            window_micros: 10_000_000,
            req_per_sec: 99.5,
            shed_per_sec: 0.25,
            hit_ratio: 0.95,
            p50_micros: 210.0,
            p95_micros: 480.5,
            p99_micros: 1_024.0,
            queue_wait_p99: 88.0,
            calibrate_p99: 45_000.0,
            compute_p99: 333.0,
            slo_healthy: false,
            latency_breach: true,
            shed_breach: false,
            latency_burn_short: 3.5,
            latency_burn_long: 2.5,
            shed_burn_short: 0.4,
            shed_burn_long: 0.1,
            p99_target_micros: 250_000,
            max_shed_rate: 0.05,
            tenants: Vec::new(),
        }
    }

    #[test]
    fn stats_round_trip_exactly() {
        let stats = sample();
        let line = stats.render();
        let back = Stats::parse(&line).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn render_is_one_json_object() {
        let line = sample().render();
        assert!(!line.contains('\n'));
        let doc = json::parse(&line).unwrap();
        assert_eq!(
            doc.get("stats")
                .and_then(|s| s.get("cumulative"))
                .and_then(|c| c.get("requests"))
                .and_then(Json::as_u64),
            Some(1_000)
        );
    }

    #[test]
    fn tenants_round_trip_and_are_omitted_when_empty() {
        let mut stats = sample();
        assert!(
            !stats.render().contains("\"tenants\""),
            "no tenants → no wire object"
        );
        stats.tenants = vec![
            TenantStat {
                name: "alpha".to_owned(),
                requests: 40,
                shed: 0,
            },
            TenantStat {
                name: "metered".to_owned(),
                requests: 10,
                shed: 5,
            },
        ];
        let line = stats.render();
        let back = Stats::parse(&line).unwrap();
        assert_eq!(back, stats);
        let doc = json::parse(&line).unwrap();
        assert_eq!(
            doc.get("stats")
                .and_then(|s| s.get("tenants"))
                .and_then(|t| t.get("metered"))
                .and_then(|m| m.get("shed"))
                .and_then(Json::as_u64),
            Some(5)
        );
    }

    #[test]
    fn parse_rejects_non_stats_lines() {
        assert!(Stats::parse("{\"verdict\":\"accept\"}").is_err());
        assert!(Stats::parse("nope").is_err());
    }

    #[test]
    fn gather_reads_the_global_registry() {
        let registry = dut_obs::metrics::global();
        registry.incr(Counter::ServeRequests);
        let stats = gather(2, &SloConfig::default());
        assert!(stats.requests >= 1);
        assert_eq!(stats.cached_testers, 2);
        assert_eq!(stats.p99_target_micros, 250_000);
        // A render/parse of live data round-trips too.
        assert_eq!(Stats::parse(&stats.render()).unwrap(), stats);
    }
}
