//! Request evaluation: cache resolution, trial runs, reply assembly.
//!
//! The engine is deliberately separable from the TCP server — the
//! load generator instantiates a second engine locally and requires
//! its replies to match the served ones bit-for-bit, which is the
//! strongest cheap check that caching never changes answers.
//!
//! # Determinism contract
//!
//! Preparing a tester consumes randomness (the balanced rule
//! calibrates its referee threshold by Monte Carlo). If that
//! randomness came from the request's `seed`, the first request to
//! touch a configuration would imprint its seed on every later cache
//! hit and verdicts would depend on arrival order. Instead the
//! calibration RNG is seeded from the *cache key* ([`CacheKey::
//! calibration_seed`]), making the prepared tester a pure function of
//! the configuration. Trial randomness then comes from
//! `derive_seed(request.seed, trial_index)` exactly as the offline
//! runner derives it.

use crate::cache::ShardedTesterCache;
use crate::protocol::{Family, Reply, Request};
use dut_core::{PreparedUniformityTester, Rule, UniformityTester};
use dut_obs::metrics::{Counter, HistogramId};
use dut_probability::{DualSampler, SampleBackend};
use dut_simnet::Verdict;
use dut_stats::seed::derive_seed2;
use dut_stats::{seed::derive_seed, SuccessEstimate};
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The z-score of the Wilson interval in replies (95% two-sided).
pub const WILSON_Z: f64 = 1.96;

/// A failed tester build, classified for the cache.
///
/// * **Permanent** errors are deterministic functions of the cache
///   key (an unsatisfiable configuration): re-validating on every
///   request would let a hostile client bypass the cache, so they are
///   cached like successes.
/// * **Transient** errors are not properties of the key — a build
///   that panicked, or a future backend's resource exhaustion. The
///   cache evicts them immediately after serving, so one bad
///   calibration never pins a configuration to failure forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError {
    /// The message sent back to the client as `{"error":...}`.
    pub message: String,
    /// Whether the cache should retry this key on the next request.
    pub transient: bool,
}

impl BuildError {
    /// A deterministic validation failure (cached with the key).
    #[must_use]
    pub fn permanent(message: impl Into<String>) -> BuildError {
        BuildError {
            message: message.into(),
            transient: false,
        }
    }

    /// A retryable failure (evicted from the cache after serving).
    #[must_use]
    pub fn transient(message: impl Into<String>) -> BuildError {
        BuildError {
            message: message.into(),
            transient: true,
        }
    }
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Identity of a prepared tester: every field that influences
/// preparation or sampling. Epsilon enters by IEEE-754 bit pattern —
/// two requests either share a tester exactly or not at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Domain size.
    pub n: usize,
    /// Player count.
    pub k: usize,
    /// Samples per player.
    pub q: usize,
    /// `ε` bit pattern.
    pub eps_bits: u64,
    /// Rule discriminant (0=and, 1=threshold, 2=balanced, 3=centralized).
    pub rule_tag: u8,
    /// Threshold `T` for the threshold rule, 0 otherwise.
    pub rule_t: usize,
    /// Input family.
    pub family: Family,
    /// Gauge code of the *resolved* sampling backend the cost model
    /// picked for this `(n, q)` (1 = per-draw, 2 = histogram; never 3).
    /// Part of the key so the bit-identity contract is explicit about
    /// which engine produced a cached answer: if the cost model's
    /// resolution ever changed mid-process, the old entry could not be
    /// silently served for the new choice.
    pub backend_code: u64,
}

impl CacheKey {
    /// The key for a request.
    #[must_use]
    pub fn of(req: &Request) -> CacheKey {
        let (rule_tag, rule_t) = match req.rule {
            Rule::And => (0, 0),
            Rule::TThreshold { t } => (1, t),
            Rule::Balanced => (2, 0),
            Rule::Centralized => (3, 0),
        };
        CacheKey {
            n: req.n,
            k: req.k,
            q: req.q,
            eps_bits: req.eps.to_bits(),
            rule_tag,
            rule_t,
            family: req.family,
            backend_code: SampleBackend::Auto
                .resolve(req.n, req.q as u64)
                .gauge_code(),
        }
    }

    /// The concrete engine recorded in [`CacheKey::backend_code`].
    #[must_use]
    pub fn backend(&self) -> SampleBackend {
        if self.backend_code == SampleBackend::PerDraw.gauge_code() {
            SampleBackend::PerDraw
        } else {
            SampleBackend::Histogram
        }
    }

    /// The rule this key encodes.
    #[must_use]
    pub fn rule(&self) -> Rule {
        match self.rule_tag {
            0 => Rule::And,
            1 => Rule::TThreshold { t: self.rule_t },
            2 => Rule::Balanced,
            _ => Rule::Centralized,
        }
    }

    /// Seed for the preparation/calibration RNG: a pure function of
    /// the key, so every build of this configuration — cached, fresh,
    /// offline — prepares the bit-identical tester.
    #[must_use]
    pub fn calibration_seed(&self) -> u64 {
        // Domain-separation constant: ASCII "dutserve" truncated.
        let mut s = derive_seed2(0x6475_7473_6572_7665, self.n as u64, self.k as u64);
        s = derive_seed2(s, self.q as u64, self.eps_bits);
        s = derive_seed2(
            s,
            u64::from(self.rule_tag) << 32 | self.rule_t as u64,
            self.family as u64,
        );
        derive_seed2(s, self.backend_code, 0)
    }
}

/// A tester prepared for one [`CacheKey`], plus its input sampler.
#[derive(Debug)]
pub struct PreparedEntry {
    /// The calibrated tester.
    pub prepared: PreparedUniformityTester,
    /// Dual sampler for the key's input family.
    pub sampler: DualSampler,
    /// The resolved sampling engine every trial for this key runs on
    /// (the cost model's pick for the key's `(n, q)`; never `Auto`).
    pub backend: SampleBackend,
}

/// Builds the entry for a key from scratch (the cache-miss path and
/// the offline reference path both land here).
///
/// # Errors
///
/// Returns the family or tester-builder validation message as a
/// permanent [`BuildError`].
pub fn build_entry(key: &CacheKey) -> Result<Arc<PreparedEntry>, BuildError> {
    let eps = f64::from_bits(key.eps_bits);
    // Builder first: it validates n, k, ε before the family
    // constructors (which assert rather than return errors) run.
    let tester = UniformityTester::builder()
        .domain_size(key.n)
        .players(key.k)
        .epsilon(eps)
        .rule(key.rule())
        .build()
        .map_err(|e| BuildError::permanent(e.to_string()))?;
    let distribution = key
        .family
        .build(key.n, eps)
        .map_err(BuildError::permanent)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(key.calibration_seed());
    let backend = key.backend();
    let prepared = tester.prepare_with_backend(key.q, backend, &mut rng);
    Ok(Arc::new(PreparedEntry {
        prepared,
        sampler: distribution.dual_sampler(),
        backend,
    }))
}

/// [`build_entry`] with a panic boundary: a build that panics becomes
/// a *transient* [`BuildError`] instead of unwinding through the
/// worker (killing it) or wedging the entry's single-flight cell.
/// Every caught panic increments `serve_panics_caught`.
pub fn build_entry_caught(key: &CacheKey) -> Result<Arc<PreparedEntry>, BuildError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| build_entry(key))).unwrap_or_else(
        |panic| {
            dut_obs::metrics::global().incr(Counter::ServePanicsCaught);
            Err(BuildError::transient(format!(
                "internal: tester build panicked: {}",
                panic_message(&panic)
            )))
        },
    )
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Runs the request's trials against a prepared entry on the entry's
/// resolved backend (the cost model's pick for the key — this used to
/// hardwire the histogram engine, paying up to 3x on small-q/large-n
/// configurations where per-draw wins). Trial `i` uses
/// `derive_seed(req.seed, i)`; the reply verdict is trial 0's.
fn run_trials(entry: &PreparedEntry, req: &Request) -> (Verdict, SuccessEstimate) {
    let mut accepts = 0u64;
    let mut first = Verdict::Reject;
    for i in 0..req.trials {
        let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(req.seed, i));
        let verdict = entry
            .prepared
            .run_dual(&entry.sampler, entry.backend, &mut rng);
        if i == 0 {
            first = verdict;
        }
        if verdict.is_accept() {
            accepts += 1;
        }
    }
    (first, SuccessEstimate::new(accepts, req.trials))
}

fn assemble(
    verdict: Verdict,
    estimate: &SuccessEstimate,
    cache_hit: bool,
    start: Instant,
    rid: u64,
) -> Reply {
    Reply {
        verdict,
        p_hat: estimate.point(),
        wilson_lo: estimate.wilson_lower(WILSON_Z),
        wilson_hi: estimate.wilson_upper(WILSON_Z),
        cache_hit,
        micros: u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
        rid,
    }
}

/// The reference path: evaluate a request with no cache at all.
/// Identical verdict law to [`Engine::handle`] by construction; the
/// stress tests and `dut loadgen --smoke` compare served replies
/// against this. (`micros` and `cache_hit` will naturally differ —
/// agreement is on `verdict`, `p_hat`, and the Wilson bounds.)
///
/// # Errors
///
/// Same conditions as [`build_entry`].
pub fn offline_reply(req: &Request) -> Result<Reply, String> {
    let start = Instant::now();
    let entry = build_entry(&CacheKey::of(req)).map_err(|e| e.message)?;
    let (verdict, estimate) = run_trials(&entry, req);
    Ok(assemble(verdict, &estimate, false, start, 0))
}

/// Default trace sampling rate: one request in this many emits a
/// `serve_trace` event at normal (non-verbose) level, so a sink sees
/// a steady per-request sample under heavy traffic without recording
/// every request.
pub const DEFAULT_TRACE_SAMPLE: u64 = 64;

/// Default shard count for the prepared-tester cache: enough to keep
/// unrelated keys off one mutex at the request-level scheduling rates
/// the shard loops sustain, small enough that tiny `cache_cap`
/// settings still get sensible per-shard capacity.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// One queued request as the dispatch queue hands it to a worker: the
/// parsed request plus how long it sat in the queue (per *request*,
/// measured parse-to-pickup — the connection's lifetime never enters).
#[derive(Debug, Clone, Copy)]
pub struct QueuedRequest {
    /// The parsed request.
    pub req: Request,
    /// Microseconds between enqueue and worker pickup.
    pub queue_wait_micros: u64,
}

/// A request evaluator with a sharded bounded LRU of prepared testers.
#[derive(Debug)]
pub struct Engine {
    cache: ShardedTesterCache,
    trace_sample: u64,
    next_rid: AtomicU64,
}

impl Engine {
    /// Creates an engine whose cache holds at most `cache_cap`
    /// prepared testers (clamped to at least 1) across
    /// [`DEFAULT_CACHE_SHARDS`] shards, tracing one request in
    /// [`DEFAULT_TRACE_SAMPLE`].
    #[must_use]
    pub fn new(cache_cap: usize) -> Engine {
        Engine::with_trace_sample(cache_cap, DEFAULT_TRACE_SAMPLE)
    }

    /// Like [`Engine::new`] with an explicit sampling rate: one
    /// request in `trace_sample` emits a `serve_trace` event
    /// (0 disables sampled traces entirely).
    #[must_use]
    pub fn with_trace_sample(cache_cap: usize, trace_sample: u64) -> Engine {
        Engine::with_options(cache_cap, trace_sample, DEFAULT_CACHE_SHARDS)
    }

    /// Fully explicit constructor: cache capacity, trace sampling
    /// rate, and how many independent shards the tester cache splits
    /// into (clamped to at least 1; 1 recovers the single-mutex
    /// behavior).
    #[must_use]
    pub fn with_options(cache_cap: usize, trace_sample: u64, cache_shards: usize) -> Engine {
        Engine {
            cache: ShardedTesterCache::new(cache_cap, cache_shards),
            trace_sample,
            next_rid: AtomicU64::new(0),
        }
    }

    /// Number of prepared testers currently resident.
    #[must_use]
    pub fn cached_testers(&self) -> usize {
        self.cache.len()
    }

    /// Evaluates one request; see [`Engine::handle_queued`] (this is
    /// the zero-queue-wait form used by tests and the offline
    /// verifier).
    ///
    /// # Errors
    ///
    /// Returns the validation message for unsatisfiable
    /// configurations (sent back to the client as `{"error":...}`).
    pub fn handle(&self, req: &Request) -> Result<Reply, String> {
        self.handle_queued(req, 0)
    }

    /// Evaluates one request: resolve the tester (cache or build),
    /// run the trials on the key's resolved backend (the cost model's
    /// per-`(n, q)` engine pick), assemble the reply.
    /// Every call increments `serve_requests` and exactly one of
    /// `serve_cache_hits` / `serve_cache_misses`, records the service
    /// time in `request_micros` and the per-phase times in
    /// `calibrate_micros` (miss builds only) and `compute_micros`,
    /// assigns the reply a process-unique `rid`, and ticks the
    /// windowed-metrics ring. `queue_wait_micros` is how long the
    /// connection waited for a worker (already recorded in the
    /// `queue_wait_micros` histogram by the server; threaded through
    /// here so sampled traces show the full queue → calibrate →
    /// compute breakdown).
    ///
    /// # Errors
    ///
    /// Returns the validation message for unsatisfiable
    /// configurations (sent back to the client as `{"error":...}`).
    pub fn handle_queued(&self, req: &Request, queue_wait_micros: u64) -> Result<Reply, String> {
        let one = [QueuedRequest {
            req: *req,
            queue_wait_micros,
        }];
        self.handle_batch(&one)
            .pop()
            .unwrap_or_else(|| Err("internal: empty batch result".to_owned()))
    }

    /// Evaluates a coalesced batch: every request in `batch` shares
    /// one [`CacheKey`] (the dispatch queue groups them), so the
    /// prepared tester is resolved **once** — the batch leader takes
    /// the cache path (hit or miss, `calibrate_micros` observed inside
    /// the build) and every follower reuses the resolved entry
    /// without touching the cache lock. Followers count as cache hits
    /// (the single-flight rule: shared work is a hit, not a repeat)
    /// and additionally tick `serve_coalesced`, so
    /// `hits + misses == requests` stays exact and the coalescing
    /// win is visible on its own counter.
    ///
    /// Trials still run per request with the request's own seed, so
    /// coalescing never changes an answer: each reply is bit-identical
    /// to [`offline_reply`] for its request.
    ///
    /// Results align index-for-index with `batch`; an unsatisfiable
    /// configuration yields `Err(message)` for every member.
    #[must_use]
    pub fn handle_batch(&self, batch: &[QueuedRequest]) -> Vec<Result<Reply, String>> {
        let Some(leader) = batch.first() else {
            return Vec::new();
        };
        let start = Instant::now();
        let key = CacheKey::of(&leader.req);
        let registry = dut_obs::metrics::global();
        let mut calibrate_micros = 0u64;
        let (entry, leader_hit) = self.cache.get_or_build(&key, |k| {
            let build_start = Instant::now();
            let built = build_entry_caught(k);
            calibrate_micros = u64::try_from(build_start.elapsed().as_micros()).unwrap_or(u64::MAX);
            registry.observe(HistogramId::CalibrateMicros, calibrate_micros);
            built
        });
        let mut replies = Vec::with_capacity(batch.len());
        for (index, item) in batch.iter().enumerate() {
            let follower = index > 0;
            debug_assert_eq!(CacheKey::of(&item.req), key, "batch shares one key");
            let rid = self.next_rid.fetch_add(1, Ordering::Relaxed) + 1;
            registry.incr(Counter::ServeRequests);
            let cache_hit = leader_hit || follower;
            registry.incr(if cache_hit {
                Counter::ServeCacheHits
            } else {
                Counter::ServeCacheMisses
            });
            if follower {
                registry.incr(Counter::ServeCoalesced);
            }
            let entry = match &entry {
                Ok(entry) => entry,
                Err(e) => {
                    replies.push(Err(e.message.clone()));
                    continue;
                }
            };
            registry.incr(match entry.backend {
                SampleBackend::PerDraw => Counter::ServeBackendPerDraw,
                SampleBackend::Histogram | SampleBackend::Auto => Counter::ServeBackendHistogram,
            });
            let compute_start = Instant::now();
            let (verdict, estimate) = run_trials(entry, &item.req);
            let compute_micros =
                u64::try_from(compute_start.elapsed().as_micros()).unwrap_or(u64::MAX);
            registry.observe(HistogramId::ComputeMicros, compute_micros);
            let reply = assemble(verdict, &estimate, cache_hit, start, rid);
            registry.observe(HistogramId::RequestMicros, reply.micros);
            // Tick the windowed-metrics ring; at most one snapshot per
            // epoch actually captures, so this is a relaxed load +
            // compare on the hot path.
            dut_obs::window::global().maybe_capture(registry, dut_obs::global().now_micros());
            if self.trace_sample > 0 && rid.is_multiple_of(self.trace_sample) {
                dut_obs::global().emit_with(|| {
                    dut_obs::Event::new("serve_trace")
                        .with("rid", rid)
                        .with("queue_us", item.queue_wait_micros)
                        .with("calibrate_us", if follower { 0 } else { calibrate_micros })
                        .with("compute_us", compute_micros)
                        .with("total_us", reply.micros)
                        .with("cache", if cache_hit { "hit" } else { "miss" })
                        .with("batch", batch.len())
                        .with("backend", entry.backend.name())
                        .with("verdict", verdict.to_string())
                });
            }
            dut_obs::global().emit_verbose_with(|| {
                dut_obs::Event::new("serve_request")
                    .with("rid", rid)
                    .with("n", item.req.n)
                    .with("k", item.req.k)
                    .with("q", item.req.q)
                    .with("rule", crate::protocol::rule_wire_name(item.req.rule))
                    .with("samples", item.req.family.name())
                    .with("seed", item.req.seed)
                    .with("trials", item.req.trials)
                    .with("verdict", verdict.to_string())
                    .with("cache", if cache_hit { "hit" } else { "miss" })
                    .with("backend", entry.backend.name())
                    .with("micros", reply.micros)
            });
            replies.push(Ok(reply));
        }
        replies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Family;

    fn request(seed: u64) -> Request {
        Request {
            n: 128,
            k: 8,
            q: 10,
            eps: 0.5,
            rule: Rule::Balanced,
            family: Family::Uniform,
            seed,
            trials: 4,
        }
    }

    #[test]
    fn served_replies_match_offline_bit_for_bit() {
        let engine = Engine::new(4);
        for seed in [1u64, 2, 3] {
            let req = request(seed);
            let served = engine.handle(&req).unwrap();
            let offline = offline_reply(&req).unwrap();
            assert_eq!(served.verdict, offline.verdict, "seed {seed}");
            assert_eq!(served.p_hat.to_bits(), offline.p_hat.to_bits());
            assert_eq!(served.wilson_lo.to_bits(), offline.wilson_lo.to_bits());
            assert_eq!(served.wilson_hi.to_bits(), offline.wilson_hi.to_bits());
        }
    }

    #[test]
    fn rids_are_unique_and_increasing() {
        let engine = Engine::new(4);
        let a = engine.handle(&request(1)).unwrap();
        let b = engine.handle(&request(2)).unwrap();
        assert!(a.rid > 0, "served replies carry a nonzero rid");
        assert_eq!(b.rid, a.rid + 1);
        assert_eq!(offline_reply(&request(1)).unwrap().rid, 0);
    }

    #[test]
    fn phase_histograms_move_on_handle() {
        let registry = dut_obs::metrics::global();
        let calibrate_before = registry.histogram(HistogramId::CalibrateMicros).count();
        let compute_before = registry.histogram(HistogramId::ComputeMicros).count();
        let engine = Engine::new(4);
        let mut req = request(77);
        req.n = 96; // distinct config → guaranteed cache miss
        engine.handle(&req).unwrap();
        engine.handle(&req).unwrap();
        // The registry is process-global and other tests run in
        // parallel, so assert growth, not exact counts: one miss →
        // at least one calibrate observation, two handles → at least
        // two computes.
        assert!(registry.histogram(HistogramId::CalibrateMicros).count() > calibrate_before);
        assert!(registry.histogram(HistogramId::ComputeMicros).count() >= compute_before + 2);
    }

    #[test]
    fn cache_hit_reported_on_second_request() {
        let engine = Engine::new(4);
        let first = engine.handle(&request(9)).unwrap();
        let second = engine.handle(&request(10)).unwrap();
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(engine.cached_testers(), 1);
    }

    #[test]
    fn hit_order_does_not_change_verdicts() {
        // Same configuration through two engines with opposite arrival
        // orders: verdicts must agree because calibration randomness
        // is key-derived, not request-derived.
        let a = Engine::new(4);
        let b = Engine::new(4);
        let r1 = request(100);
        let r2 = request(200);
        let a1 = a.handle(&r1).unwrap();
        let a2 = a.handle(&r2).unwrap();
        let b2 = b.handle(&r2).unwrap();
        let b1 = b.handle(&r1).unwrap();
        assert_eq!(a1.verdict, b1.verdict);
        assert_eq!(a2.verdict, b2.verdict);
        assert_eq!(a1.p_hat.to_bits(), b1.p_hat.to_bits());
        assert_eq!(a2.p_hat.to_bits(), b2.p_hat.to_bits());
    }

    #[test]
    fn far_inputs_reject_and_uniform_accepts() {
        let engine = Engine::new(4);
        let mut accept = request(7);
        accept.trials = 20;
        accept.q = 120;
        let mut reject = accept;
        reject.family = Family::TwoLevel;
        let ok = engine.handle(&accept).unwrap();
        let far = engine.handle(&reject).unwrap();
        assert!(ok.p_hat > 2.0 / 3.0, "uniform p_hat {}", ok.p_hat);
        assert!(far.p_hat < 1.0 / 3.0, "two-level p_hat {}", far.p_hat);
        assert!(ok.wilson_lo <= ok.p_hat && ok.p_hat <= ok.wilson_hi);
    }

    #[test]
    fn invalid_configuration_is_an_error() {
        let engine = Engine::new(4);
        let mut req = request(1);
        req.n = 0;
        assert!(engine.handle(&req).is_err());
    }

    #[test]
    fn calibration_seed_is_key_pure() {
        let key = CacheKey::of(&request(1));
        let same = CacheKey::of(&request(999));
        assert_eq!(key, same, "seed must not enter the key");
        assert_eq!(key.calibration_seed(), same.calibration_seed());
        let mut other = request(1);
        other.q = 11;
        assert_ne!(
            key.calibration_seed(),
            CacheKey::of(&other).calibration_seed()
        );
    }

    #[test]
    fn served_backend_is_the_cost_models_choice() {
        // (n=10⁴, q=10³) was the 0.33x slow-path point the hardwired
        // histogram engine kept hitting: the key must resolve per-draw.
        let mut req = request(1);
        req.n = 10_000;
        req.q = 1_000;
        assert_eq!(CacheKey::of(&req).backend(), SampleBackend::PerDraw);
        // The flagship histogram corner stays histogram.
        req.n = 100;
        req.q = 10_000;
        assert_eq!(CacheKey::of(&req).backend(), SampleBackend::Histogram);
        // Entries store the key's resolution, and handling ticks the
        // per-backend counter for it.
        let registry = dut_obs::metrics::global();
        let before = registry.counter(Counter::ServeBackendPerDraw);
        let mut pd_req = request(5);
        pd_req.n = 4096; // per-draw region at q=10
        pd_req.rule = Rule::And; // calibration-free build
        let key = CacheKey::of(&pd_req);
        assert_eq!(key.backend(), SampleBackend::PerDraw);
        assert_eq!(build_entry(&key).unwrap().backend, SampleBackend::PerDraw);
        Engine::new(4).handle(&pd_req).unwrap();
        assert!(registry.counter(Counter::ServeBackendPerDraw) > before);
    }

    #[test]
    fn backend_enters_the_calibration_seed() {
        // Two keys differing only in backend_code derive different
        // calibration streams: the recorded engine is load-bearing in
        // the bit-identity contract, not advisory.
        let key = CacheKey::of(&request(1));
        let mut flipped = key;
        flipped.backend_code = if key.backend_code == 1 { 2 } else { 1 };
        assert_ne!(key.calibration_seed(), flipped.calibration_seed());
    }

    #[test]
    fn coalesced_batch_matches_offline_and_accounts_exactly() {
        let engine = Engine::new(4);
        let registry = dut_obs::metrics::global();
        let coalesced_before = registry.counter(Counter::ServeCoalesced);
        let requests_before = registry.counter(Counter::ServeRequests);
        // Five requests for one configuration, each with its own seed:
        // one resolution, five distinct answers.
        let batch: Vec<QueuedRequest> = (0..5u64)
            .map(|seed| QueuedRequest {
                req: request(seed * 31 + 1),
                queue_wait_micros: 7,
            })
            .collect();
        let replies = engine.handle_batch(&batch);
        assert_eq!(replies.len(), batch.len());
        for (item, reply) in batch.iter().zip(&replies) {
            let reply = reply.as_ref().expect("batch member answered");
            let offline = offline_reply(&item.req).expect("offline reference");
            assert_eq!(reply.verdict, offline.verdict);
            assert_eq!(reply.p_hat.to_bits(), offline.p_hat.to_bits());
            assert_eq!(reply.wilson_lo.to_bits(), offline.wilson_lo.to_bits());
            assert_eq!(reply.wilson_hi.to_bits(), offline.wilson_hi.to_bits());
        }
        // Followers are hits; the leader was this engine's first
        // lookup, so exactly one miss happened for the whole batch.
        assert!(!replies[0].as_ref().expect("leader").cache_hit);
        assert!(replies[1..]
            .iter()
            .all(|r| r.as_ref().expect("follower").cache_hit));
        assert_eq!(
            registry.counter(Counter::ServeCoalesced) - coalesced_before,
            batch.len() as u64 - 1
        );
        assert!(registry.counter(Counter::ServeRequests) - requests_before >= batch.len() as u64);
        // Rids stay unique across the batch.
        let mut rids: Vec<u64> = replies
            .iter()
            .map(|r| r.as_ref().expect("reply").rid)
            .collect();
        rids.dedup();
        assert_eq!(rids.len(), batch.len());
    }

    #[test]
    fn batch_of_invalid_configuration_errors_every_member() {
        let engine = Engine::new(4);
        let mut bad = request(1);
        bad.n = 0;
        let batch = [
            QueuedRequest {
                req: bad,
                queue_wait_micros: 0,
            },
            QueuedRequest {
                req: bad,
                queue_wait_micros: 0,
            },
        ];
        let replies = engine.handle_batch(&batch);
        assert_eq!(replies.len(), 2);
        assert!(replies.iter().all(Result::is_err));
        assert!(engine.handle_batch(&[]).is_empty());
    }

    #[test]
    fn cache_key_round_trips_rules() {
        for rule in [
            Rule::And,
            Rule::TThreshold { t: 3 },
            Rule::Balanced,
            Rule::Centralized,
        ] {
            let mut req = request(1);
            req.rule = rule;
            req.k = 8;
            assert_eq!(CacheKey::of(&req).rule(), rule);
        }
    }
}
