//! Bounded single-flight LRU of prepared testers.
//!
//! Preparing a tester is the expensive part of a request (the
//! balanced rule runs an 800-trial Monte-Carlo calibration), so the
//! server keeps prepared testers resident, keyed by
//! [`CacheKey`](crate::engine::CacheKey). Two properties matter under
//! concurrency:
//!
//! * **Single flight.** When N workers race on the same absent key,
//!   exactly one builds; the rest block on the entry's `OnceLock`
//!   and reuse the result. The map lock is *not* held during the
//!   build, so a slow calibration never stalls requests for other
//!   keys — the same check-then-act discipline as
//!   `dut_testers::cache::cached_poisson_threshold`, but with the
//!   computation moved outside the critical section.
//! * **Exact accounting.** Every lookup is classified hit or miss at
//!   the moment the map is consulted under the lock, so
//!   `hits + misses == calls` under any interleaving. A lookup that
//!   finds an entry still being built counts as a hit (the work is
//!   shared, not repeated).
//!
//! Eviction is least-recently-used by a monotonic touch tick. Evicted
//! entries stay alive for whoever still holds their `Arc`; builds
//! whose slot was evicted mid-flight simply complete unobserved.

use crate::engine::{BuildError, CacheKey, PreparedEntry};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// The build outcome stored per entry. *Permanent* errors are cached
/// too: they are deterministic functions of the key, and
/// re-validating a bad configuration on every request would let a
/// hostile client bypass the cache entirely. *Transient* errors (a
/// panicked build, a shed-era failure) are evicted right after they
/// are served, so the next request for the key retries the build —
/// one bad calibration must not pin a configuration to failure for
/// the key's whole cache lifetime.
type BuildResult = Result<Arc<PreparedEntry>, BuildError>;

#[derive(Debug, Default)]
struct EntryCell {
    once: OnceLock<BuildResult>,
}

#[derive(Debug)]
struct Slot {
    cell: Arc<EntryCell>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    // dut-lint: guarded_by(state)
    map: BTreeMap<CacheKey, Slot>,
    // dut-lint: guarded_by(state)
    tick: u64,
}

/// A bounded single-flight LRU keyed by tester configuration.
#[derive(Debug)]
pub struct TesterCache {
    cap: usize,
    state: Mutex<CacheState>,
}

impl TesterCache {
    /// A cache holding at most `cap` entries (clamped to at least 1).
    #[must_use]
    pub fn new(cap: usize) -> TesterCache {
        TesterCache {
            cap: cap.max(1),
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Entries currently resident (including in-flight builds).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves `key`, building via `build` on a miss. Returns the
    /// build result and whether this call was a hit. The build runs
    /// without the map lock held; concurrent callers for the same key
    /// block on the entry cell instead of re-building.
    pub fn get_or_build<F>(&self, key: &CacheKey, build: F) -> (BuildResult, bool)
    where
        F: FnOnce(&CacheKey) -> BuildResult,
    {
        let (cell, hit) = {
            let mut state = self.state.lock();
            state.tick += 1;
            let tick = state.tick;
            if let Some(slot) = state.map.get_mut(key) {
                slot.last_used = tick;
                (Arc::clone(&slot.cell), true)
            } else {
                if state.map.len() >= self.cap {
                    // Evict the least-recently-touched key.
                    let coldest = state
                        .map
                        .iter()
                        .min_by_key(|(_, slot)| slot.last_used)
                        .map(|(k, _)| *k);
                    if let Some(coldest) = coldest {
                        state.map.remove(&coldest);
                    }
                }
                let cell = Arc::new(EntryCell::default());
                state.map.insert(
                    *key,
                    Slot {
                        cell: Arc::clone(&cell),
                        last_used: tick,
                    },
                );
                (cell, false)
            }
        };
        let result = cell.once.get_or_init(|| build(key)).clone();
        if matches!(&result, Err(e) if e.transient) {
            // Poison recovery: drop the slot so the next lookup
            // rebuilds, but only if it still holds *this* cell — a
            // concurrent eviction + re-insert may already have a
            // fresh build in flight that must not be torn down. The
            // re-check and the removal happen under one lock
            // acquisition (the same double-check discipline as
            // `dut_testers::cache`).
            let mut state = self.state.lock();
            if let Some(slot) = state.map.get(key) {
                if Arc::ptr_eq(&slot.cell, &cell) {
                    state.map.remove(key);
                }
            }
        }
        (result, hit)
    }
}

/// N independent single-flight LRU shards behind one facade.
///
/// The single `Mutex<CacheState>` in [`TesterCache`] serializes every
/// lookup in the process; at request-level scheduling rates that lock
/// becomes the hottest line in the server. Sharding by `CacheKey` hash
/// splits the key space across `shards` independent caches, so lookups
/// for unrelated testers never contend. Routing uses
/// [`CacheKey::calibration_seed`](crate::engine::CacheKey::calibration_seed):
/// a pure split-mix chain over every key field, so it is stable across
/// runs (deterministic routing) and well mixed (balanced shards).
///
/// Each shard keeps the full single-flight and exact hit/miss
/// accounting contract of [`TesterCache`]; the facade adds nothing but
/// routing, so `hits + misses == calls` still holds globally.
#[derive(Debug)]
pub struct ShardedTesterCache {
    shards: Vec<TesterCache>,
}

impl ShardedTesterCache {
    /// A cache of `shards` independent LRUs (clamped to at least 1)
    /// holding at most `cap` entries in total: each shard gets
    /// `ceil(cap / shards)` slots so the aggregate bound is respected
    /// up to rounding and no shard is starved to zero.
    #[must_use]
    pub fn new(cap: usize, shards: usize) -> ShardedTesterCache {
        let shards = shards.max(1);
        let per_shard = cap.max(1).div_ceil(shards);
        ShardedTesterCache {
            shards: (0..shards).map(|_| TesterCache::new(per_shard)).collect(),
        }
    }

    /// How many shards the key space is split across.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Entries resident across every shard (including in-flight
    /// builds).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(TesterCache::len).sum()
    }

    /// Whether every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard responsible for `key`.
    fn shard(&self, key: &CacheKey) -> &TesterCache {
        let route = key.calibration_seed() % self.shards.len() as u64;
        #[allow(clippy::cast_possible_truncation)]
        &self.shards[route as usize]
    }

    /// Resolves `key` on its shard; see [`TesterCache::get_or_build`].
    pub fn get_or_build<F>(&self, key: &CacheKey, build: F) -> (BuildResult, bool)
    where
        F: FnOnce(&CacheKey) -> BuildResult,
    {
        self.shard(key).get_or_build(key, build)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::build_entry;
    use crate::protocol::{Family, Request};
    use dut_core::Rule;

    fn key(n: usize, q: usize) -> CacheKey {
        CacheKey::of(&Request {
            n,
            k: 4,
            q,
            eps: 0.5,
            rule: Rule::Balanced,
            family: Family::Uniform,
            seed: 0,
            trials: 1,
        })
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let cache = TesterCache::new(4);
        let (first, hit1) = cache.get_or_build(&key(64, 4), build_entry);
        let (second, hit2) = cache.get_or_build(&key(64, 4), build_entry);
        assert!(first.is_ok() && second.is_ok());
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn herd_on_one_key_builds_once() {
        let cache = TesterCache::new(4);
        let builds = std::sync::atomic::AtomicUsize::new(0);
        let threads = 8;
        let mut outcomes = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let (result, hit) = cache.get_or_build(&key(64, 8), |k| {
                            builds.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            build_entry(k)
                        });
                        (result.is_ok(), hit)
                    })
                })
                .collect();
            for handle in handles {
                outcomes.push(handle.join().expect("no panic"));
            }
        });
        assert_eq!(builds.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert!(outcomes.iter().all(|&(ok, _)| ok));
        let misses = outcomes.iter().filter(|&&(_, hit)| !hit).count();
        assert_eq!(misses, 1, "hits + misses == calls: {outcomes:?}");
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = TesterCache::new(2);
        let a = key(64, 1);
        let b = key(64, 2);
        let c = key(64, 3);
        let _ = cache.get_or_build(&a, build_entry);
        let _ = cache.get_or_build(&b, build_entry);
        // Touch `a` so `b` is coldest, then insert `c`.
        let (_, hit_a) = cache.get_or_build(&a, build_entry);
        assert!(hit_a);
        let _ = cache.get_or_build(&c, build_entry);
        assert_eq!(cache.len(), 2);
        let (_, hit_b) = cache.get_or_build(&b, build_entry);
        assert!(!hit_b, "b was evicted");
        let (_, hit_c) = cache.get_or_build(&c, build_entry);
        // `b`'s reinsertion evicted someone; `a` was colder than `c`.
        assert!(hit_c, "c stayed resident");
    }

    #[test]
    fn errors_are_cached() {
        let cache = TesterCache::new(2);
        let bad = key(0, 1); // n = 0 fails the builder
        let (first, hit1) = cache.get_or_build(&bad, build_entry);
        let (second, hit2) = cache.get_or_build(&bad, build_entry);
        assert!(first.is_err() && second.is_err());
        assert!(!hit1);
        assert!(hit2, "the cached error serves the second call");
    }

    #[test]
    fn transient_errors_are_retried() {
        use crate::engine::BuildError;
        let cache = TesterCache::new(2);
        let k = key(64, 9);
        let builds = std::sync::atomic::AtomicUsize::new(0);
        // First build fails transiently (as a panicked calibration
        // would); the error must be served but not pinned.
        let (first, hit1) = cache.get_or_build(&k, |_| {
            builds.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Err(BuildError::transient("calibration fell over"))
        });
        assert!(matches!(&first, Err(e) if e.transient));
        assert!(!hit1);
        assert_eq!(cache.len(), 0, "transient failure was evicted");
        // Second lookup is a fresh miss and the real build succeeds.
        let (second, hit2) = cache.get_or_build(&k, |kk| {
            builds.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            build_entry(kk)
        });
        assert!(second.is_ok());
        assert!(!hit2, "recovery is a miss, not a poisoned hit");
        assert_eq!(builds.load(std::sync::atomic::Ordering::Relaxed), 2);
        // And the recovered entry is now resident.
        let (third, hit3) = cache.get_or_build(&k, build_entry);
        assert!(third.is_ok());
        assert!(hit3);
    }

    #[test]
    fn permanent_errors_stay_resident() {
        let cache = TesterCache::new(2);
        let bad = key(0, 1);
        let _ = cache.get_or_build(&bad, build_entry);
        assert_eq!(
            cache.len(),
            1,
            "permanent errors are kept to stop re-validation storms"
        );
    }

    #[test]
    fn cap_is_clamped() {
        let cache = TesterCache::new(0);
        let (built, _) = cache.get_or_build(&key(64, 5), build_entry);
        assert!(built.is_ok());
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn sharded_routing_is_stable_and_accounting_stays_exact() {
        let cache = ShardedTesterCache::new(16, 4);
        assert_eq!(cache.shard_count(), 4);
        assert!(cache.is_empty());
        let keys: Vec<CacheKey> = (1..=8).map(|q| key(64, q)).collect();
        for k in &keys {
            let (built, hit) = cache.get_or_build(k, build_entry);
            assert!(built.is_ok());
            assert!(!hit, "first lookup is a miss");
        }
        assert_eq!(cache.len(), keys.len());
        for k in &keys {
            let (built, hit) = cache.get_or_build(k, build_entry);
            assert!(built.is_ok());
            assert!(hit, "same key routes to the same shard");
        }
    }

    #[test]
    fn sharded_herd_across_keys_builds_each_once() {
        // Capacity comfortably above the key count on every possible
        // routing, so no shard evicts mid-herd and single flight is
        // the only thing under test.
        let cache = ShardedTesterCache::new(16, 4);
        let builds = std::sync::atomic::AtomicUsize::new(0);
        let keys: Vec<CacheKey> = (1..=4).map(|q| key(64, q)).collect();
        let mut misses = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|i| {
                    let keys = &keys;
                    let cache = &cache;
                    let builds = &builds;
                    scope.spawn(move || {
                        let (result, hit) = cache.get_or_build(&keys[i % keys.len()], |k| {
                            builds.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            build_entry(k)
                        });
                        (result.is_ok(), hit)
                    })
                })
                .collect();
            for handle in handles {
                let (ok, hit) = handle.join().expect("no panic");
                assert!(ok);
                if !hit {
                    misses += 1;
                }
            }
        });
        assert_eq!(
            builds.load(std::sync::atomic::Ordering::Relaxed),
            keys.len()
        );
        assert_eq!(misses, keys.len(), "hits + misses == calls per shard");
    }

    #[test]
    fn sharded_cap_divides_across_shards() {
        // cap 2 over 2 shards -> 1 slot per shard; shard clamp keeps
        // at least one slot even for cap 0.
        let tiny = ShardedTesterCache::new(0, 3);
        let (built, _) = tiny.get_or_build(&key(64, 5), build_entry);
        assert!(built.is_ok());
        assert_eq!(tiny.len(), 1);
    }
}
