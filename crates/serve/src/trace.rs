//! Replayable arrival traces for the load generator.
//!
//! A trace is a newline-JSON artifact (`dut-serve-trace/v1`): one
//! header line, then one line per request with its arrival offset,
//! lane, catalog index, seed, and optional tenant. Replaying the same
//! trace file reproduces the same request sequence on the same lanes
//! at the same offsets, which turns a load profile into a regression
//! artifact instead of a one-off.
//!
//! Generation is seeded and deterministic. Arrivals start from a
//! fixed-rate schedule and are modulated two ways, both borrowed from
//! the paper's adversarial-network machinery rather than reinvented:
//!
//! * **Bursts.** A [`GilbertElliott`] two-state channel (the same
//!   model `simnet/resilience` uses for loss bursts) gates each
//!   arrival; while the channel is in its bad state the inter-arrival
//!   gap compresses, so requests cluster exactly like loss does on a
//!   bursty link.
//! * **Diurnal swing.** The base rate follows one sinusoidal period
//!   across the trace span (half rate in the trough, 1.5× at the
//!   peak), the classic day/night load shape compressed into the
//!   trace duration.

use dut_obs::json::{self, Json};
use dut_simnet::{FaultPlan, GilbertElliott};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Duration;

/// Schema tag stamped into (and required from) every trace artifact.
pub const TRACE_SCHEMA: &str = "dut-serve-trace/v1";

/// Highest mean burst-gate loss this generator will request. The
/// channel's own ceiling is its bad-state stationary probability
/// (just below 0.375), so stay strictly inside it.
const MAX_BURST: f64 = 0.37;

/// One request arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Arrival offset from the start of the replay, microseconds.
    pub at_micros: u64,
    /// Sender lane (persistent connection) carrying this request.
    pub lane: u64,
    /// Global request index, fed to
    /// [`request_for_index`](crate::loadgen::request_for_index).
    pub index: u64,
    /// Request seed (also derivable from `index`, but stored so a
    /// trace file is self-contained).
    pub seed: u64,
    /// Tenant stamped on the wire, if any.
    pub tenant: Option<String>,
}

/// A parsed or generated trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Nominal span of the trace, microseconds.
    pub span_micros: u64,
    /// Number of sender lanes the events are spread over.
    pub lanes: u64,
    /// Arrivals in non-decreasing `at_micros` order.
    pub events: Vec<TraceEvent>,
}

/// Trace-generation knobs.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Base request rate before burst/diurnal modulation.
    pub rps: u64,
    /// Trace span.
    pub duration: Duration,
    /// Sender lanes to spread arrivals over.
    pub lanes: u64,
    /// Mean fraction of arrivals gated into burst clusters
    /// (clamped to the Gilbert–Elliott model's supported range).
    pub burstiness: f64,
    /// Apply the one-period diurnal rate swing.
    pub diurnal: bool,
    /// Generator seed: same seed, same trace, bit for bit.
    pub seed: u64,
    /// Tenants stamped round-robin on the events (empty = no tenant
    /// field on the wire).
    pub tenants: Vec<String>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            rps: 2_000,
            duration: Duration::from_secs(2),
            lanes: 8,
            burstiness: 0.25,
            diurnal: true,
            seed: 7,
            tenants: Vec::new(),
        }
    }
}

/// The diurnal rate multiplier at phase `f ∈ [0, 1)`: one sinusoidal
/// period spanning `[0.5, 1.5]`, peak at mid-trace.
fn diurnal_factor(f: f64) -> f64 {
    1.0 - 0.5 * (std::f64::consts::TAU * f).cos()
}

/// Generates a deterministic trace from the config.
#[must_use]
pub fn generate(config: &TraceConfig) -> Trace {
    let span_micros = u64::try_from(config.duration.as_micros()).unwrap_or(u64::MAX);
    let lanes = config.lanes.max(1);
    let rps = config.rps.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut channel =
        GilbertElliott::bursty_with_mean_loss(config.burstiness.clamp(0.0, MAX_BURST));
    channel.begin_run(1, &mut rng);
    let mut events = Vec::new();
    let mut at = 0.0_f64;
    let mut index = 0u64;
    #[allow(clippy::cast_precision_loss)]
    let span = span_micros as f64;
    while at < span {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let at_micros = at as u64;
        let tenant = if config.tenants.is_empty() {
            None
        } else {
            let slot = usize::try_from(index).unwrap_or(0) % config.tenants.len();
            Some(config.tenants[slot].clone())
        };
        events.push(TraceEvent {
            at_micros,
            lane: index % lanes,
            index,
            seed: 1000 + (index % 64),
            tenant,
        });
        // One Gilbert–Elliott step per arrival: a "lost" round is the
        // bad state, and bad-state arrivals crowd together.
        let bursty = channel.deliver_round(&[Some(true)], &mut rng)[0].is_none();
        #[allow(clippy::cast_precision_loss)]
        let base_gap = 1_000_000.0 / rps as f64;
        let swing = if config.diurnal {
            diurnal_factor(at / span)
        } else {
            1.0
        };
        let gap = if bursty {
            base_gap * 0.2
        } else {
            base_gap / swing
        };
        at += gap.max(1.0);
        index += 1;
    }
    Trace {
        span_micros,
        lanes,
        events,
    }
}

impl Trace {
    /// Renders the newline-JSON artifact (header line + one line per
    /// event, trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 48);
        let _ = writeln!(
            out,
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"span_us\":{},\"lanes\":{},\"requests\":{}}}",
            self.span_micros,
            self.lanes,
            self.events.len()
        );
        for event in &self.events {
            let _ = write!(
                out,
                "{{\"at_us\":{},\"lane\":{},\"index\":{},\"seed\":{}",
                event.at_micros, event.lane, event.index, event.seed
            );
            if let Some(tenant) = &event.tenant {
                out.push_str(",\"tenant\":");
                json::write_escaped(&mut out, tenant);
            }
            out.push('}');
            out.push('\n');
        }
        out
    }

    /// Parses and validates a trace artifact.
    ///
    /// # Errors
    ///
    /// Returns the first violation: bad schema, malformed lines, a
    /// request count that disagrees with the header, an out-of-range
    /// lane, or arrivals out of order.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty trace")?;
        let doc = json::parse(header.trim()).map_err(|e| format!("trace header: {e}"))?;
        match doc.get("schema") {
            Some(Json::Str(s)) if s == TRACE_SCHEMA => {}
            Some(Json::Str(s)) => {
                return Err(format!("trace schema is `{s}`, expected `{TRACE_SCHEMA}`"))
            }
            _ => return Err("trace header missing `schema`".to_owned()),
        }
        let need = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace header missing `{key}`"))
        };
        let span_micros = need("span_us")?;
        let lanes = need("lanes")?.max(1);
        let declared = need("requests")?;
        let mut events = Vec::new();
        let mut last_at = 0u64;
        for (offset, line) in lines.enumerate() {
            let row =
                json::parse(line.trim()).map_err(|e| format!("trace line {}: {e}", offset + 2))?;
            let field = |key: &str| -> Result<u64, String> {
                row.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("trace line {} missing `{key}`", offset + 2))
            };
            let event = TraceEvent {
                at_micros: field("at_us")?,
                lane: field("lane")?,
                index: field("index")?,
                seed: field("seed")?,
                tenant: row
                    .get("tenant")
                    .and_then(Json::as_str)
                    .map(ToOwned::to_owned),
            };
            if event.lane >= lanes {
                return Err(format!(
                    "trace line {}: lane {} out of range (lanes {lanes})",
                    offset + 2,
                    event.lane
                ));
            }
            if event.at_micros < last_at {
                return Err(format!(
                    "trace line {}: arrivals out of order ({} after {last_at})",
                    offset + 2,
                    event.at_micros
                ));
            }
            last_at = event.at_micros;
            events.push(event);
        }
        if events.len() as u64 != declared {
            return Err(format!(
                "trace header declares {declared} requests but {} lines follow",
                events.len()
            ));
        }
        Ok(Trace {
            span_micros,
            lanes,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = TraceConfig::default();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a, b, "same seed, same trace");
        let c = generate(&TraceConfig { seed: 8, ..config });
        assert_ne!(a, c, "a different seed moves arrivals");
    }

    #[test]
    fn trace_round_trips_through_the_artifact() {
        let trace = generate(&TraceConfig {
            tenants: vec!["alpha".to_owned(), "beta".to_owned()],
            duration: Duration::from_millis(200),
            ..TraceConfig::default()
        });
        assert!(!trace.events.is_empty());
        assert!(trace.events.iter().any(|e| e.tenant.is_some()));
        let text = trace.render();
        let back = Trace::parse(&text).expect("round trip");
        assert_eq!(back, trace);
    }

    #[test]
    fn bursts_compress_gaps_below_the_uniform_schedule() {
        let bursty = generate(&TraceConfig {
            burstiness: 0.375,
            diurnal: false,
            duration: Duration::from_millis(500),
            ..TraceConfig::default()
        });
        let flat = generate(&TraceConfig {
            burstiness: 0.0,
            diurnal: false,
            duration: Duration::from_millis(500),
            ..TraceConfig::default()
        });
        // Same span, but burst clustering packs more arrivals in.
        assert!(
            bursty.events.len() > flat.events.len(),
            "bursty {} vs flat {}",
            bursty.events.len(),
            flat.events.len()
        );
        // A burst gap is 1/5 of the schedule gap; the flat trace
        // never produces one.
        let min_gap = |t: &Trace| {
            t.events
                .windows(2)
                .map(|w| w[1].at_micros - w[0].at_micros)
                .min()
                .unwrap_or(u64::MAX)
        };
        assert!(min_gap(&bursty) < min_gap(&flat));
    }

    #[test]
    fn parse_rejects_broken_artifacts() {
        assert!(Trace::parse("").is_err());
        assert!(Trace::parse("{\"schema\":\"dut-serve-trace/v0\"}").is_err());
        let ok = generate(&TraceConfig {
            duration: Duration::from_millis(50),
            ..TraceConfig::default()
        })
        .render();
        // Drop an event line: the header count no longer matches.
        let truncated: Vec<&str> = ok.lines().collect();
        let truncated = truncated[..truncated.len() - 1].join("\n");
        assert!(Trace::parse(&truncated).unwrap_err().contains("declares"));
        // Shuffle arrivals out of order.
        let mut lines: Vec<&str> = ok.lines().collect();
        let last = lines.len() - 1;
        lines.swap(1, last);
        let shuffled = lines.join("\n");
        assert!(Trace::parse(&shuffled).unwrap_err().contains("order"));
    }

    #[test]
    fn diurnal_swing_thins_the_trough_and_packs_the_peak() {
        let trace = generate(&TraceConfig {
            burstiness: 0.0,
            diurnal: true,
            duration: Duration::from_secs(1),
            ..TraceConfig::default()
        });
        let mid = trace.span_micros / 2;
        let quarter = trace.span_micros / 4;
        let in_range = |lo: u64, hi: u64| {
            trace
                .events
                .iter()
                .filter(|e| e.at_micros >= lo && e.at_micros < hi)
                .count()
        };
        // Peak quarter (centered mid-span) vs the leading trough
        // quarter: the sinusoid packs the peak strictly denser.
        let peak = in_range(mid - quarter / 2, mid + quarter / 2);
        let trough = in_range(0, quarter);
        assert!(peak > trough, "peak {peak} vs trough {trough}");
    }
}
