//! Open-loop load generation against a running server.
//!
//! Senders pace requests on a fixed global schedule (request `i` is
//! due at `start + i/rps`), spread round-robin over a small pool of
//! persistent connections. Pacing from the schedule rather than from
//! reply arrival keeps the generator open-loop: a slow server falls
//! behind the schedule and the achieved-throughput number says so,
//! instead of the generator politely slowing down and hiding the
//! problem (coordinated omission).
//!
//! With `verify_offline` set, every reply is also checked for
//! bit-identity against a local [`Engine`](crate::engine::Engine)
//! evaluating the same request — the service's determinism contract,
//! enforced from the outside.

use crate::engine::Engine;
use crate::protocol::{self, Family, ReplyLine, Request};
use dut_core::Rule;
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7979`.
    pub addr: String,
    /// Target request rate (requests per second, across all
    /// connections).
    pub rps: u64,
    /// How long to generate load.
    pub duration: Duration,
    /// Persistent connections (= sender threads).
    pub connections: usize,
    /// Check every reply against a local engine for bit-identity.
    pub verify_offline: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7979".to_owned(),
            rps: 500,
            duration: Duration::from_secs(2),
            connections: 4,
            verify_offline: false,
        }
    }
}

/// What a load-generation run measured.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Requests written to the sockets.
    pub sent: u64,
    /// Well-formed test replies received.
    pub replies: u64,
    /// `overloaded` replies received.
    pub shed: u64,
    /// Error replies, malformed replies, and transport failures.
    pub errors: u64,
    /// Replies disagreeing with the local engine (0 unless
    /// `verify_offline`).
    pub mismatches: u64,
    /// Wall-clock time from first send to last reply.
    pub elapsed: Duration,
    /// Replies per second actually achieved.
    pub achieved_rps: f64,
    /// Median reply latency in microseconds.
    pub p50_micros: u64,
    /// 95th-percentile reply latency in microseconds.
    pub p95_micros: u64,
    /// 99th-percentile reply latency in microseconds.
    pub p99_micros: u64,
}

/// The request mix: four distinct configurations (distinct cache
/// keys, covering every rule) cycled per request index, with the
/// seed varying so trial randomness differs request to request.
/// Small domains keep a single request far below a millisecond, so
/// throughput measures the service, not the math.
#[must_use]
pub fn catalog() -> Vec<Request> {
    vec![
        Request {
            n: 64,
            k: 8,
            q: 8,
            eps: 0.5,
            rule: Rule::Balanced,
            family: Family::Uniform,
            seed: 0,
            trials: 1,
        },
        Request {
            n: 128,
            k: 8,
            q: 10,
            eps: 0.5,
            rule: Rule::TThreshold { t: 2 },
            family: Family::TwoLevel,
            seed: 0,
            trials: 1,
        },
        Request {
            n: 64,
            k: 4,
            q: 6,
            eps: 0.9,
            rule: Rule::And,
            family: Family::Alternating,
            seed: 0,
            trials: 1,
        },
        Request {
            n: 256,
            k: 1,
            q: 32,
            eps: 0.5,
            rule: Rule::Centralized,
            family: Family::Zipf,
            seed: 0,
            trials: 1,
        },
    ]
}

/// The request for global index `i`: catalog entry `i % len`, seed
/// drawn from a small rotating pool so the server sees repeated
/// (configuration, seed) pairs — which is what makes offline
/// verification cheap (the verifier memoizes per distinct request).
#[must_use]
pub fn request_for_index(i: u64, catalog: &[Request]) -> Request {
    let mut req = catalog[usize::try_from(i % catalog.len() as u64).unwrap_or(0)];
    req.seed = 1000 + (i % 64);
    req
}

#[derive(Default)]
struct Tally {
    sent: u64,
    replies: u64,
    shed: u64,
    errors: u64,
    mismatches: u64,
    latencies: Vec<u64>,
}

/// Runs the generator and aggregates the report.
///
/// # Errors
///
/// Returns an error if no connection could be established; transport
/// errors after that are counted, not fatal.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let connections = config.connections.max(1);
    let rps = config.rps.max(1);
    let catalog = catalog();
    // Fail fast if the server is not there at all.
    let probe = TcpStream::connect(&config.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", config.addr))?;
    drop(probe);
    let verifier = config
        .verify_offline
        .then(|| Engine::new(catalog.len() * 2));
    let verifier = verifier.as_ref();
    let total = Mutex::new(Tally::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for lane in 0..connections {
            let catalog = &catalog;
            let total = &total;
            let config = &config;
            scope.spawn(move || {
                let tally = sender_loop(
                    config,
                    catalog,
                    verifier,
                    lane as u64,
                    connections as u64,
                    rps,
                    start,
                );
                let mut total = total.lock();
                total.sent += tally.sent;
                total.replies += tally.replies;
                total.shed += tally.shed;
                total.errors += tally.errors;
                total.mismatches += tally.mismatches;
                total.latencies.extend(tally.latencies);
            });
        }
    });
    let elapsed = start.elapsed();
    let mut total = total.into_inner();
    total.latencies.sort_unstable();
    let percentile = |p: u64| -> u64 {
        if total.latencies.is_empty() {
            return 0;
        }
        let rank = (total.latencies.len() - 1) * usize::try_from(p).unwrap_or(0) / 100;
        total.latencies[rank]
    };
    Ok(LoadgenReport {
        sent: total.sent,
        replies: total.replies,
        shed: total.shed,
        errors: total.errors,
        mismatches: total.mismatches,
        elapsed,
        achieved_rps: if elapsed.as_secs_f64() > 0.0 {
            total.replies as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        p50_micros: percentile(50),
        p95_micros: percentile(95),
        p99_micros: percentile(99),
    })
}

/// One sender: owns one persistent connection and the request indices
/// `lane, lane + connections, lane + 2·connections, …`, each due at
/// `start + index/rps`.
fn sender_loop(
    config: &LoadgenConfig,
    catalog: &[Request],
    verifier: Option<&Engine>,
    lane: u64,
    lanes: u64,
    rps: u64,
    start: Instant,
) -> Tally {
    let mut tally = Tally::default();
    let Ok(stream) = TcpStream::connect(&config.addr) else {
        tally.errors += 1;
        return tally;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            tally.errors += 1;
            return tally;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut index = lane;
    let mut line = String::new();
    loop {
        let due = start + Duration::from_nanos(index.saturating_mul(1_000_000_000) / rps);
        let now = Instant::now();
        if now.duration_since(start) >= config.duration {
            break;
        }
        if due > now {
            std::thread::sleep(due - now);
        }
        let request = request_for_index(index, catalog);
        let sent_at = Instant::now();
        if writeln!(writer, "{}", protocol::render_request(&request)).is_err() {
            tally.errors += 1;
            break;
        }
        tally.sent += 1;
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                tally.errors += 1;
                break;
            }
            Ok(_) => {
                let micros = u64::try_from(sent_at.elapsed().as_micros()).unwrap_or(u64::MAX);
                record_reply(&mut tally, line.trim(), &request, verifier, micros);
            }
        }
        index += lanes;
    }
    tally
}

fn record_reply(
    tally: &mut Tally,
    line: &str,
    request: &Request,
    verifier: Option<&Engine>,
    micros: u64,
) {
    match ReplyLine::parse(line) {
        Ok(ReplyLine::Reply(reply)) => {
            tally.replies += 1;
            tally.latencies.push(micros);
            if let Some(engine) = verifier {
                match engine.handle(request) {
                    Ok(expected)
                        if expected.verdict == reply.verdict
                            && expected.p_hat.to_bits() == reply.p_hat.to_bits()
                            && expected.wilson_lo.to_bits() == reply.wilson_lo.to_bits()
                            && expected.wilson_hi.to_bits() == reply.wilson_hi.to_bits() => {}
                    _ => tally.mismatches += 1,
                }
            }
        }
        Ok(ReplyLine::Overloaded) => tally.shed += 1,
        Ok(ReplyLine::Error(_) | ReplyLine::ShutdownAck) | Err(_) => tally.errors += 1,
    }
}

/// Connects, sends `{"cmd":"shutdown"}`, and waits for the ack.
///
/// # Errors
///
/// Returns an error if the server cannot be reached or never acks.
pub fn send_shutdown(addr: &str) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    writeln!(writer, "{{\"cmd\":\"shutdown\"}}").map_err(|e| format!("cannot send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("no shutdown ack: {e}"))?;
    match ReplyLine::parse(line.trim())? {
        ReplyLine::ShutdownAck => Ok(()),
        other => Err(format!("unexpected shutdown reply: {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_distinct_cache_keys() {
        use crate::engine::CacheKey;
        let catalog = catalog();
        let keys: std::collections::BTreeSet<_> = catalog.iter().map(CacheKey::of).collect();
        assert_eq!(keys.len(), catalog.len());
    }

    #[test]
    fn index_mapping_cycles_and_reseeds() {
        let catalog = catalog();
        let a = request_for_index(0, &catalog);
        let b = request_for_index(4, &catalog);
        // Same configuration, different seed.
        assert_eq!(
            crate::engine::CacheKey::of(&a),
            crate::engine::CacheKey::of(&b)
        );
        assert_ne!(a.seed, b.seed);
        let c = request_for_index(1, &catalog);
        assert_ne!(
            crate::engine::CacheKey::of(&a),
            crate::engine::CacheKey::of(&c)
        );
    }

    #[test]
    fn unreachable_server_is_an_error() {
        let config = LoadgenConfig {
            // Port 1 on loopback: refused immediately, no server.
            addr: "127.0.0.1:1".to_owned(),
            duration: Duration::from_millis(10),
            ..LoadgenConfig::default()
        };
        assert!(run(&config).is_err());
        assert!(send_shutdown(&config.addr).is_err());
    }
}
