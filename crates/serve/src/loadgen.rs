//! Open-loop load generation against a running server.
//!
//! Senders pace requests on a fixed global schedule (request `i` is
//! due at `start + i/rps`), spread round-robin over a small pool of
//! persistent connections. Pacing from the schedule rather than from
//! reply arrival keeps the generator open-loop: a slow server falls
//! behind the schedule and the achieved-throughput number says so,
//! instead of the generator politely slowing down and hiding the
//! problem (coordinated omission).
//!
//! With `verify_offline` set, every reply is also checked for
//! bit-identity against a local [`Engine`](crate::engine::Engine)
//! evaluating the same request — the service's determinism contract,
//! enforced from the outside.

use crate::engine::Engine;
use crate::protocol::{self, Family, ReplyLine, Request};
use crate::stats::Stats;
use crate::trace::{Trace, TraceEvent};
use dut_core::Rule;
use dut_obs::json::{self, Json};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Schema tag stamped into every bench artifact. `v2` adds the
/// server's windowed `queue_wait_p99_us` as a first-class field — the
/// request-level scheduler made it a number worth tracking (under
/// connection pinning it measured whole-connection queueing and was
/// meaningless as a health signal).
pub const BENCH_SCHEMA: &str = "dut-bench-serve/v2";

/// The previous schema, still accepted by [`check_bench_json`] so
/// historical artifacts keep validating.
pub const BENCH_SCHEMA_V1: &str = "dut-bench-serve/v1";

/// A `v2` artifact from a shed-free run must show a queue-wait p99
/// below this (microseconds): with per-request scheduling, a healthy
/// queue drains in well under 10ms.
pub const SANE_QUEUE_WAIT_MICROS: f64 = 10_000.0;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7979`.
    pub addr: String,
    /// Target request rate (requests per second, across all
    /// connections).
    pub rps: u64,
    /// How long to generate load.
    pub duration: Duration,
    /// Persistent connections (= sender threads).
    pub connections: usize,
    /// Requests each lane keeps in flight per connection: the lane
    /// writes a window of this many request lines in one syscall,
    /// then drains the same number of replies. `1` is strict
    /// closed-loop; deeper windows amortize syscalls on both sides
    /// of the wire (the server frames pipelined lines natively).
    pub pipeline: usize,
    /// Check every reply against a local engine for bit-identity.
    pub verify_offline: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7979".to_owned(),
            rps: 500,
            duration: Duration::from_secs(2),
            connections: 4,
            pipeline: 1,
            verify_offline: false,
        }
    }
}

/// What a load-generation run measured.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Requests written to the sockets.
    pub sent: u64,
    /// Well-formed test replies received.
    pub replies: u64,
    /// `overloaded` replies received.
    pub shed: u64,
    /// Error replies, malformed replies, and transport failures.
    pub errors: u64,
    /// Replies disagreeing with the local engine (0 unless
    /// `verify_offline`).
    pub mismatches: u64,
    /// Wall-clock time from first send to last reply.
    pub elapsed: Duration,
    /// Replies per second actually achieved.
    pub achieved_rps: f64,
    /// Median reply latency in microseconds.
    pub p50_micros: u64,
    /// 95th-percentile reply latency in microseconds.
    pub p95_micros: u64,
    /// 99th-percentile reply latency in microseconds.
    pub p99_micros: u64,
}

/// The request mix: four distinct configurations (distinct cache
/// keys, covering every rule) cycled per request index, with the
/// seed varying so trial randomness differs request to request.
/// Small domains keep a single request far below a millisecond, so
/// throughput measures the service, not the math.
#[must_use]
pub fn catalog() -> Vec<Request> {
    vec![
        Request {
            n: 64,
            k: 8,
            q: 8,
            eps: 0.5,
            rule: Rule::Balanced,
            family: Family::Uniform,
            seed: 0,
            trials: 1,
        },
        Request {
            n: 128,
            k: 8,
            q: 10,
            eps: 0.5,
            rule: Rule::TThreshold { t: 2 },
            family: Family::TwoLevel,
            seed: 0,
            trials: 1,
        },
        Request {
            n: 64,
            k: 4,
            q: 6,
            eps: 0.9,
            rule: Rule::And,
            family: Family::Alternating,
            seed: 0,
            trials: 1,
        },
        Request {
            n: 256,
            k: 1,
            q: 32,
            eps: 0.5,
            rule: Rule::Centralized,
            family: Family::Zipf,
            seed: 0,
            trials: 1,
        },
    ]
}

/// The request for global index `i`: catalog entry `i % len`, seed
/// drawn from a small rotating pool so the server sees repeated
/// (configuration, seed) pairs — which is what makes offline
/// verification cheap (the verifier memoizes per distinct request).
#[must_use]
pub fn request_for_index(i: u64, catalog: &[Request]) -> Request {
    let mut req = catalog[usize::try_from(i % catalog.len() as u64).unwrap_or(0)];
    req.seed = 1000 + (i % 64);
    req
}

#[derive(Default)]
struct Tally {
    sent: u64,
    replies: u64,
    shed: u64,
    errors: u64,
    mismatches: u64,
    latencies: Vec<u64>,
}

/// Runs the generator and aggregates the report.
///
/// # Errors
///
/// Returns an error if no connection could be established; transport
/// errors after that are counted, not fatal.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let connections = config.connections.max(1);
    let rps = config.rps.max(1);
    let catalog = catalog();
    // Fail fast if the server is not there at all.
    let probe = TcpStream::connect(&config.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", config.addr))?;
    drop(probe);
    let verifier = config
        .verify_offline
        .then(|| Engine::new(catalog.len() * 2));
    let verifier = verifier.as_ref();
    let total = Mutex::new(Tally::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for lane in 0..connections {
            let catalog = &catalog;
            let total = &total;
            let config = &config;
            scope.spawn(move || {
                let tally = sender_loop(
                    config,
                    catalog,
                    verifier,
                    lane as u64,
                    connections as u64,
                    rps,
                    start,
                );
                let mut total = total.lock();
                total.sent += tally.sent;
                total.replies += tally.replies;
                total.shed += tally.shed;
                total.errors += tally.errors;
                total.mismatches += tally.mismatches;
                total.latencies.extend(tally.latencies);
            });
        }
    });
    Ok(finish_report(total.into_inner(), start.elapsed()))
}

/// Folds a run's tally into the final report (sorts latencies once).
#[allow(clippy::cast_precision_loss)] // reply counts → rps display
fn finish_report(mut total: Tally, elapsed: Duration) -> LoadgenReport {
    total.latencies.sort_unstable();
    let percentile = |p: u64| -> u64 {
        if total.latencies.is_empty() {
            return 0;
        }
        let rank = (total.latencies.len() - 1) * usize::try_from(p).unwrap_or(0) / 100;
        total.latencies[rank]
    };
    LoadgenReport {
        sent: total.sent,
        replies: total.replies,
        shed: total.shed,
        errors: total.errors,
        mismatches: total.mismatches,
        elapsed,
        achieved_rps: if elapsed.as_secs_f64() > 0.0 {
            total.replies as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        p50_micros: percentile(50),
        p95_micros: percentile(95),
        p99_micros: percentile(99),
    }
}

/// Replays a [`Trace`]: each trace lane gets its own persistent
/// connection, every event is sent at its recorded offset (falling
/// behind shows up as achieved-rps, exactly like the open-loop
/// schedule), and tenant fields ride the wire as recorded.
///
/// # Errors
///
/// Returns an error if no connection could be established; transport
/// errors after that are counted, not fatal.
pub fn run_trace(config: &LoadgenConfig, trace: &Trace) -> Result<LoadgenReport, String> {
    let catalog = catalog();
    let probe = TcpStream::connect(&config.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", config.addr))?;
    drop(probe);
    let verifier = config
        .verify_offline
        .then(|| Engine::new(catalog.len() * 2));
    let verifier = verifier.as_ref();
    let lanes = usize::try_from(trace.lanes).unwrap_or(1).max(1);
    let mut per_lane: Vec<Vec<&TraceEvent>> = vec![Vec::new(); lanes];
    for event in &trace.events {
        per_lane[usize::try_from(event.lane).unwrap_or(0) % lanes].push(event);
    }
    let total = Mutex::new(Tally::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for events in &per_lane {
            let catalog = &catalog;
            let total = &total;
            let config = &config;
            scope.spawn(move || {
                let tally = trace_lane_loop(config, catalog, verifier, events, start);
                let mut total = total.lock();
                total.sent += tally.sent;
                total.replies += tally.replies;
                total.shed += tally.shed;
                total.errors += tally.errors;
                total.mismatches += tally.mismatches;
                total.latencies.extend(tally.latencies);
            });
        }
    });
    Ok(finish_report(total.into_inner(), start.elapsed()))
}

/// One trace lane: sends its recorded events in order at their
/// recorded offsets over one persistent connection.
fn trace_lane_loop(
    config: &LoadgenConfig,
    catalog: &[Request],
    verifier: Option<&Engine>,
    events: &[&TraceEvent],
    start: Instant,
) -> Tally {
    let mut tally = Tally::default();
    if events.is_empty() {
        return tally;
    }
    let Ok(stream) = TcpStream::connect(&config.addr) else {
        tally.errors += 1;
        return tally;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            tally.errors += 1;
            return tally;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for event in events {
        let due = start + Duration::from_micros(event.at_micros);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let mut request = request_for_index(event.index, catalog);
        request.seed = event.seed;
        let wire = match &event.tenant {
            Some(tenant) => protocol::render_request_tenant(&request, tenant),
            None => protocol::render_request(&request),
        };
        let sent_at = Instant::now();
        if writeln!(writer, "{wire}").is_err() {
            tally.errors += 1;
            break;
        }
        tally.sent += 1;
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                tally.errors += 1;
                break;
            }
            Ok(_) => {
                let micros = u64::try_from(sent_at.elapsed().as_micros()).unwrap_or(u64::MAX);
                record_reply(&mut tally, line.trim(), &request, verifier, micros);
            }
        }
    }
    tally
}

/// One sender: owns one persistent connection and the request indices
/// `lane, lane + connections, lane + 2·connections, …`, each due at
/// `start + index/rps`. With `pipeline > 1` the lane sends a window
/// of consecutive indices in one write (due when the window's first
/// index is due), then drains the window's replies in order — the
/// server's per-connection sequencing guarantees replies come back in
/// send order even when the work completes out of order.
fn sender_loop(
    config: &LoadgenConfig,
    catalog: &[Request],
    verifier: Option<&Engine>,
    lane: u64,
    lanes: u64,
    rps: u64,
    start: Instant,
) -> Tally {
    let mut tally = Tally::default();
    let Ok(stream) = TcpStream::connect(&config.addr) else {
        tally.errors += 1;
        return tally;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            tally.errors += 1;
            return tally;
        }
    };
    let pipeline = config.pipeline.max(1) as u64;
    let mut reader = BufReader::new(stream);
    let mut index = lane;
    let mut line = String::new();
    let mut batch = String::new();
    let mut window: Vec<Request> = Vec::with_capacity(config.pipeline.max(1));
    'lane: loop {
        let due = start + Duration::from_nanos(index.saturating_mul(1_000_000_000) / rps);
        let now = Instant::now();
        if now.duration_since(start) >= config.duration {
            break;
        }
        if due > now {
            std::thread::sleep(due - now);
        }
        batch.clear();
        window.clear();
        for slot in 0..pipeline {
            let request = request_for_index(index + slot * lanes, catalog);
            batch.push_str(&protocol::render_request(&request));
            batch.push('\n');
            window.push(request);
        }
        let sent_at = Instant::now();
        if writer.write_all(batch.as_bytes()).is_err() {
            tally.errors += 1;
            break;
        }
        tally.sent += window.len() as u64;
        for request in &window {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => {
                    tally.errors += 1;
                    break 'lane;
                }
                Ok(_) => {
                    let micros = u64::try_from(sent_at.elapsed().as_micros()).unwrap_or(u64::MAX);
                    record_reply(&mut tally, line.trim(), request, verifier, micros);
                }
            }
        }
        index += lanes * pipeline;
    }
    tally
}

fn record_reply(
    tally: &mut Tally,
    line: &str,
    request: &Request,
    verifier: Option<&Engine>,
    micros: u64,
) {
    match ReplyLine::parse(line) {
        Ok(ReplyLine::Reply(reply)) => {
            tally.replies += 1;
            tally.latencies.push(micros);
            if let Some(engine) = verifier {
                match engine.handle(request) {
                    Ok(expected)
                        if expected.verdict == reply.verdict
                            && expected.p_hat.to_bits() == reply.p_hat.to_bits()
                            && expected.wilson_lo.to_bits() == reply.wilson_lo.to_bits()
                            && expected.wilson_hi.to_bits() == reply.wilson_hi.to_bits() => {}
                    _ => tally.mismatches += 1,
                }
            }
        }
        Ok(ReplyLine::Overloaded) => tally.shed += 1,
        Ok(ReplyLine::Error(_) | ReplyLine::ShutdownAck) | Err(_) => tally.errors += 1,
    }
}

/// Connects, sends one `{"cmd":"stats"}`, and parses the reply.
///
/// # Errors
///
/// Returns an error if the server cannot be reached or the reply is
/// not a stats line.
pub fn fetch_stats(addr: &str) -> Result<Stats, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    writeln!(writer, "{{\"cmd\":\"stats\"}}").map_err(|e| format!("cannot send stats: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let got = reader
        .read_line(&mut line)
        .map_err(|e| format!("no stats reply: {e}"))?;
    if got == 0 {
        return Err("server closed before replying to stats".to_owned());
    }
    Stats::parse(line.trim())
}

/// Server-side accounting cross-checked against the client's tally.
#[derive(Debug, Clone)]
pub struct StatsCheck {
    /// Stats snapshot taken before the first request was sent.
    pub pre: Stats,
    /// Stats snapshot taken after the last reply was read.
    pub post: Stats,
    /// Successful mid-load stats polls (the server answered admin
    /// commands while under load).
    pub mid_polls: u64,
    /// Human-readable inconsistencies; empty means the check passed.
    pub failures: Vec<String>,
}

impl StatsCheck {
    /// Whether every consistency assertion held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares a pre/post stats delta against the client-side report.
/// The deltas make the check robust to whatever traffic the server
/// saw before this run — but they assume *this* loadgen was the only
/// source of `run` traffic in between.
#[must_use]
pub fn check_consistency(pre: &Stats, post: &Stats, report: &LoadgenReport) -> Vec<String> {
    let mut failures = Vec::new();
    let served = post.requests.saturating_sub(pre.requests);
    if served != report.replies {
        failures.push(format!(
            "server answered {served} requests but loadgen saw {} replies",
            report.replies
        ));
    }
    let hits = post.cache_hits.saturating_sub(pre.cache_hits);
    let misses = post.cache_misses.saturating_sub(pre.cache_misses);
    if hits + misses != served {
        failures.push(format!(
            "cache lookups ({hits} hits + {misses} misses) != {served} requests served"
        ));
    }
    if post.shed.saturating_sub(pre.shed) < report.shed {
        failures.push(format!(
            "server counted {} sheds but loadgen received {} overloaded replies",
            post.shed.saturating_sub(pre.shed),
            report.shed
        ));
    }
    if !(post.p50_micros <= post.p95_micros && post.p95_micros <= post.p99_micros) {
        failures.push(format!(
            "windowed quantiles out of order: p50 {} p95 {} p99 {}",
            post.p50_micros, post.p95_micros, post.p99_micros
        ));
    }
    if served > 0 && post.p99_micros <= 0.0 {
        failures.push("requests were served but windowed p99 is zero".to_owned());
    }
    // Queue-wait sanity: with per-request scheduling, a run that shed
    // nothing must show a queue-wait p99 below the latency target.
    // (Under the old connection-pinned dispatch this number was the
    // whole-connection queue time and blew past the target on
    // perfectly healthy runs.)
    #[allow(clippy::cast_precision_loss)]
    let target = post.p99_target_micros as f64;
    if post.shed.saturating_sub(pre.shed) == 0
        && served > 0
        && target > 0.0
        && post.queue_wait_p99 >= target
    {
        failures.push(format!(
            "queue-wait p99 {}us reached the {}us latency target on a shed-free run — per-request scheduling delay should be far below it",
            post.queue_wait_p99, post.p99_target_micros
        ));
    }
    failures
}

/// Runs the generator with the stats cross-check wrapped around it:
/// snapshot before, poll `{"cmd":"stats"}` from a side thread during
/// the run (proving the admin plane answers under load), snapshot
/// after, and compare the server's accounting to the client's.
///
/// # Errors
///
/// Returns an error when the server is unreachable or a stats
/// snapshot fails; accounting *inconsistencies* are reported in the
/// returned [`StatsCheck`], not as errors.
pub fn run_checked(config: &LoadgenConfig) -> Result<(LoadgenReport, StatsCheck), String> {
    let pre = fetch_stats(&config.addr)?;
    let stop = AtomicBool::new(false);
    let mid_polls = AtomicU64::new(0);
    let report = std::thread::scope(|scope| {
        let poller = scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                if fetch_stats(&config.addr).is_ok() {
                    mid_polls.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        });
        let report = run(config);
        stop.store(true, Ordering::Relaxed);
        let _ = poller.join();
        report
    })?;
    let post = fetch_stats(&config.addr)?;
    let failures = check_consistency(&pre, &post, &report);
    Ok((
        report,
        StatsCheck {
            pre,
            post,
            mid_polls: mid_polls.load(Ordering::Relaxed),
            failures,
        },
    ))
}

/// Renders a bench artifact: the client-side report plus, when given,
/// the server's post-run stats line under `"server"`.
#[must_use]
pub fn bench_json(report: &LoadgenReport, stats: Option<&Stats>) -> String {
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"schema\":\"{BENCH_SCHEMA}\",\"sent\":{},\"replies\":{},\"shed\":{},\"errors\":{},\"mismatches\":{}",
        report.sent, report.replies, report.shed, report.errors, report.mismatches
    );
    let _ = write!(
        out,
        ",\"elapsed_us\":{}",
        u64::try_from(report.elapsed.as_micros()).unwrap_or(u64::MAX)
    );
    out.push_str(",\"achieved_rps\":");
    json::write_f64(&mut out, report.achieved_rps);
    let _ = write!(
        out,
        ",\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}",
        report.p50_micros, report.p95_micros, report.p99_micros
    );
    // First-class in v2: the server's windowed queue-wait p99, the
    // request-scheduling-delay number the bench trajectory tracks.
    out.push_str(",\"queue_wait_p99_us\":");
    json::write_f64(&mut out, stats.map_or(0.0, |s| s.queue_wait_p99));
    if let Some(stats) = stats {
        let _ = write!(out, ",\"server\":{}", stats.render());
    }
    out.push('}');
    out
}

/// Validates a bench artifact against the `dut-bench-serve/v2`
/// schema (`v1` artifacts are also accepted): the tag, every required
/// field with the right type, and the internal invariants (replies ≤
/// sent, ordered quantiles, and — v2, shed-free runs only — a sane
/// queue-wait p99).
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_bench_json(text: &str) -> Result<(), String> {
    let doc = json::parse(text.trim()).map_err(|e| format!("not JSON: {e}"))?;
    let v2 = match doc.get("schema") {
        Some(Json::Str(s)) if s == BENCH_SCHEMA => true,
        Some(Json::Str(s)) if s == BENCH_SCHEMA_V1 => false,
        Some(Json::Str(s)) => {
            return Err(format!(
                "schema is `{s}`, expected `{BENCH_SCHEMA}` (or legacy `{BENCH_SCHEMA_V1}`)"
            ))
        }
        _ => return Err("missing `schema` tag".to_owned()),
    };
    let need_u64 = |key: &str| -> Result<u64, String> {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or non-integer `{key}`"))
    };
    let sent = need_u64("sent")?;
    let replies = need_u64("replies")?;
    let shed = need_u64("shed")?;
    need_u64("errors")?;
    need_u64("mismatches")?;
    need_u64("elapsed_us")?;
    if v2 {
        let queue_wait = doc
            .get("queue_wait_p99_us")
            .and_then(Json::as_f64)
            .ok_or("missing or non-numeric `queue_wait_p99_us` (required by v2)")?;
        if shed == 0 && queue_wait >= SANE_QUEUE_WAIT_MICROS {
            return Err(format!(
                "queue_wait_p99_us {queue_wait} on a shed-free run (v2 requires < {SANE_QUEUE_WAIT_MICROS})"
            ));
        }
    }
    let p50 = need_u64("p50_us")?;
    let p95 = need_u64("p95_us")?;
    let p99 = need_u64("p99_us")?;
    if doc.get("achieved_rps").and_then(Json::as_f64).is_none() {
        return Err("missing or non-numeric `achieved_rps`".to_owned());
    }
    if replies > sent {
        return Err(format!("{replies} replies exceed {sent} sends"));
    }
    if !(p50 <= p95 && p95 <= p99) {
        return Err(format!(
            "quantiles out of order: p50 {p50} p95 {p95} p99 {p99}"
        ));
    }
    if let Some(server) = doc.get("server") {
        // The embedded server stats must themselves parse.
        let mut line = String::new();
        json::write(&mut line, server);
        Stats::parse(&line).map_err(|e| format!("embedded `server` stats invalid: {e}"))?;
    }
    Ok(())
}

/// Connects, sends `{"cmd":"shutdown"}`, and waits for the ack.
///
/// # Errors
///
/// Returns an error if the server cannot be reached or never acks.
pub fn send_shutdown(addr: &str) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    writeln!(writer, "{{\"cmd\":\"shutdown\"}}").map_err(|e| format!("cannot send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("no shutdown ack: {e}"))?;
    match ReplyLine::parse(line.trim())? {
        ReplyLine::ShutdownAck => Ok(()),
        other => Err(format!("unexpected shutdown reply: {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_distinct_cache_keys() {
        use crate::engine::CacheKey;
        let catalog = catalog();
        let keys: std::collections::BTreeSet<_> = catalog.iter().map(CacheKey::of).collect();
        assert_eq!(keys.len(), catalog.len());
    }

    #[test]
    fn index_mapping_cycles_and_reseeds() {
        let catalog = catalog();
        let a = request_for_index(0, &catalog);
        let b = request_for_index(4, &catalog);
        // Same configuration, different seed.
        assert_eq!(
            crate::engine::CacheKey::of(&a),
            crate::engine::CacheKey::of(&b)
        );
        assert_ne!(a.seed, b.seed);
        let c = request_for_index(1, &catalog);
        assert_ne!(
            crate::engine::CacheKey::of(&a),
            crate::engine::CacheKey::of(&c)
        );
    }

    #[test]
    fn unreachable_server_is_an_error() {
        let config = LoadgenConfig {
            // Port 1 on loopback: refused immediately, no server.
            addr: "127.0.0.1:1".to_owned(),
            duration: Duration::from_millis(10),
            ..LoadgenConfig::default()
        };
        assert!(run(&config).is_err());
        assert!(send_shutdown(&config.addr).is_err());
        assert!(fetch_stats(&config.addr).is_err());
        assert!(run_checked(&config).is_err());
    }

    fn report() -> LoadgenReport {
        LoadgenReport {
            sent: 100,
            replies: 90,
            shed: 10,
            errors: 0,
            mismatches: 0,
            elapsed: Duration::from_secs(2),
            achieved_rps: 45.0,
            p50_micros: 100,
            p95_micros: 300,
            p99_micros: 900,
        }
    }

    #[test]
    fn bench_json_passes_its_own_validator() {
        let line = bench_json(&report(), None);
        check_bench_json(&line).unwrap();
        // With embedded server stats too.
        let line = bench_json(&report(), Some(&Stats::default()));
        check_bench_json(&line).unwrap();
    }

    #[test]
    fn bench_validator_rejects_bad_artifacts() {
        assert!(check_bench_json("not json").is_err());
        assert!(check_bench_json("{\"schema\":\"dut-bench-serve/v0\"}").is_err());
        let missing = "{\"schema\":\"dut-bench-serve/v1\",\"sent\":5}";
        assert!(check_bench_json(missing).unwrap_err().contains("replies"));
        let inverted = bench_json(
            &LoadgenReport {
                p50_micros: 900,
                p99_micros: 100,
                ..report()
            },
            None,
        );
        assert!(check_bench_json(&inverted).unwrap_err().contains("order"));
        let overcounted = bench_json(
            &LoadgenReport {
                replies: 200,
                ..report()
            },
            None,
        );
        assert!(check_bench_json(&overcounted)
            .unwrap_err()
            .contains("exceed"));
    }

    #[test]
    fn bench_validator_accepts_legacy_v1_artifacts() {
        // A v1 line has no `queue_wait_p99_us`; it must still pass.
        let v1 = "{\"schema\":\"dut-bench-serve/v1\",\"sent\":100,\"replies\":90,\
                  \"shed\":10,\"errors\":0,\"mismatches\":0,\"elapsed_us\":2000000,\
                  \"achieved_rps\":45,\"p50_us\":100,\"p95_us\":300,\"p99_us\":900}";
        check_bench_json(v1).unwrap();
    }

    #[test]
    fn v2_requires_a_sane_queue_wait_on_shed_free_runs() {
        let shed_free = LoadgenReport {
            shed: 0,
            ..report()
        };
        let healthy = Stats {
            queue_wait_p99: 500.0,
            ..Stats::default()
        };
        check_bench_json(&bench_json(&shed_free, Some(&healthy))).unwrap();
        let mismeasured = Stats {
            queue_wait_p99: 1_572_863.5, // the committed v1 baseline's value
            ..Stats::default()
        };
        let line = bench_json(&shed_free, Some(&mismeasured));
        assert!(check_bench_json(&line)
            .unwrap_err()
            .contains("queue_wait_p99_us"));
        // A run that shed is allowed a backed-up queue.
        let line = bench_json(&report(), Some(&mismeasured));
        check_bench_json(&line).unwrap();
    }

    #[test]
    fn consistency_flags_an_insane_queue_wait() {
        let pre = Stats::default();
        let post = Stats {
            requests: 100,
            cache_hits: 100,
            p50_micros: 50.0,
            p95_micros: 80.0,
            p99_micros: 95.0,
            queue_wait_p99: 1_572_863.5,
            p99_target_micros: 250_000,
            ..Stats::default()
        };
        let report = LoadgenReport {
            sent: 100,
            replies: 100,
            shed: 0,
            elapsed: Duration::from_secs(1),
            ..LoadgenReport::default()
        };
        let failures = check_consistency(&pre, &post, &report);
        assert!(
            failures.iter().any(|f| f.contains("queue-wait")),
            "{failures:?}"
        );
        let sane = Stats {
            queue_wait_p99: 900.0,
            ..post
        };
        assert!(check_consistency(&pre, &sane, &report).is_empty());
    }

    #[test]
    fn trace_replay_partitions_events_by_lane() {
        // Replay against nothing: unreachable server is an error, but
        // the trace machinery itself is exercised via generate/parse
        // round trips in `trace::tests`; here we only pin the error
        // path so `--trace` against a dead server fails loudly.
        let trace = crate::trace::generate(&crate::trace::TraceConfig {
            duration: Duration::from_millis(20),
            ..crate::trace::TraceConfig::default()
        });
        let config = LoadgenConfig {
            addr: "127.0.0.1:1".to_owned(),
            ..LoadgenConfig::default()
        };
        assert!(run_trace(&config, &trace).is_err());
    }

    #[test]
    fn consistency_check_compares_deltas() {
        let pre = Stats {
            requests: 10,
            cache_hits: 6,
            cache_misses: 4,
            ..Stats::default()
        };
        let post = Stats {
            requests: 100,
            cache_hits: 80,
            cache_misses: 20,
            shed: 10,
            p50_micros: 50.0,
            p95_micros: 80.0,
            p99_micros: 95.0,
            ..Stats::default()
        };
        let report = LoadgenReport {
            replies: 90,
            shed: 10,
            ..report()
        };
        assert!(check_consistency(&pre, &post, &report).is_empty());
        // A lost reply shows up as a request-count mismatch.
        let short = LoadgenReport {
            replies: 89,
            ..report
        };
        let failures = check_consistency(&pre, &post, &short);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("89"));
        // Broken cache accounting is its own failure.
        let bad_cache = Stats {
            cache_hits: 70,
            ..post.clone()
        };
        let failures = check_consistency(&pre, &bad_cache, &report);
        assert!(failures.iter().any(|f| f.contains("cache lookups")));
    }
}
