use crate::centralized::CentralizedTester;
use dut_probability::Histogram;
use dut_simnet::Verdict;

/// The unique-elements tester: counts the domain elements observed
/// **exactly once** and rejects when there are too few.
///
/// Under uniform, the expected singleton count of `q` samples is
/// `q·(1 − 1/n)^{q−1}`; non-uniformity concentrates mass and destroys
/// singletons (Jensen: `Σ q·p_i(1−p_i)^{q−1}` is maximized at the
/// uniform vector for `q ≤ n`-ish regimes). This is the statistic of
/// Paninski's original analysis and a useful cross-check on the
/// collision/coincidence testers: same `Θ(√n/ε²)` scaling through a
/// different moment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniqueElementsTester {
    n: usize,
    epsilon: f64,
}

impl UniqueElementsTester {
    /// Creates the tester for domain size `n` and proximity `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `epsilon ∉ (0, 1]`.
    #[must_use]
    pub fn new(n: usize, epsilon: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        Self { n, epsilon }
    }

    /// Exact expected singleton count of `q` samples from a
    /// distribution with the given point masses.
    #[must_use]
    pub fn expected_singletons(probs: &[f64], q: usize) -> f64 {
        let q_f = q as f64;
        probs
            .iter()
            .map(|&p| q_f * p * (1.0 - p).powf(q_f - 1.0))
            .sum()
    }

    /// Expected singletons under uniform.
    #[must_use]
    pub fn uniform_expectation(&self, q: usize) -> f64 {
        let p = 1.0 / self.n as f64;
        q as f64 * (1.0 - p).powf(q as f64 - 1.0)
    }

    /// Expected singletons under the extremal two-level ε-far instance.
    #[must_use]
    pub fn far_expectation(&self, q: usize) -> f64 {
        let hi = (1.0 + self.epsilon) / self.n as f64;
        let lo = (1.0 - self.epsilon) / self.n as f64;
        let q_f = q as f64;
        (self.n as f64 / 2.0)
            * (q_f * hi * (1.0 - hi).powf(q_f - 1.0) + q_f * lo * (1.0 - lo).powf(q_f - 1.0))
    }

    /// The rejection threshold: **fewer** singletons than the midpoint
    /// of the uniform and far expectations.
    #[must_use]
    pub fn threshold(&self, q: usize) -> f64 {
        0.5 * (self.uniform_expectation(q) + self.far_expectation(q))
    }
}

impl CentralizedTester for UniqueElementsTester {
    fn test(&self, samples: &[usize]) -> Verdict {
        if samples.len() < 2 {
            return Verdict::Accept;
        }
        let singletons = Histogram::from_samples(self.n, samples).singleton_count() as f64;
        Verdict::from_accept_bit(singletons >= self.threshold(samples.len()))
    }

    fn recommended_sample_count(&self) -> usize {
        let q = 6.0 * (self.n as f64).sqrt() / (self.epsilon * self.epsilon);
        dut_stats::convert::ceil_to_usize(q).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::test_support::acceptance_rate;
    use dut_probability::families;

    #[test]
    fn uniform_maximizes_expected_singletons() {
        let n = 64;
        let q = 48;
        let uniform = vec![1.0 / n as f64; n];
        let expected_uniform = UniqueElementsTester::expected_singletons(&uniform, q);
        for &eps in &[0.2, 0.5, 0.9] {
            let far = families::two_level(n, eps).unwrap();
            let expected_far = UniqueElementsTester::expected_singletons(far.probs(), q);
            assert!(
                expected_far < expected_uniform,
                "eps = {eps}: {expected_far} >= {expected_uniform}"
            );
        }
    }

    #[test]
    fn accepts_uniform() {
        let n = 1 << 10;
        let tester = UniqueElementsTester::new(n, 0.5);
        let q = tester.recommended_sample_count();
        let rate = acceptance_rate(&tester, &families::uniform(n), q, 200, 73);
        assert!(rate > 2.0 / 3.0, "acceptance under uniform = {rate}");
    }

    #[test]
    fn rejects_far() {
        let n = 1 << 10;
        let eps = 0.5;
        let tester = UniqueElementsTester::new(n, eps);
        let q = tester.recommended_sample_count();
        let far = families::two_level(n, eps).unwrap();
        let rate = acceptance_rate(&tester, &far, q, 200, 79);
        assert!(rate < 1.0 / 3.0, "acceptance under far = {rate}");
    }

    #[test]
    fn rejects_point_mass_decisively() {
        let n = 256;
        let tester = UniqueElementsTester::new(n, 0.9);
        let point = families::point_mass(n, 3).unwrap();
        let q = tester.recommended_sample_count();
        let rate = acceptance_rate(&tester, &point, q, 50, 83);
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn threshold_sits_between_expectations() {
        let tester = UniqueElementsTester::new(128, 0.6);
        for &q in &[16usize, 64, 256] {
            let t = tester.threshold(q);
            assert!(t < tester.uniform_expectation(q));
            assert!(t > tester.far_expectation(q));
        }
    }

    #[test]
    fn tiny_samples_accept() {
        let tester = UniqueElementsTester::new(8, 0.5);
        assert!(tester.test(&[]).is_accept());
        assert!(tester.test(&[3]).is_accept());
    }

    #[test]
    fn exact_singleton_formula_matches_simulation() {
        use dut_probability::Sampler;
        use rand::SeedableRng;
        let n = 32;
        let q = 40;
        let d = families::zipf(n, 0.8).unwrap();
        let sampler = d.alias_sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(89);
        let trials = 4000;
        let mean: f64 = (0..trials)
            .map(|_| {
                Histogram::from_samples(n, &sampler.sample_many(q, &mut rng)).singleton_count()
                    as f64
            })
            .sum::<f64>()
            / f64::from(trials);
        let predicted = UniqueElementsTester::expected_singletons(d.probs(), q);
        assert!(
            (mean - predicted).abs() < 0.25,
            "mean {mean} vs predicted {predicted}"
        );
    }
}
