use crate::centralized::CentralizedTester;
use dut_probability::empirical::coincidence_count_of;
use dut_simnet::Verdict;

/// Paninski's coincidence tester: counts `q − #distinct` (the number of
/// "coincidences") and rejects when it exceeds a midpoint threshold.
///
/// In the sparse regime `q = O(√n)` the coincidence count is essentially
/// the collision count (triple collisions are rare), and Paninski (2008)
/// showed this statistic is optimal: `Θ(√n/ε²)` samples.
///
/// The expected coincidence count under uniform is
/// `q − n·(1 − (1 − 1/n)^q)`; this tester uses that exact expression
/// rather than the `C(q,2)/n` approximation, so it stays honest even
/// when `q` is a noticeable fraction of `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaninskiTester {
    n: usize,
    epsilon: f64,
}

impl PaninskiTester {
    /// Creates the tester for domain size `n` and proximity `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `epsilon ∉ (0, 1]`.
    #[must_use]
    pub fn new(n: usize, epsilon: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        Self { n, epsilon }
    }

    /// Expected coincidences of `q` uniform samples (exact).
    #[must_use]
    pub fn uniform_expectation(&self, q: usize) -> f64 {
        let n = self.n as f64;
        let q_f = q as f64;
        q_f - n * (1.0 - (1.0 - 1.0 / n).powf(q_f))
    }

    /// Expected coincidences of `q` samples from the canonical extremal
    /// ε-far instance (the two-level distribution, which minimizes the
    /// collision probability among ε-far distributions): exact
    /// `q − Σ_i (1 − (1 − p_i)^q)` with `p_i = (1±ε)/n`.
    #[must_use]
    pub fn far_expectation(&self, q: usize) -> f64 {
        let n = self.n as f64;
        let q_f = q as f64;
        let hi = (1.0 + self.epsilon) / n;
        let lo = (1.0 - self.epsilon) / n;
        let expected_distinct =
            (n / 2.0) * (1.0 - (1.0 - hi).powf(q_f)) + (n / 2.0) * (1.0 - (1.0 - lo).powf(q_f));
        q_f - expected_distinct
    }

    /// The rejection threshold for `q` samples: the midpoint between the
    /// exact uniform expectation and the exact two-level far
    /// expectation. (Unlike the naive `ε²·C(q,2)/(2n)` excess, this stays
    /// correctly positioned when `q` is a noticeable fraction of `n` and
    /// the coincidence count saturates.)
    #[must_use]
    pub fn threshold(&self, q: usize) -> f64 {
        0.5 * (self.uniform_expectation(q) + self.far_expectation(q))
    }
}

impl CentralizedTester for PaninskiTester {
    fn test(&self, samples: &[usize]) -> Verdict {
        let stat = coincidence_count_of(samples) as f64;
        Verdict::from_accept_bit(stat <= self.threshold(samples.len()))
    }

    fn recommended_sample_count(&self) -> usize {
        let q = 4.0 * (self.n as f64).sqrt() / (self.epsilon * self.epsilon);
        dut_stats::convert::ceil_to_usize(q).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::test_support::acceptance_rate;
    use dut_probability::families;

    #[test]
    fn accepts_uniform() {
        let n = 1 << 10;
        let tester = PaninskiTester::new(n, 0.5);
        let q = tester.recommended_sample_count();
        let rate = acceptance_rate(&tester, &families::uniform(n), q, 300, 21);
        assert!(rate > 0.8, "acceptance under uniform = {rate}");
    }

    #[test]
    fn rejects_far() {
        let n = 1 << 10;
        let tester = PaninskiTester::new(n, 0.5);
        let q = tester.recommended_sample_count();
        let far = families::two_level(n, 0.5).unwrap();
        let rate = acceptance_rate(&tester, &far, q, 300, 23);
        assert!(rate < 0.2, "acceptance under far = {rate}");
    }

    #[test]
    fn uniform_expectation_exact_small_case() {
        // n=2, q=2: coincidences = 1 with prob 1/2, else 0 -> E = 1/2.
        let tester = PaninskiTester::new(2, 0.5);
        assert!((tester.uniform_expectation(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_above_uniform_expectation() {
        let tester = PaninskiTester::new(64, 0.4);
        for q in [2usize, 8, 32] {
            assert!(tester.threshold(q) > tester.uniform_expectation(q));
        }
    }

    #[test]
    fn agrees_with_collision_tester_in_sparse_regime() {
        // With q << sqrt(n) both statistics almost always coincide.
        let n = 1 << 14;
        let q = 30;
        let paninski = PaninskiTester::new(n, 0.9);
        let uniform_rate = acceptance_rate(&paninski, &families::uniform(n), q, 200, 29);
        assert!(uniform_rate > 0.9);
    }

    #[test]
    fn empty_sample_accepts() {
        let tester = PaninskiTester::new(8, 0.5);
        assert!(tester.test(&[]).is_accept());
    }
}
