use crate::centralized::CentralizedTester;
use dut_probability::{DenseDistribution, Histogram};
use dut_simnet::Verdict;

/// A χ²-style identity tester against an arbitrary known reference
/// distribution `η` (Diakonikolas–Kane style statistic).
///
/// The statistic is the collision-corrected Pearson sum
/// `Z = Σ_i ((c_i − q·η_i)² − c_i) / (q·η_i)`.
/// With multinomial counts `c_i ~ Bin(q, μ_i)` the statistic separates
/// the null from far inputs in expectation: `E[Z | μ=η] = −1` (up to a
/// vanishing `O(‖η‖₂²)` term), while for inputs ε-far in ℓ₁ from a
/// uniform reference `E[Z] ≥ (q−1)·ε² − 1` by Cauchy–Schwarz. The
/// decision threshold sits at the midpoint of those two means; see
/// [`Chi2Tester::threshold`].
#[derive(Debug, Clone, PartialEq)]
pub struct Chi2Tester {
    reference: DenseDistribution,
    epsilon: f64,
}

impl Chi2Tester {
    /// Creates the tester for a reference distribution and proximity.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ (0, 1]` or the reference has a zero-mass
    /// element (the χ² statistic needs full support; use
    /// [`crate::reduction`] to reduce general identity testing to
    /// uniformity instead).
    #[must_use]
    pub fn new(reference: DenseDistribution, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        assert!(
            reference.probs().iter().all(|&p| p > 0.0),
            "chi-squared identity testing needs a fully-supported reference"
        );
        Self { reference, epsilon }
    }

    /// Uniformity special case.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `epsilon ∉ (0, 1]`.
    #[must_use]
    pub fn uniform(n: usize, epsilon: f64) -> Self {
        Self::new(DenseDistribution::uniform(n), epsilon)
    }

    /// The reference distribution.
    #[must_use]
    pub fn reference(&self) -> &DenseDistribution {
        &self.reference
    }

    /// Decision threshold for `q` samples.
    ///
    /// Exact means of the statistic with multinomial counts:
    /// under `μ = η` it is `−1`; under `μ` at ℓ₁ distance ≥ ε from the
    /// *uniform* reference it is
    /// `(q−1)·n·‖μ−u‖₂² − 1 ≥ (q−1)·ε² − 1` (Cauchy–Schwarz). The
    /// threshold sits at the midpoint `−1 + (q−1)ε²/2`. For a general
    /// reference the same form holds with `χ²(μ,η) ≥ ε²` replacing
    /// `n‖μ−u‖₂²`.
    #[must_use]
    pub fn threshold(&self, q: usize) -> f64 {
        -1.0 + (q.saturating_sub(1)) as f64 * self.epsilon * self.epsilon / 2.0
    }

    /// The raw statistic for a sample multiset.
    ///
    /// # Panics
    ///
    /// Panics if any sample is out of the reference's range, or
    /// `samples` is empty.
    #[must_use]
    pub fn statistic(&self, samples: &[usize]) -> f64 {
        let hist = Histogram::from_samples(self.reference.support_size(), samples);
        hist.corrected_chi2_statistic(&self.reference)
    }
}

impl CentralizedTester for Chi2Tester {
    fn test(&self, samples: &[usize]) -> Verdict {
        if samples.is_empty() {
            return Verdict::Accept;
        }
        Verdict::from_accept_bit(self.statistic(samples) <= self.threshold(samples.len()))
    }

    fn recommended_sample_count(&self) -> usize {
        let n = self.reference.support_size() as f64;
        let q = 5.0 * n.sqrt() / (self.epsilon * self.epsilon);
        dut_stats::convert::ceil_to_usize(q).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::test_support::acceptance_rate;
    use dut_probability::families;

    #[test]
    fn accepts_matching_reference_uniform() {
        let n = 1 << 10;
        let tester = Chi2Tester::uniform(n, 0.5);
        let q = tester.recommended_sample_count();
        let rate = acceptance_rate(&tester, &families::uniform(n), q, 300, 31);
        assert!(rate > 0.8, "acceptance under uniform = {rate}");
    }

    #[test]
    fn rejects_far_from_uniform() {
        let n = 1 << 10;
        let tester = Chi2Tester::uniform(n, 0.5);
        let q = tester.recommended_sample_count();
        let far = families::two_level(n, 0.5).unwrap();
        let rate = acceptance_rate(&tester, &far, q, 300, 37);
        assert!(rate < 0.2, "acceptance under far = {rate}");
    }

    #[test]
    fn identity_testing_against_zipf() {
        let n = 256;
        let eps = 0.5;
        let zipf = families::zipf(n, 0.7).unwrap();
        let tester = Chi2Tester::new(zipf.clone(), eps);
        let q = 4 * tester.recommended_sample_count();
        // Matching input accepts.
        let accept = acceptance_rate(&tester, &zipf, q, 200, 41);
        assert!(accept > 0.8, "acceptance on matching zipf = {accept}");
        // Uniform input (which is far from this zipf) rejects.
        let u = families::uniform(n);
        let dist = dut_probability::distance::l1_distance(&zipf, &u);
        assert!(
            dist > eps,
            "test precondition: zipf is {dist}-far from uniform"
        );
        let reject = acceptance_rate(&tester, &u, q, 200, 43);
        assert!(reject < 0.2, "acceptance on far input = {reject}");
    }

    #[test]
    fn threshold_midpoint_position() {
        let tester = Chi2Tester::uniform(64, 0.4);
        // Under eta: mean -1; under far: >= (q-1)eps^2 - 1.
        let q = 100;
        let t = tester.threshold(q);
        assert!(t > -1.0);
        assert!(t < (q - 1) as f64 * 0.16 - 1.0);
    }

    #[test]
    fn empty_samples_accept() {
        let tester = Chi2Tester::uniform(8, 0.5);
        assert!(tester.test(&[]).is_accept());
    }

    #[test]
    #[should_panic(expected = "fully-supported")]
    fn rejects_partial_support_reference() {
        let eta = DenseDistribution::new(vec![1.0, 0.0]).unwrap();
        let _ = Chi2Tester::new(eta, 0.5);
    }
}
