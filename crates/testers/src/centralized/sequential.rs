use dut_probability::Sampler;
use dut_simnet::Verdict;
use rand::Rng;

/// Wald's sequential probability ratio test (SPRT) for uniformity —
/// an *adaptive* tester that draws samples until confident, rather
/// than committing to a fixed budget.
///
/// Samples are consumed in disjoint pairs; each pair collides with
/// probability `p₀ = 1/n` under uniform and `p₁ ≥ (1+ε²)/n` under any
/// ε-far distribution, so the pair-collision indicators are iid
/// Bernoulli and the textbook SPRT applies exactly:
/// accumulate `log(P₁(outcome)/P₀(outcome))` and stop when the sum
/// leaves `[log β/(1−α), log (1−β)/α]`.
///
/// Disjoint pairing discards the cross-pair collisions — and with them
/// the birthday-paradox advantage: under uniform the SPRT needs
/// `Θ(n/ε⁴)` samples where batch statistics need `Θ(√n/ε²)`. What it
/// buys is exact Wald error control and early stopping: on inputs
/// *very* far from uniform the expected sample count collapses (a
/// point mass is rejected in a handful of samples). The stopped sample
/// count is the adaptive analogue of the paper's per-player `q`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialUniformityTester {
    n: usize,
    epsilon: f64,
    alpha: f64,
    beta: f64,
    max_pairs: usize,
}

/// The outcome of a sequential test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialOutcome {
    /// The verdict (at the stopping boundary, or by final LLR sign if
    /// the pair budget ran out).
    pub verdict: Verdict,
    /// Samples actually consumed.
    pub samples_used: usize,
    /// The final log-likelihood ratio.
    pub log_likelihood_ratio: f64,
    /// Whether a boundary was hit (false = budget exhausted).
    pub stopped_early: bool,
}

impl SequentialUniformityTester {
    /// Creates the SPRT with two-sided error targets `alpha` (reject
    /// uniform) and `beta` (accept far), both defaulting sensibly via
    /// [`Self::with_default_errors`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `epsilon ∉ (0, 1]`, the error targets are
    /// outside `(0, 0.5)`, or `max_pairs == 0`.
    #[must_use]
    pub fn new(n: usize, epsilon: f64, alpha: f64, beta: f64, max_pairs: usize) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        assert!(
            alpha > 0.0 && alpha < 0.5 && beta > 0.0 && beta < 0.5,
            "error targets must be in (0, 0.5)"
        );
        assert!(max_pairs > 0, "need a positive pair budget");
        Self {
            n,
            epsilon,
            alpha,
            beta,
            max_pairs,
        }
    }

    /// Defaults meeting the paper's 2/3 guarantee: Wald's boundaries
    /// only promise realized errors `≤ α/(1−β)` and `≤ β/(1−α)`, so
    /// targets of 0.2 keep both realized errors below 1/4 < 1/3. Pair
    /// budget `16·n/ε⁴`, far beyond the expected stopping time.
    #[must_use]
    pub fn with_default_errors(n: usize, epsilon: f64) -> Self {
        let e2 = epsilon * epsilon;
        let budget = dut_stats::convert::ceil_to_usize(16.0 * n as f64 / (e2 * e2));
        Self::new(n, epsilon, 0.2, 0.2, budget.max(8))
    }

    /// The Wald boundaries `(lower, upper)` on the log-likelihood
    /// ratio.
    #[must_use]
    pub fn boundaries(&self) -> (f64, f64) {
        (
            (self.beta / (1.0 - self.alpha)).ln(),
            ((1.0 - self.beta) / self.alpha).ln(),
        )
    }

    /// The expected pairs-to-decision under uniform (Wald's
    /// approximation): `E₀[N] ≈ ((1−α)·L + α·U) / E₀[step]`.
    #[must_use]
    pub fn expected_pairs_under_uniform(&self) -> f64 {
        let (low, up) = self.boundaries();
        let p0 = 1.0 / self.n as f64;
        let p1 = (1.0 + self.epsilon * self.epsilon) / self.n as f64;
        let step_hit = (p1 / p0).ln();
        let step_miss = ((1.0 - p1) / (1.0 - p0)).ln();
        let drift = p0 * step_hit + (1.0 - p0) * step_miss;
        ((1.0 - self.alpha) * low + self.alpha * up) / drift
    }

    /// Runs the sequential test against a sampler.
    pub fn run<S, R>(&self, sampler: &S, rng: &mut R) -> SequentialOutcome
    where
        S: Sampler,
        R: Rng + ?Sized,
    {
        let p0 = 1.0 / self.n as f64;
        let p1 = (1.0 + self.epsilon * self.epsilon) / self.n as f64;
        let step_hit = (p1 / p0).ln();
        let step_miss = ((1.0 - p1) / (1.0 - p0)).ln();
        let (low, up) = self.boundaries();
        let mut llr = 0.0f64;
        let mut pairs = 0usize;
        while pairs < self.max_pairs {
            let a = sampler.sample(rng);
            let b = sampler.sample(rng);
            pairs += 1;
            llr += if a == b { step_hit } else { step_miss };
            if llr >= up {
                return SequentialOutcome {
                    verdict: Verdict::Reject,
                    samples_used: 2 * pairs,
                    log_likelihood_ratio: llr,
                    stopped_early: true,
                };
            }
            if llr <= low {
                return SequentialOutcome {
                    verdict: Verdict::Accept,
                    samples_used: 2 * pairs,
                    log_likelihood_ratio: llr,
                    stopped_early: true,
                };
            }
        }
        SequentialOutcome {
            verdict: Verdict::from_accept_bit(llr < 0.0),
            samples_used: 2 * pairs,
            log_likelihood_ratio: llr,
            stopped_early: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_probability::families;
    use rand::SeedableRng;

    fn stats<S: Sampler>(
        tester: &SequentialUniformityTester,
        sampler: &S,
        trials: usize,
        seed: u64,
    ) -> (f64, f64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut accepts = 0usize;
        let mut samples = 0usize;
        for _ in 0..trials {
            let out = tester.run(sampler, &mut rng);
            if out.verdict.is_accept() {
                accepts += 1;
            }
            samples += out.samples_used;
        }
        (
            accepts as f64 / trials as f64,
            samples as f64 / trials as f64,
        )
    }

    #[test]
    fn two_sided_guarantee_holds() {
        let n = 256;
        let eps = 0.7;
        let tester = SequentialUniformityTester::with_default_errors(n, eps);
        let uniform = families::uniform(n).alias_sampler();
        let far = families::two_level(n, eps).unwrap().alias_sampler();
        let (ok, _) = stats(&tester, &uniform, 150, 91);
        let (far_accept, _) = stats(&tester, &far, 150, 93);
        assert!(ok > 2.0 / 3.0, "acceptance under uniform = {ok}");
        assert!(
            far_accept < 1.0 / 3.0,
            "acceptance under far = {far_accept}"
        );
    }

    #[test]
    fn very_far_inputs_stop_much_earlier() {
        let n = 256;
        let tester = SequentialUniformityTester::with_default_errors(n, 0.5);
        let point = families::point_mass(n, 0).unwrap().alias_sampler();
        let uniform = families::uniform(n).alias_sampler();
        let (_, samples_point) = stats(&tester, &point, 60, 97);
        let (_, samples_uniform) = stats(&tester, &uniform, 60, 101);
        assert!(
            samples_point * 5.0 < samples_uniform,
            "point mass {samples_point} vs uniform {samples_uniform}"
        );
    }

    #[test]
    fn wald_expectation_tracks_simulation() {
        let n = 128;
        let eps = 0.8;
        let tester = SequentialUniformityTester::with_default_errors(n, eps);
        let uniform = families::uniform(n).alias_sampler();
        let (_, mean_samples) = stats(&tester, &uniform, 400, 103);
        let predicted_pairs = tester.expected_pairs_under_uniform();
        let mean_pairs = mean_samples / 2.0;
        assert!(
            mean_pairs < 3.0 * predicted_pairs && mean_pairs > predicted_pairs / 3.0,
            "mean pairs {mean_pairs} vs Wald {predicted_pairs}"
        );
    }

    #[test]
    fn boundaries_ordered() {
        let tester = SequentialUniformityTester::new(64, 0.5, 0.1, 0.2, 1000);
        let (low, up) = tester.boundaries();
        assert!(low < 0.0 && up > 0.0);
    }

    #[test]
    fn budget_exhaustion_reports_not_early() {
        let tester = SequentialUniformityTester::new(1 << 14, 0.1, 0.3, 0.3, 3);
        let uniform = families::uniform(1 << 14).alias_sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(107);
        let out = tester.run(&uniform, &mut rng);
        assert!(!out.stopped_early);
        assert_eq!(out.samples_used, 6);
    }

    #[test]
    #[should_panic(expected = "error targets")]
    fn rejects_bad_error_targets() {
        let _ = SequentialUniformityTester::new(16, 0.5, 0.6, 0.1, 10);
    }
}
