//! Centralized uniformity/identity testers: the single-machine baselines
//! every distributed protocol is compared against.

mod chi2;
mod collision;
mod empirical_l1;
mod paninski;
mod sequential;
mod unique;

pub use chi2::Chi2Tester;
pub use collision::CollisionTester;
pub use empirical_l1::EmpiricalL1Tester;
pub use paninski::PaninskiTester;
pub use sequential::{SequentialOutcome, SequentialUniformityTester};
pub use unique::UniqueElementsTester;

use dut_simnet::Verdict;

/// A centralized tester: examines a full sample multiset and decides.
///
/// Implementations are deterministic given the samples; all randomness
/// lives in the sample draw.
pub trait CentralizedTester {
    /// Decides from the full sample multiset.
    fn test(&self, samples: &[usize]) -> Verdict;

    /// A sample count at which the tester is expected to reach the 2/3
    /// two-sided guarantee for its configured `(n, ε)`.
    fn recommended_sample_count(&self) -> usize;
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared helpers for tester unit tests.

    use dut_probability::{DenseDistribution, Sampler};
    use dut_simnet::Verdict;
    use rand::SeedableRng;

    /// Measures the acceptance rate of a tester over repeated fresh draws.
    pub fn acceptance_rate<T: super::CentralizedTester>(
        tester: &T,
        dist: &DenseDistribution,
        q: usize,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let sampler = dist.alias_sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let accepts = (0..trials)
            .filter(|_| {
                let samples = sampler.sample_many(q, &mut rng);
                tester.test(&samples) == Verdict::Accept
            })
            .count();
        accepts as f64 / trials as f64
    }
}
