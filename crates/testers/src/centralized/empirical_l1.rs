use crate::centralized::CentralizedTester;
use dut_probability::{DenseDistribution, Histogram};
use dut_simnet::Verdict;

/// The learning baseline: estimate the full distribution empirically and
/// reject when the empirical ℓ₁ distance to uniform exceeds a threshold.
///
/// Requires `Θ(n/ε²)` samples — quadratically worse than the collision
/// tester in `√n`, which is exactly why *testing* is interesting. Serves
/// as the sanity baseline in the benchmark tables.
///
/// Threshold: `E[‖μ̂ − u‖₁]` under uniform is at most `√(n/q)`; the
/// tester rejects when the empirical distance exceeds
/// `√(n/q) + ε/2`, which a far input reaches once `√(n/q) ≤ ε/4`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmpiricalL1Tester {
    n: usize,
    epsilon: f64,
}

impl EmpiricalL1Tester {
    /// Creates the tester for domain size `n` and proximity `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `epsilon ∉ (0, 1]`.
    #[must_use]
    pub fn new(n: usize, epsilon: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        Self { n, epsilon }
    }

    /// Rejection threshold on the empirical ℓ₁ distance for `q` samples.
    #[must_use]
    pub fn threshold(&self, q: usize) -> f64 {
        (self.n as f64 / q as f64).sqrt() + self.epsilon / 2.0
    }
}

impl CentralizedTester for EmpiricalL1Tester {
    fn test(&self, samples: &[usize]) -> Verdict {
        if samples.is_empty() {
            return Verdict::Accept;
        }
        let hist = Histogram::from_samples(self.n, samples);
        let dist = hist.l1_to(&DenseDistribution::uniform(self.n));
        Verdict::from_accept_bit(dist <= self.threshold(samples.len()))
    }

    fn recommended_sample_count(&self) -> usize {
        let q = 16.0 * self.n as f64 / (self.epsilon * self.epsilon);
        dut_stats::convert::ceil_to_usize(q).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::test_support::acceptance_rate;
    use dut_probability::families;

    #[test]
    fn accepts_uniform() {
        let n = 64;
        let tester = EmpiricalL1Tester::new(n, 0.5);
        let q = tester.recommended_sample_count();
        let rate = acceptance_rate(&tester, &families::uniform(n), q, 100, 51);
        assert!(rate > 0.9, "acceptance under uniform = {rate}");
    }

    #[test]
    fn rejects_far() {
        let n = 64;
        let tester = EmpiricalL1Tester::new(n, 0.5);
        let q = tester.recommended_sample_count();
        let far = families::two_level(n, 0.5).unwrap();
        let rate = acceptance_rate(&tester, &far, q, 100, 53);
        assert!(rate < 0.1, "acceptance under far = {rate}");
    }

    #[test]
    fn needs_many_more_samples_than_collision_tester() {
        let l1 = EmpiricalL1Tester::new(1 << 12, 0.5).recommended_sample_count();
        let collision = super::super::CollisionTester::new(1 << 12, 0.5).recommended_sample_count();
        assert!(l1 > 10 * collision);
    }

    #[test]
    fn threshold_decreases_with_samples() {
        let tester = EmpiricalL1Tester::new(32, 0.5);
        assert!(tester.threshold(1000) < tester.threshold(10));
    }

    #[test]
    fn empty_accepts() {
        assert!(EmpiricalL1Tester::new(4, 0.5).test(&[]).is_accept());
    }
}
