use crate::centralized::CentralizedTester;
use dut_probability::empirical::collision_count_of;
use dut_probability::moments;
use dut_simnet::Verdict;

/// The Goldreich–Ron collision tester for ε-uniformity over `{0,..,n-1}`.
///
/// Counts colliding pairs among the samples and rejects when the count
/// exceeds the midpoint between the uniform expectation
/// `C(q,2)/n` and the minimal far expectation `(1+ε²)·C(q,2)/n`.
/// Sample-optimal up to constants: `Θ(√n/ε²)` samples suffice
/// (Paninski 2008; Diakonikolas et al. 2018 for the sharp collision
/// analysis).
///
/// # Example
///
/// ```
/// use dut_testers::{centralized::CollisionTester, CentralizedTester};
///
/// let tester = CollisionTester::new(256, 0.5);
/// // Far fewer collisions than the far threshold: accept.
/// assert!(tester.test(&[1, 2, 3, 4, 5]).is_accept());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionTester {
    n: usize,
    epsilon: f64,
}

impl CollisionTester {
    /// Creates the tester for domain size `n` and proximity `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `epsilon ∉ (0, 1]`.
    #[must_use]
    pub fn new(n: usize, epsilon: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        Self { n, epsilon }
    }

    /// Domain size.
    #[must_use]
    pub fn domain_size(&self) -> usize {
        self.n
    }

    /// Proximity parameter.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The rejection threshold on the collision count for `q` samples.
    #[must_use]
    pub fn threshold(&self, q: usize) -> f64 {
        moments::collision_midpoint_threshold(self.n, self.epsilon, q as u64)
    }

    /// The raw statistic: number of colliding pairs.
    #[must_use]
    pub fn statistic(samples: &[usize]) -> u64 {
        collision_count_of(samples)
    }

    /// Tests directly from an occupancy histogram — the sufficient
    /// statistic — so the O(n + q) sampling fast path can feed this
    /// tester without materializing a sample vector. Identical verdict
    /// law to [`CentralizedTester::test`] on the binned samples.
    #[must_use]
    pub fn test_histogram(&self, histogram: &dut_probability::Histogram) -> Verdict {
        let count = histogram.collision_count() as f64;
        let q = usize::try_from(histogram.total()).unwrap_or(usize::MAX);
        Verdict::from_accept_bit(count <= self.threshold(q))
    }
}

impl CentralizedTester for CollisionTester {
    fn test(&self, samples: &[usize]) -> Verdict {
        let count = Self::statistic(samples) as f64;
        Verdict::from_accept_bit(count <= self.threshold(samples.len()))
    }

    fn recommended_sample_count(&self) -> usize {
        // q such that the eps^2 C(q,2)/n gap is several standard
        // deviations (~sqrt(C(q,2)/n)) wide: q ≈ c·sqrt(n)/eps^2.
        let q = 4.0 * (self.n as f64).sqrt() / (self.epsilon * self.epsilon);
        dut_stats::convert::ceil_to_usize(q).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::test_support::acceptance_rate;
    use dut_probability::families;

    #[test]
    fn accepts_uniform_with_high_probability() {
        let n = 1 << 10;
        let tester = CollisionTester::new(n, 0.5);
        let q = tester.recommended_sample_count();
        let rate = acceptance_rate(&tester, &families::uniform(n), q, 300, 11);
        assert!(rate > 0.8, "acceptance under uniform = {rate}");
    }

    #[test]
    fn rejects_far_with_high_probability() {
        let n = 1 << 10;
        let eps = 0.5;
        let tester = CollisionTester::new(n, eps);
        let q = tester.recommended_sample_count();
        let far = families::two_level(n, eps).unwrap();
        let rate = acceptance_rate(&tester, &far, q, 300, 13);
        assert!(rate < 0.2, "acceptance under far = {rate}");
    }

    #[test]
    fn rejects_extreme_far_instance_strongly() {
        let n = 256;
        let tester = CollisionTester::new(n, 0.5);
        let q = tester.recommended_sample_count();
        let far = families::uniform_on_prefix(n, 8).unwrap();
        let rate = acceptance_rate(&tester, &far, q, 100, 17);
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn threshold_is_between_null_and_far_means() {
        let tester = CollisionTester::new(100, 0.6);
        let q = 60u64;
        let u = families::uniform(100);
        let far = families::two_level(100, 0.6).unwrap();
        let t = tester.threshold(q as usize);
        assert!(moments::expected_collisions(&u, q) < t);
        assert!(moments::expected_collisions(&far, q) > t);
    }

    #[test]
    fn too_few_samples_accepts_trivially() {
        let tester = CollisionTester::new(16, 0.5);
        assert!(tester.test(&[]).is_accept());
        assert!(tester.test(&[3]).is_accept());
    }

    #[test]
    fn recommended_count_scales_like_sqrt_n_over_eps2() {
        let a = CollisionTester::new(1 << 10, 0.5).recommended_sample_count();
        let b = CollisionTester::new(1 << 12, 0.5).recommended_sample_count();
        // 4x domain -> 2x samples.
        assert!((b as f64 / a as f64 - 2.0).abs() < 0.1);
        let c = CollisionTester::new(1 << 10, 0.25).recommended_sample_count();
        // half epsilon -> 4x samples.
        assert!((c as f64 / a as f64 - 4.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let _ = CollisionTester::new(8, 0.0);
    }
}
