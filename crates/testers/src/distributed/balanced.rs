use dut_probability::empirical::collision_count_of;
use dut_probability::{
    DenseDistribution, DualSampler, Histogram, SampleBackend, Sampler, UniformSampler,
};
use dut_simnet::{DecisionRule, Network, PlayerContext, RunOutcome};
use rand::Rng;

/// The sample-optimal threshold protocol of \[7\], matching Theorem 1.1:
/// `O(√(n/k)/ε²)` samples per node.
///
/// Every node computes its local collision count and sends one bit —
/// reject iff the count exceeds the **midpoint** threshold
/// `λ₀·(1 + ε²/2)` with `λ₀ = C(q,2)/n` (the same threshold the
/// centralized collision tester uses, so a `k = 1` network degenerates
/// to the centralized tester). In the distributed regime each bit is a
/// weak signal (per-node advantage `≈ ε²·√λ₀` once `λ₀ ≲ 1`), but the
/// referee aggregates `k` of them: it rejects when the number of
/// rejecting nodes exceeds a threshold calibrated under the (known)
/// uniform distribution. The √k averaging is what the AND rule cannot
/// do, and is exactly the gap Theorems 1.1 vs 1.2 quantify.
///
/// Use [`BalancedThresholdTester::prepare`] to calibrate the referee for
/// a specific per-node sample count `q`, then run the returned
/// [`PreparedBalancedTester`] many times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancedThresholdTester {
    n: usize,
    k: usize,
    epsilon: f64,
}

/// A [`BalancedThresholdTester`] calibrated for a fixed `q`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparedBalancedTester {
    n: usize,
    k: usize,
    q: usize,
    /// Local rule: reject iff collision count > this value.
    node_threshold: f64,
    /// Referee rule: reject iff at least this many nodes reject.
    referee_min_rejects: usize,
    /// Estimated per-node rejection probability under uniform.
    p_uniform: f64,
}

impl BalancedThresholdTester {
    /// Creates the protocol for domain size `n`, `k` nodes and
    /// proximity `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `k == 0`, or `epsilon ∉ (0, 1]`.
    #[must_use]
    pub fn new(n: usize, k: usize, epsilon: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(k > 0, "need at least one node");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        Self { n, k, epsilon }
    }

    /// Domain size `n`.
    #[must_use]
    pub fn domain_size(&self) -> usize {
        self.n
    }

    /// Number of nodes `k`.
    #[must_use]
    pub fn num_players(&self) -> usize {
        self.k
    }

    /// The configured proximity parameter.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The paper-predicted sufficient per-node sample count,
    /// `c·√(n/k)/ε²` (Theorem 1.1 shows this is also necessary).
    #[must_use]
    pub fn predicted_sample_count(&self) -> usize {
        let q = 6.0 * (self.n as f64 / self.k as f64).sqrt() / (self.epsilon * self.epsilon);
        dut_stats::convert::ceil_to_usize(q).max(2)
    }

    /// Calibrates the referee threshold for `q` samples per node by
    /// simulating `calibration_trials` single nodes under the uniform
    /// distribution.
    ///
    /// The referee rejects when the rejection count reaches
    /// `k·p̂₀ + z·√(k·p̂₀(1−p̂₀)) + 1` with `z = 1.3`, giving a
    /// false-positive rate ≈ `Φ(−z) ≈ 0.10 < 1/3` with margin for the
    /// calibration error in `p̂₀`.
    ///
    /// # Panics
    ///
    /// Panics if `calibration_trials == 0`.
    pub fn prepare<R: Rng + ?Sized>(
        &self,
        q: usize,
        calibration_trials: usize,
        rng: &mut R,
    ) -> PreparedBalancedTester {
        self.prepare_with_backend(q, calibration_trials, SampleBackend::Auto, rng)
    }

    /// [`Self::prepare`], with the Monte-Carlo calibration draws
    /// realized by the chosen [`SampleBackend`] (`Auto`, the
    /// [`Self::prepare`] default, resolves through the cost model).
    /// Both backends produce Multinomial(q, uniform)-distributed
    /// counts, so the calibrated thresholds are drawn from the same
    /// law; the backend only changes how long the trials take.
    ///
    /// # Panics
    ///
    /// Panics if `calibration_trials == 0`.
    pub fn prepare_with_backend<R: Rng + ?Sized>(
        &self,
        q: usize,
        calibration_trials: usize,
        backend: SampleBackend,
        rng: &mut R,
    ) -> PreparedBalancedTester {
        assert!(calibration_trials > 0, "need calibration trials");
        let backend = backend.resolve(self.n, q as u64);
        let lambda = (q * q.saturating_sub(1)) as f64 / 2.0 / self.n as f64;
        let node_threshold = lambda * (1.0 + self.epsilon * self.epsilon / 2.0);
        let mut rejects = 0usize;
        match backend {
            SampleBackend::Auto => unreachable!("resolve() returns a concrete engine"),
            SampleBackend::PerDraw => {
                let uniform = UniformSampler::new(self.n);
                for _ in 0..calibration_trials {
                    let samples = uniform.sample_many(q, rng);
                    if collision_count_of(&samples) as f64 > node_threshold {
                        rejects += 1;
                    }
                }
            }
            SampleBackend::Histogram => {
                let uniform = DenseDistribution::uniform(self.n).histogram_sampler();
                for _ in 0..calibration_trials {
                    let h = uniform.draw(q as u64, rng);
                    if h.collision_count() as f64 > node_threshold {
                        rejects += 1;
                    }
                }
            }
        }
        let p_uniform = rejects as f64 / calibration_trials as f64;
        let z = 1.3;
        let mean = self.k as f64 * p_uniform;
        let sd = (self.k as f64 * p_uniform * (1.0 - p_uniform)).sqrt();
        let referee_min_rejects =
            (dut_stats::convert::floor_to_usize(mean + z * sd) + 1).min(self.k);
        PreparedBalancedTester {
            n: self.n,
            k: self.k,
            q,
            node_threshold,
            referee_min_rejects,
            p_uniform,
        }
    }
}

impl PreparedBalancedTester {
    /// The calibrated referee threshold (minimal rejecting nodes).
    #[must_use]
    pub fn referee_min_rejects(&self) -> usize {
        self.referee_min_rejects
    }

    /// The estimated per-node rejection probability under uniform.
    #[must_use]
    pub fn p_uniform(&self) -> f64 {
        self.p_uniform
    }

    /// The per-node sample count this calibration is for.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.q
    }

    /// Runs one execution of the calibrated protocol.
    pub fn run<S, R>(&self, sampler: &S, rng: &mut R) -> RunOutcome
    where
        S: Sampler,
        R: Rng + ?Sized,
    {
        let threshold = self.node_threshold;
        let player = move |_ctx: &PlayerContext, samples: &[usize]| {
            collision_count_of(samples) as f64 <= threshold
        };
        Network::new(self.k).run(
            sampler,
            self.q,
            &player,
            &DecisionRule::Threshold {
                min_rejects: self.referee_min_rejects,
            },
            rng,
        )
    }

    /// Runs one execution on occupancy histograms with the chosen
    /// [`SampleBackend`]; the node statistic is the same collision
    /// count, read off the histogram.
    pub fn run_counts<R>(
        &self,
        sampler: &DualSampler,
        backend: SampleBackend,
        rng: &mut R,
    ) -> RunOutcome
    where
        R: Rng + ?Sized,
    {
        let threshold = self.node_threshold;
        let player =
            move |_ctx: &PlayerContext, h: &Histogram| h.collision_count() as f64 <= threshold;
        Network::new(self.k).run_counts(
            sampler,
            backend,
            self.q,
            &player,
            &DecisionRule::Threshold {
                min_rejects: self.referee_min_rejects,
            },
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_probability::families;
    use rand::SeedableRng;

    fn acceptance_rate<S: Sampler>(
        prepared: &PreparedBalancedTester,
        sampler: &S,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let accepts = (0..trials)
            .filter(|_| prepared.run(sampler, &mut rng).verdict.is_accept())
            .count();
        accepts as f64 / trials as f64
    }

    #[test]
    fn predicted_sample_count_scales() {
        let t = BalancedThresholdTester::new(1 << 12, 16, 0.5);
        let q16 = t.predicted_sample_count();
        let q64 = BalancedThresholdTester::new(1 << 12, 64, 0.5).predicted_sample_count();
        // 4x nodes -> half the samples.
        assert!((q16 as f64 / q64 as f64 - 2.0).abs() < 0.2);
    }

    #[test]
    fn accepts_uniform_after_calibration() {
        let n = 1 << 10;
        let k = 32;
        let tester = BalancedThresholdTester::new(n, k, 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(81);
        let q = tester.predicted_sample_count();
        let prepared = tester.prepare(q, 2000, &mut rng);
        let uniform = families::uniform(n).alias_sampler();
        let rate = acceptance_rate(&prepared, &uniform, 150, 83);
        assert!(rate > 2.0 / 3.0, "acceptance under uniform = {rate}");
    }

    #[test]
    fn rejects_far_after_calibration() {
        let n = 1 << 10;
        let k = 32;
        let eps = 0.5;
        let tester = BalancedThresholdTester::new(n, k, eps);
        let mut rng = rand::rngs::StdRng::seed_from_u64(89);
        let q = tester.predicted_sample_count();
        let prepared = tester.prepare(q, 2000, &mut rng);
        let far = families::two_level(n, eps).unwrap().alias_sampler();
        let rate = acceptance_rate(&prepared, &far, 150, 97);
        assert!(rate < 1.0 / 3.0, "acceptance under far = {rate}");
    }

    #[test]
    fn beats_and_rule_at_same_q() {
        // At q = predicted (balanced) budget, the AND tester's node
        // thresholds are so high it cannot detect anything: it accepts
        // the far instance, while the balanced tester rejects it.
        let n = 1 << 10;
        let k = 64;
        let eps = 0.5;
        let balanced = BalancedThresholdTester::new(n, k, eps);
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        let q = balanced.predicted_sample_count();
        let prepared = balanced.prepare(q, 2000, &mut rng);
        let far = families::two_level(n, eps).unwrap().alias_sampler();
        let balanced_rate = acceptance_rate(&prepared, &far, 100, 103);

        let and_rule = crate::AndRuleTester::new(n, k);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(105);
        let and_accepts = (0..100)
            .filter(|_| and_rule.run(&far, q, &mut rng2).verdict.is_accept())
            .count() as f64
            / 100.0;
        assert!(
            balanced_rate < and_accepts,
            "balanced acceptance {balanced_rate} should be below AND acceptance {and_accepts}"
        );
    }

    #[test]
    fn referee_threshold_within_range() {
        let tester = BalancedThresholdTester::new(256, 16, 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(107);
        let prepared = tester.prepare(20, 500, &mut rng);
        assert!(prepared.referee_min_rejects() >= 1);
        assert!(prepared.referee_min_rejects() <= 16);
        assert!((0.0..=1.0).contains(&prepared.p_uniform()));
        assert_eq!(prepared.sample_count(), 20);
    }

    #[test]
    #[should_panic(expected = "calibration trials")]
    fn zero_calibration_panics() {
        let tester = BalancedThresholdTester::new(16, 2, 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let _ = tester.prepare(4, 0, &mut rng);
    }
}
