use dut_probability::empirical::collision_count_of;
use dut_probability::Sampler;
use dut_simnet::{Message, Verdict};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The Acharya–Canonne–Tyagi single-sample protocol \[1\]: `k` nodes each
/// hold **one** sample and send `ℓ` bits to the referee.
///
/// Shared randomness fixes a balanced partition of the domain into
/// `m = 2^ℓ` equal buckets; each node sends the bucket index of its
/// sample, and the referee runs a collision test on the `k` bucket
/// indices. Under uniform input the induced bucket distribution is
/// exactly uniform on `m`; under an ε-far input a random balanced
/// partition retains squared-ℓ₂ deviation ≈ `ε²/n`, so the bucket
/// collision probability rises from `1/m` to ≈ `1/m + ε²/n`.
/// Distinguishing these needs `k = Θ(n/(2^{ℓ/2}·ε²))` nodes — the
/// trade-off of \[1\], which Theorem 6.4 matches from below.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleSampleProtocol {
    n: usize,
    message_bits: u8,
    epsilon: f64,
}

/// The outcome of one single-sample protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleSampleOutcome {
    /// The referee's verdict.
    pub verdict: Verdict,
    /// The `ℓ`-bit messages the nodes sent.
    pub messages: Vec<Message>,
    /// The bucket-collision statistic the referee computed.
    pub statistic: u64,
    /// The referee's rejection threshold.
    pub threshold: f64,
}

impl SingleSampleProtocol {
    /// Creates the protocol for domain size `n`, message length
    /// `message_bits` (`ℓ`), and proximity `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics unless `2^ℓ` divides `n`, `1 ≤ ℓ ≤ 20`, and
    /// `epsilon ∈ (0, 1]`.
    #[must_use]
    pub fn new(n: usize, message_bits: u8, epsilon: f64) -> Self {
        assert!(
            (1..=20).contains(&message_bits),
            "message length must be 1..=20 bits"
        );
        let m = 1usize << message_bits;
        assert!(
            n >= m && n.is_multiple_of(m),
            "bucket count {m} must divide the domain size {n}"
        );
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        Self {
            n,
            message_bits,
            epsilon,
        }
    }

    /// Number of buckets `m = 2^ℓ`.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        1usize << self.message_bits
    }

    /// The predicted sufficient node count `c·n/(2^{ℓ/2}·ε²)` from \[1\].
    #[must_use]
    pub fn predicted_node_count(&self) -> usize {
        let m = self.bucket_count() as f64;
        let k = 6.0 * self.n as f64 / (m.sqrt() * self.epsilon * self.epsilon);
        dut_stats::convert::ceil_to_usize(k).max(2)
    }

    /// The referee threshold on bucket collisions among `k` messages:
    /// midpoint between `C(k,2)/m` (uniform) and `C(k,2)·(1/m + ε²/n)`
    /// (minimal far shift under a random balanced partition).
    #[must_use]
    pub fn referee_threshold(&self, k: usize) -> f64 {
        let pairs = (k * k.saturating_sub(1)) as f64 / 2.0;
        pairs
            * (1.0 / self.bucket_count() as f64
                + self.epsilon * self.epsilon / (2.0 * self.n as f64))
    }

    /// Runs the protocol with `k` nodes: builds the shared random
    /// partition, draws one sample per node, and has the referee test
    /// the bucket indices.
    pub fn run<S, R>(&self, sampler: &S, k: usize, rng: &mut R) -> SingleSampleOutcome
    where
        S: Sampler,
        R: Rng + ?Sized,
    {
        assert!(k >= 2, "need at least two nodes for a collision test");
        let shared_seed: u64 = rng.random();
        let bucket_of = self.shared_partition(shared_seed);
        let mut buckets = Vec::with_capacity(k);
        let mut messages = Vec::with_capacity(k);
        for _ in 0..k {
            let sample = sampler.sample(rng);
            let bucket = bucket_of[sample] as u32;
            buckets.push(bucket as usize);
            messages.push(Message::new(bucket, self.message_bits));
        }
        let statistic = collision_count_of(&buckets);
        let threshold = self.referee_threshold(k);
        SingleSampleOutcome {
            verdict: Verdict::from_accept_bit(statistic as f64 <= threshold),
            messages,
            statistic,
            threshold,
        }
    }

    /// The balanced partition defined by the shared seed: a vector
    /// mapping each domain element to its bucket, with exactly `n/m`
    /// elements per bucket.
    #[must_use]
    pub fn shared_partition(&self, shared_seed: u64) -> Vec<u16> {
        let m = self.bucket_count();
        let per_bucket = self.n / m;
        let mut assignment: Vec<u16> = (0..m)
            .flat_map(|b| {
                let bucket = u16::try_from(b).expect("bucket count fits a u16");
                std::iter::repeat_n(bucket, per_bucket)
            })
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(shared_seed);
        assignment.shuffle(&mut rng);
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_probability::families;

    fn acceptance_rate<S: Sampler>(
        proto: &SingleSampleProtocol,
        sampler: &S,
        k: usize,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let accepts = (0..trials)
            .filter(|_| proto.run(sampler, k, &mut rng).verdict.is_accept())
            .count();
        accepts as f64 / trials as f64
    }

    #[test]
    fn partition_is_balanced_and_deterministic() {
        let proto = SingleSampleProtocol::new(64, 3, 0.5);
        let p1 = proto.shared_partition(123);
        let p2 = proto.shared_partition(123);
        assert_eq!(p1, p2);
        let mut counts = vec![0usize; 8];
        for &b in &p1 {
            counts[b as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 8), "{counts:?}");
        // Different seeds give different partitions.
        assert_ne!(p1, proto.shared_partition(124));
    }

    #[test]
    fn accepts_uniform() {
        let n = 1 << 8;
        let proto = SingleSampleProtocol::new(n, 4, 0.7);
        let k = proto.predicted_node_count();
        let uniform = families::uniform(n).alias_sampler();
        let rate = acceptance_rate(&proto, &uniform, k, 200, 111);
        assert!(rate > 2.0 / 3.0, "acceptance under uniform = {rate}");
    }

    #[test]
    fn rejects_far() {
        let n = 1 << 8;
        let eps = 0.7;
        let proto = SingleSampleProtocol::new(n, 4, eps);
        let k = proto.predicted_node_count();
        let far = families::two_level(n, eps).unwrap().alias_sampler();
        let rate = acceptance_rate(&proto, &far, k, 200, 113);
        assert!(rate < 1.0 / 3.0, "acceptance under far = {rate}");
    }

    #[test]
    fn more_bits_need_fewer_nodes() {
        let n = 1 << 10;
        let small = SingleSampleProtocol::new(n, 2, 0.5).predicted_node_count();
        let large = SingleSampleProtocol::new(n, 8, 0.5).predicted_node_count();
        // 2^{l/2} scaling: 8 bits vs 2 bits -> factor 2^3 = 8.
        assert!((small as f64 / large as f64 - 8.0).abs() < 1.0);
    }

    #[test]
    fn messages_have_declared_length() {
        let proto = SingleSampleProtocol::new(64, 3, 0.5);
        let uniform = families::uniform(64).alias_sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(117);
        let out = proto.run(&uniform, 10, &mut rng);
        assert_eq!(out.messages.len(), 10);
        assert!(out.messages.iter().all(|m| m.len() == 3));
        assert!(out.messages.iter().all(|m| m.bits() < 8));
    }

    #[test]
    fn point_mass_rejected_decisively() {
        let proto = SingleSampleProtocol::new(64, 3, 0.9);
        let point = families::point_mass(64, 5).unwrap().alias_sampler();
        let rate = acceptance_rate(&proto, &point, 40, 50, 119);
        assert_eq!(rate, 0.0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bucket_count_must_divide_domain() {
        let _ = SingleSampleProtocol::new(100, 3, 0.5);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn needs_two_nodes() {
        let proto = SingleSampleProtocol::new(16, 2, 0.5);
        let uniform = families::uniform(16).alias_sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let _ = proto.run(&uniform, 1, &mut rng);
    }
}
