use crate::cache::cached_poisson_threshold;
use crate::poisson::poisson_upper_tail;
use dut_probability::empirical::collision_count_of;
use dut_probability::{DualSampler, Histogram, SampleBackend, Sampler};
use dut_simnet::{DecisionRule, Network, PlayerContext, RunOutcome};
use rand::Rng;

/// The Fischer–Meir–Oshman biased-node protocol family: every node runs
/// a *high-threshold* local collision test whose false-positive rate is
/// matched to the decision rule, and the referee rejects when at least
/// `T` nodes reject.
///
/// * `T = 1` is the **AND rule** — the fully local protocol of
///   Theorem 1.2 (see [`AndRuleTester`]);
/// * small `T > 1` is the regime of Theorem 1.3.
///
/// # How the node threshold is chosen
///
/// Under the uniform distribution a node's collision count on `q`
/// samples is ≈ `Poisson(λ₀)` with `λ₀ = C(q,2)/n`. The node rejects
/// when its count reaches the smallest `t` with
/// `Pr[Poisson(λ₀) ≥ t] ≤ T/(4k)`, so the expected number of false
/// rejections is ≤ `T/4` and by Markov the network false-positive rate
/// stays below 1/3 (Chernoff makes it far smaller for larger `T`).
/// Under an ε-far input the local rate grows to `λ₁ ≥ (1+ε²)·λ₀`, and
/// the tail ratio `Pr[Poi(λ₁) ≥ t] / Pr[Poi(λ₀) ≥ t]` — not the tiny
/// tails themselves — is what the referee harvests. This is exactly the
/// mechanism the paper shows is expensive: the bits are highly biased,
/// and Theorem 1.2 proves a `√n/(log²k · ε²)` floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TThresholdTester {
    n: usize,
    k: usize,
    rule_threshold: usize,
    fp_budget_override: Option<f64>,
}

impl TThresholdTester {
    /// Creates the protocol for domain size `n`, `k` nodes, and referee
    /// threshold `rule_threshold` (reject iff that many nodes reject).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `rule_threshold > k`.
    #[must_use]
    pub fn new(n: usize, k: usize, rule_threshold: usize) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(k > 0, "need at least one node");
        assert!(
            (1..=k).contains(&rule_threshold),
            "rule threshold must be in 1..=k"
        );
        Self {
            n,
            k,
            rule_threshold,
            fp_budget_override: None,
        }
    }

    /// Overrides the per-node false-positive budget (default `T/(4k)`).
    ///
    /// Larger budgets lower the node thresholds — more sensitive nodes
    /// at the price of more false alarms reaching the referee. Used by
    /// experiment E3 to find the best protocol of this shape for each
    /// referee threshold `T`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < budget < 0.5`.
    #[must_use]
    pub fn with_node_false_positive_budget(mut self, budget: f64) -> Self {
        assert!(
            budget > 0.0 && budget < 0.5,
            "node false-positive budget must be in (0, 0.5), got {budget}"
        );
        self.fp_budget_override = Some(budget);
        self
    }

    /// Domain size `n`.
    #[must_use]
    pub fn domain_size(&self) -> usize {
        self.n
    }

    /// Number of nodes `k`.
    #[must_use]
    pub fn num_players(&self) -> usize {
        self.k
    }

    /// The referee threshold `T`.
    #[must_use]
    pub fn rule_threshold(&self) -> usize {
        self.rule_threshold
    }

    /// The per-node false-positive budget: the override if one was set
    /// via [`Self::with_node_false_positive_budget`], else `T/(4k)`.
    #[must_use]
    pub fn node_false_positive_budget(&self) -> f64 {
        self.fp_budget_override
            .unwrap_or(self.rule_threshold as f64 / (4.0 * self.k as f64))
    }

    /// The uniform collision rate `λ₀ = C(q,2)/n`.
    #[must_use]
    pub fn lambda_uniform(&self, q: usize) -> f64 {
        (q * q.saturating_sub(1)) as f64 / 2.0 / self.n as f64
    }

    /// The local rejection threshold on the collision count for `q`
    /// samples per node.
    ///
    /// Memoized per `(λ, α)` pair ([`crate::cache`]): a sweep point's
    /// thousands of trials compute the Poisson tail inversion once and
    /// hit the cache thereafter.
    #[must_use]
    pub fn node_threshold(&self, q: usize) -> u64 {
        let lambda = self.lambda_uniform(q);
        if lambda <= 0.0 {
            // q < 2: a node can never see a collision; threshold 1 makes
            // it never reject (count is always 0).
            return 1;
        }
        cached_poisson_threshold(lambda, self.node_false_positive_budget()).max(1)
    }

    /// Predicted per-node detection probability under an ε-far input
    /// (Poisson approximation with rate `(1+ε²)·λ₀`).
    #[must_use]
    pub fn predicted_detection_probability(&self, q: usize, epsilon: f64) -> f64 {
        let lambda_far = (1.0 + epsilon * epsilon) * self.lambda_uniform(q);
        poisson_upper_tail(lambda_far, self.node_threshold(q))
    }

    /// Runs one execution of the protocol: `k` nodes draw `q` samples
    /// each from `sampler` and the referee applies the `T`-threshold
    /// rule.
    pub fn run<S, R>(&self, sampler: &S, q: usize, rng: &mut R) -> RunOutcome
    where
        S: Sampler,
        R: Rng + ?Sized,
    {
        let threshold = self.node_threshold(q);
        let player =
            move |_ctx: &PlayerContext, samples: &[usize]| collision_count_of(samples) < threshold;
        Network::new(self.k).run(
            sampler,
            q,
            &player,
            &DecisionRule::Threshold {
                min_rejects: self.rule_threshold,
            },
            rng,
        )
    }

    /// Runs one execution on occupancy histograms: the node statistic
    /// (collision count) only depends on counts, so the network can
    /// realize each node's samples with either engine — in particular
    /// the O(n + q) histogram fast path.
    pub fn run_counts<R>(
        &self,
        sampler: &DualSampler,
        backend: SampleBackend,
        q: usize,
        rng: &mut R,
    ) -> RunOutcome
    where
        R: Rng + ?Sized,
    {
        let threshold = self.node_threshold(q);
        let player = move |_ctx: &PlayerContext, h: &Histogram| h.collision_count() < threshold;
        Network::new(self.k).run_counts(
            sampler,
            backend,
            q,
            &player,
            &DecisionRule::Threshold {
                min_rejects: self.rule_threshold,
            },
            rng,
        )
    }
}

/// The AND-rule tester: the `T = 1` member of [`TThresholdTester`].
///
/// The network rejects iff **at least one** node rejects — the local
/// decision rule of proof-labeling schemes. Theorem 1.2 shows its cost:
/// `q = Ω(√n/(log²k · ε²))`, i.e. distribution brings almost no saving
/// unless `k = 2^{Ω(1/ε)}`.
///
/// # Example
///
/// ```
/// use dut_testers::AndRuleTester;
/// use dut_probability::families;
/// use rand::SeedableRng;
///
/// let n = 1 << 8;
/// let tester = AndRuleTester::new(n, 8);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let uniform = families::uniform(n).alias_sampler();
/// let outcome = tester.run(&uniform, 16, &mut rng);
/// // 8 nodes, high local thresholds: almost surely no false alarm.
/// assert!(outcome.verdict.is_accept());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AndRuleTester {
    inner: TThresholdTester,
}

impl AndRuleTester {
    /// Creates the AND-rule tester for domain size `n` and `k` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    #[must_use]
    pub fn new(n: usize, k: usize) -> Self {
        Self {
            inner: TThresholdTester::new(n, k, 1),
        }
    }

    /// The underlying biased-node protocol.
    #[must_use]
    pub fn as_t_threshold(&self) -> &TThresholdTester {
        &self.inner
    }

    /// Runs one execution under the AND rule.
    pub fn run<S, R>(&self, sampler: &S, q: usize, rng: &mut R) -> RunOutcome
    where
        S: Sampler,
        R: Rng + ?Sized,
    {
        self.inner.run(sampler, q, rng)
    }

    /// Runs one execution under the AND rule on occupancy histograms
    /// with the chosen [`SampleBackend`].
    pub fn run_counts<R>(
        &self,
        sampler: &DualSampler,
        backend: SampleBackend,
        q: usize,
        rng: &mut R,
    ) -> RunOutcome
    where
        R: Rng + ?Sized,
    {
        self.inner.run_counts(sampler, backend, q, rng)
    }

    /// Local rejection threshold for `q` samples per node.
    #[must_use]
    pub fn node_threshold(&self, q: usize) -> u64 {
        self.inner.node_threshold(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_probability::families;
    use rand::SeedableRng;

    fn acceptance_rate<S: Sampler>(
        tester: &TThresholdTester,
        sampler: &S,
        q: usize,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let accepts = (0..trials)
            .filter(|_| tester.run(sampler, q, &mut rng).verdict.is_accept())
            .count();
        accepts as f64 / trials as f64
    }

    #[test]
    fn node_threshold_grows_with_k() {
        let small = TThresholdTester::new(1 << 10, 4, 1);
        let large = TThresholdTester::new(1 << 10, 4096, 1);
        let q = 200;
        assert!(large.node_threshold(q) > small.node_threshold(q));
    }

    #[test]
    fn node_threshold_at_least_one() {
        let t = TThresholdTester::new(1 << 10, 16, 1);
        assert!(t.node_threshold(0) >= 1);
        assert!(t.node_threshold(1) >= 1);
        assert!(t.node_threshold(2) >= 1);
    }

    #[test]
    fn uniform_false_positive_controlled() {
        // 64 nodes, AND rule: false-positive rate must stay below ~1/3.
        let n = 1 << 10;
        let tester = TThresholdTester::new(n, 64, 1);
        let sampler = families::uniform(n).alias_sampler();
        let rate = acceptance_rate(&tester, &sampler, 60, 120, 61);
        assert!(rate > 0.6, "acceptance under uniform = {rate}");
    }

    #[test]
    fn rejects_far_with_enough_samples() {
        // Large epsilon and generous q: the far side must be detected.
        let n = 1 << 8;
        let eps = 0.9;
        let tester = TThresholdTester::new(n, 16, 1);
        let far = families::two_level(n, eps).unwrap().alias_sampler();
        // q near the centralized complexity: plenty for k=16 under AND.
        let q = 200;
        let rate = acceptance_rate(&tester, &far, q, 120, 67);
        assert!(rate < 1.0 / 3.0, "acceptance under far = {rate}");
    }

    #[test]
    fn t_threshold_two_requires_two_rejections() {
        // With T = 2 and a single far-seeing node the network accepts.
        let n = 1 << 8;
        let t2 = TThresholdTester::new(n, 8, 2);
        assert_eq!(t2.rule_threshold(), 2);
        // FP budget doubles compared to T = 1.
        let t1 = TThresholdTester::new(n, 8, 1);
        assert!(t2.node_false_positive_budget() > t1.node_false_positive_budget());
    }

    #[test]
    fn detection_probability_increases_with_epsilon() {
        let tester = TThresholdTester::new(1 << 10, 32, 1);
        let q = 100;
        let weak = tester.predicted_detection_probability(q, 0.2);
        let strong = tester.predicted_detection_probability(q, 0.9);
        assert!(strong > weak);
    }

    #[test]
    fn and_rule_wrapper_delegates() {
        let and = AndRuleTester::new(1 << 10, 16);
        assert_eq!(and.as_t_threshold().rule_threshold(), 1);
        assert_eq!(
            and.node_threshold(50),
            and.as_t_threshold().node_threshold(50)
        );
    }

    #[test]
    fn transcript_reports_rejections() {
        let n = 16;
        let tester = TThresholdTester::new(n, 4, 1);
        // Point mass: every node sees all-collisions and must reject.
        let point = families::point_mass(n, 0).unwrap().alias_sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        let out = tester.run(&point, 30, &mut rng);
        assert!(out.verdict.is_reject());
        assert_eq!(out.transcript.reject_count(), 4);
    }

    #[test]
    #[should_panic(expected = "1..=k")]
    fn rule_threshold_validated() {
        let _ = TThresholdTester::new(8, 4, 5);
    }
}
