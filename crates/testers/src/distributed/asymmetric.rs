use dut_probability::empirical::collision_count_of;
use dut_probability::{Sampler, UniformSampler};
use dut_simnet::{RateVector, Verdict};
use rand::Rng;

/// The asymmetric-cost protocol of §6.2: player `i` samples at rate
/// `T_i`, so a time budget `τ` gives it `q_i = max(1, ⌊T_i·τ⌋)`
/// samples. Every player sends the balanced above-mean collision bit
/// for *its own* `q_i`.
///
/// The referee (which may apply **any** function of the bits) uses a
/// weighted vote: player `i`'s rejection counts with weight
/// `w_i = √λ₀ᵢ` (`λ₀ᵢ = C(qᵢ,2)/n`), proportional to that bit's
/// signal-to-noise ratio — a fast player's bit carries `ε²λ₀ᵢ` signal
/// against `√λ₀ᵢ` noise. The decision threshold on the weighted sum is
/// Monte-Carlo-calibrated under uniform.
///
/// The paper shows the optimal time is `τ = Θ(√n/(ε²·‖T‖₂))` — the ℓ₂
/// norm of the rates, not their sum, governs the cost. Experiment E7
/// verifies that rate vectors with equal `‖T‖₂` but different shapes
/// need the same `τ*`.
#[derive(Debug, Clone, PartialEq)]
pub struct AsymmetricThresholdTester {
    n: usize,
    rates: RateVector,
    epsilon: f64,
}

/// An [`AsymmetricThresholdTester`] calibrated for a fixed time budget.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedAsymmetricTester {
    n: usize,
    sample_counts: Vec<usize>,
    node_thresholds: Vec<f64>,
    weights: Vec<f64>,
    referee_threshold: f64,
}

impl AsymmetricThresholdTester {
    /// Creates the protocol for domain size `n`, per-player rates and
    /// proximity `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `epsilon ∉ (0, 1]`.
    #[must_use]
    pub fn new(n: usize, rates: RateVector, epsilon: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        Self { n, rates, epsilon }
    }

    /// The rate vector.
    #[must_use]
    pub fn rates(&self) -> &RateVector {
        &self.rates
    }

    /// The paper-predicted sufficient time budget
    /// `c·√n/(ε²·‖T‖₂)`.
    #[must_use]
    pub fn predicted_time(&self) -> f64 {
        6.0 * (self.n as f64).sqrt() / (self.epsilon * self.epsilon * self.rates.l2_norm())
    }

    /// Calibrates for time budget `tau`: fixes each player's sample
    /// count, local threshold and vote weight, then Monte-Carlo-
    /// calibrates the referee's weighted-vote threshold under uniform.
    ///
    /// # Panics
    ///
    /// Panics if `calibration_trials < 2` or `tau` is invalid.
    pub fn prepare<R: Rng + ?Sized>(
        &self,
        tau: f64,
        calibration_trials: usize,
        rng: &mut R,
    ) -> PreparedAsymmetricTester {
        assert!(
            calibration_trials >= 2,
            "need at least two calibration trials"
        );
        let sample_counts = self.rates.samples_for_time(tau);
        // Midpoint thresholds (like the centralized collision tester and
        // the balanced protocol): a single-player network then
        // degenerates correctly to the centralized tester.
        let midpoint = 1.0 + self.epsilon * self.epsilon / 2.0;
        let node_thresholds: Vec<f64> = sample_counts
            .iter()
            .map(|&q| (q * q.saturating_sub(1)) as f64 / 2.0 / self.n as f64 * midpoint)
            .collect();
        let weights: Vec<f64> = node_thresholds.iter().map(|l| l.sqrt()).collect();
        // Calibrate the weighted rejection statistic under uniform.
        let uniform = UniformSampler::new(self.n);
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for _ in 0..calibration_trials {
            let stat =
                weighted_rejections(&uniform, &sample_counts, &node_thresholds, &weights, rng);
            sum += stat;
            sum_sq += stat * stat;
        }
        let mean = sum / calibration_trials as f64;
        let var = (sum_sq / calibration_trials as f64 - mean * mean).max(0.0);
        PreparedAsymmetricTester {
            n: self.n,
            sample_counts,
            node_thresholds,
            weights,
            referee_threshold: mean + 1.3 * var.sqrt(),
        }
    }
}

impl PreparedAsymmetricTester {
    /// Per-player sample counts for the calibrated time budget.
    #[must_use]
    pub fn sample_counts(&self) -> &[usize] {
        &self.sample_counts
    }

    /// The calibrated referee threshold on the weighted vote.
    #[must_use]
    pub fn referee_threshold(&self) -> f64 {
        self.referee_threshold
    }

    /// Runs one execution.
    pub fn run<S, R>(&self, sampler: &S, rng: &mut R) -> Verdict
    where
        S: Sampler,
        R: Rng + ?Sized,
    {
        let stat = weighted_rejections(
            sampler,
            &self.sample_counts,
            &self.node_thresholds,
            &self.weights,
            rng,
        );
        Verdict::from_accept_bit(stat <= self.referee_threshold)
    }
}

fn weighted_rejections<S, R>(
    sampler: &S,
    sample_counts: &[usize],
    node_thresholds: &[f64],
    weights: &[f64],
    rng: &mut R,
) -> f64
where
    S: Sampler,
    R: Rng + ?Sized,
{
    sample_counts
        .iter()
        .zip(node_thresholds)
        .zip(weights)
        .map(|((&q, &threshold), &w)| {
            let samples = sampler.sample_many(q, rng);
            if collision_count_of(&samples) as f64 > threshold {
                w
            } else {
                0.0
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_probability::families;
    use rand::SeedableRng;

    fn acceptance<S: Sampler>(
        p: &PreparedAsymmetricTester,
        sampler: &S,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..trials)
            .filter(|_| p.run(sampler, &mut rng).is_accept())
            .count() as f64
            / trials as f64
    }

    #[test]
    fn unit_rates_match_symmetric_protocol_guarantees() {
        let n = 1 << 10;
        let eps = 0.5;
        let tester = AsymmetricThresholdTester::new(n, RateVector::unit(32), eps);
        let tau = tester.predicted_time();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let prepared = tester.prepare(tau, 800, &mut rng);
        let uniform = families::uniform(n).alias_sampler();
        let far = families::two_level(n, eps).unwrap().alias_sampler();
        assert!(acceptance(&prepared, &uniform, 120, 23) > 2.0 / 3.0);
        assert!(acceptance(&prepared, &far, 120, 25) < 1.0 / 3.0);
    }

    #[test]
    fn heterogeneous_rates_work_at_predicted_time() {
        let n = 1 << 10;
        let eps = 0.6;
        // Mixed speeds: a few fast players, many slow ones.
        let mut rates = vec![4.0; 4];
        rates.extend(vec![0.5; 32]);
        let tester = AsymmetricThresholdTester::new(n, RateVector::new(rates), eps);
        let tau = tester.predicted_time();
        let mut rng = rand::rngs::StdRng::seed_from_u64(27);
        let prepared = tester.prepare(tau, 800, &mut rng);
        let uniform = families::uniform(n).alias_sampler();
        let far = families::two_level(n, eps).unwrap().alias_sampler();
        assert!(acceptance(&prepared, &uniform, 120, 29) > 2.0 / 3.0);
        assert!(acceptance(&prepared, &far, 120, 31) < 1.0 / 3.0);
    }

    #[test]
    fn sample_counts_follow_rates() {
        let tester =
            AsymmetricThresholdTester::new(256, RateVector::new(vec![1.0, 2.0, 0.25]), 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let prepared = tester.prepare(8.0, 10, &mut rng);
        assert_eq!(prepared.sample_counts(), &[8, 16, 2]);
        assert!(prepared.referee_threshold() >= 0.0);
    }

    #[test]
    fn predicted_time_uses_l2_norm() {
        let n = 1 << 12;
        let eps = 0.5;
        let concentrated = AsymmetricThresholdTester::new(n, RateVector::new(vec![4.0]), eps);
        let spread = AsymmetricThresholdTester::new(n, RateVector::new(vec![1.0; 16]), eps);
        assert!(
            (concentrated.predicted_time() - spread.predicted_time()).abs() < 1e-9,
            "equal l2 norms must predict equal time"
        );
    }

    #[test]
    fn fast_players_carry_more_weight() {
        let tester = AsymmetricThresholdTester::new(1 << 10, RateVector::new(vec![8.0, 1.0]), 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(35);
        let prepared = tester.prepare(20.0, 10, &mut rng);
        // Weight of the fast player's bit exceeds the slow player's.
        assert!(prepared.weights[0] > prepared.weights[1]);
    }
}
