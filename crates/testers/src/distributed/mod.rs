//! Distributed uniformity testers and learners — the upper-bound
//! protocols that the paper's lower bounds (Theorems 1.1–1.4) are
//! measured against.

mod asymmetric;
mod balanced;
mod graph;
mod learning;
mod quantized_sum;
mod single_sample;
mod t_threshold;

pub use asymmetric::{AsymmetricThresholdTester, PreparedAsymmetricTester};
pub use balanced::{BalancedThresholdTester, PreparedBalancedTester};
pub use graph::{GraphRunOutcome, GraphUniformityTester};
pub use learning::FourierLearner;
pub use quantized_sum::{PreparedQuantizedSumTester, QuantizedSumOutcome, QuantizedSumTester};
pub use single_sample::{SingleSampleOutcome, SingleSampleProtocol};
pub use t_threshold::{AndRuleTester, TThresholdTester};
