use dut_fourier::character::chi;
use dut_fourier::transform::walsh_hadamard;
use dut_probability::{DenseDistribution, Sampler};
use dut_stats::seed::derive_seed;
use rand::Rng;

/// A distributed learner for the unknown input distribution — the task of
/// Theorem 1.4, which shows any `q`-query protocol computing a
/// `δ`-approximation needs `k = Ω(n²/q²)` nodes.
///
/// The protocol (a many-query generalization of the simulate-and-infer
/// schemes of \[1\]): the domain size is a power of two `n = 2^b` and
/// shared randomness assigns node `j` a non-zero character `a_j`. The
/// node computes the empirical character mean
/// `v_j = (1/q)·Σ_i χ_{a_j}(sample_i)` and sends it quantized to
/// `message_bits` bits. The referee averages the estimates per
/// character, inverts the Walsh–Hadamard transform, clips negatives and
/// renormalizes.
///
/// Each character estimate has variance `Θ(1/(g·q))` with `g = k/(n−1)`
/// nodes per character, so the ℓ₁ error scales like
/// `√(n²/(k·q))` — the experiments measure this surface and compare its
/// shape against the paper's `k = Ω(n²/q²)` floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FourierLearner {
    n: usize,
    k: usize,
    q: usize,
    message_bits: u8,
}

impl FourierLearner {
    /// Creates a learner for domain size `n` (a power of two ≥ 2), `k`
    /// nodes, `q` samples per node, and `message_bits`-bit messages.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two ≥ 2, `k ≥ 1`, `q ≥ 1`, and
    /// `2 ≤ message_bits ≤ 16`.
    #[must_use]
    pub fn new(n: usize, k: usize, q: usize, message_bits: u8) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "domain size must be a power of two"
        );
        assert!(k >= 1, "need at least one node");
        assert!(q >= 1, "need at least one sample per node");
        assert!(
            (2..=16).contains(&message_bits),
            "message length must be 2..=16 bits"
        );
        Self {
            n,
            k,
            q,
            message_bits,
        }
    }

    /// The character assigned to node `j` under the given shared seed:
    /// a pseudorandom non-zero element of the dual group.
    #[must_use]
    pub fn assigned_character(&self, shared_seed: u64, node: usize) -> u32 {
        let offset = derive_seed(shared_seed, node as u64) % (self.n as u64 - 1).max(1);
        1 + u32::try_from(offset).expect("character index is below the u32-sized dual group")
    }

    /// Quantizes `v ∈ [-1, 1]` to the message alphabet.
    #[must_use]
    pub fn quantize(&self, v: f64) -> u32 {
        let levels = (1u32 << self.message_bits) - 1;
        let t = (v.clamp(-1.0, 1.0) + 1.0) / 2.0 * f64::from(levels);
        u32::try_from(dut_stats::convert::round_to_usize(t))
            .expect("quantized level is bounded by the u32 alphabet")
    }

    /// Dequantizes a message back to `[-1, 1]`.
    #[must_use]
    pub fn dequantize(&self, m: u32) -> f64 {
        let levels = (1u32 << self.message_bits) - 1;
        f64::from(m.min(levels)) / f64::from(levels) * 2.0 - 1.0
    }

    /// Runs the protocol once and returns the referee's estimate of the
    /// input distribution.
    pub fn learn<S, R>(&self, sampler: &S, rng: &mut R) -> DenseDistribution
    where
        S: Sampler,
        R: Rng + ?Sized,
    {
        let shared_seed: u64 = rng.random();
        // Character-indexed accumulators of dequantized node estimates.
        let mut sums = vec![0.0f64; self.n];
        let mut counts = vec![0u32; self.n];
        for node in 0..self.k {
            let a = self.assigned_character(shared_seed, node);
            let mut acc = 0.0f64;
            for _ in 0..self.q {
                let sample = u32::try_from(sampler.sample(rng)).expect("domain element fits a u32");
                acc += f64::from(chi(a, sample));
            }
            let v = acc / self.q as f64;
            let decoded = self.dequantize(self.quantize(v));
            sums[a as usize] += decoded;
            counts[a as usize] += 1;
        }
        // Referee reconstruction: table of character-mean estimates;
        // the empty character of any distribution is exactly 1.
        let mut table = vec![0.0f64; self.n];
        table[0] = 1.0;
        for a in 1..self.n {
            if counts[a] > 0 {
                table[a] = sums[a] / f64::from(counts[a]);
            }
        }
        walsh_hadamard(&mut table);
        let scale = 1.0 / self.n as f64;
        let weights: Vec<f64> = table.iter().map(|v| (v * scale).max(0.0)).collect();
        DenseDistribution::from_weights(weights)
            .expect("reconstruction always keeps positive total mass")
    }

    /// The predicted ℓ₁ error scale `√(n²/(k·q))` of this protocol
    /// (capped at 2, the diameter of the simplex).
    #[must_use]
    pub fn predicted_l1_error(&self) -> f64 {
        ((self.n * self.n) as f64 / (self.k * self.q) as f64)
            .sqrt()
            .min(2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_probability::{distance, families};
    use rand::SeedableRng;

    fn mean_l1_error(
        learner: &FourierLearner,
        dist: &DenseDistribution,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let sampler = dist.alias_sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..trials)
            .map(|_| distance::l1_distance(&learner.learn(&sampler, &mut rng), dist))
            .sum::<f64>()
            / trials as f64
    }

    #[test]
    fn quantization_roundtrip_accuracy() {
        let learner = FourierLearner::new(16, 8, 4, 8);
        for i in 0..=20 {
            let v = -1.0 + f64::from(i) / 10.0;
            let err = (learner.dequantize(learner.quantize(v)) - v).abs();
            assert!(err < 0.01, "v={v} err={err}");
        }
    }

    #[test]
    fn dequantize_clamps_oversized_codes() {
        let learner = FourierLearner::new(16, 8, 4, 2);
        assert_eq!(learner.dequantize(u32::MAX), 1.0);
    }

    #[test]
    fn assigned_characters_are_nonzero_and_deterministic() {
        let learner = FourierLearner::new(64, 100, 2, 8);
        for node in 0..100 {
            let a = learner.assigned_character(7, node);
            assert!((1..64).contains(&a));
            assert_eq!(a, learner.assigned_character(7, node));
        }
    }

    #[test]
    fn learns_uniform_accurately() {
        let n = 16;
        let learner = FourierLearner::new(n, 600, 16, 8);
        let err = mean_l1_error(&learner, &families::uniform(n), 10, 121);
        assert!(err < 0.35, "l1 error on uniform = {err}");
    }

    #[test]
    fn learns_skewed_distribution() {
        let n = 16;
        let skew = families::two_level(n, 0.8).unwrap();
        let learner = FourierLearner::new(n, 1200, 16, 8);
        let err = mean_l1_error(&learner, &skew, 10, 127);
        assert!(err < 0.4, "l1 error on two-level = {err}");
    }

    #[test]
    fn error_decreases_with_more_nodes() {
        let n = 32;
        let dist = families::zipf(n, 0.8).unwrap();
        let few = mean_l1_error(&FourierLearner::new(n, 200, 8, 8), &dist, 8, 131);
        let many = mean_l1_error(&FourierLearner::new(n, 3200, 8, 8), &dist, 8, 133);
        assert!(many < few, "few-node error {few} vs many-node error {many}");
    }

    #[test]
    fn error_decreases_with_more_samples() {
        let n = 32;
        let dist = families::zipf(n, 0.8).unwrap();
        let few = mean_l1_error(&FourierLearner::new(n, 800, 2, 8), &dist, 8, 137);
        let many = mean_l1_error(&FourierLearner::new(n, 800, 32, 8), &dist, 8, 139);
        assert!(
            many < few,
            "few-sample error {few} vs many-sample error {many}"
        );
    }

    #[test]
    fn output_is_a_valid_distribution() {
        let learner = FourierLearner::new(8, 20, 2, 4);
        let sampler = families::uniform(8).alias_sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(141);
        let est = learner.learn(&sampler, &mut rng);
        assert_eq!(est.support_size(), 8);
        let sum: f64 = est.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn predicted_error_scales() {
        let a = FourierLearner::new(64, 10_000, 4, 8).predicted_l1_error();
        let b = FourierLearner::new(64, 40_000, 4, 8).predicted_l1_error();
        assert!((a / b - 2.0).abs() < 1e-9);
        // The prediction is capped at the simplex diameter.
        assert_eq!(FourierLearner::new(64, 1, 1, 8).predicted_l1_error(), 2.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_domain() {
        let _ = FourierLearner::new(12, 4, 2, 4);
    }
}
