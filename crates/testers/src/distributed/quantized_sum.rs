use dut_probability::empirical::collision_count_of;
use dut_probability::{Sampler, UniformSampler};
use dut_simnet::{Message, Verdict};
use rand::Rng;

/// An `r`-bit message protocol for experiment E6 (Theorem 6.4): every
/// node sends its local collision count, saturating-quantized to
/// `message_bits` bits, and the referee compares the **sum** of the
/// reported counts against a threshold calibrated under the uniform
/// distribution.
///
/// * `message_bits = 1` sends the balanced bit (count above the uniform
///   mean or not) — the protocol degenerates to the
///   [`crate::BalancedThresholdTester`] shape;
/// * larger `r` lets the referee aggregate with less quantization
///   loss, improving the constant (the paper's Theorem 6.4 permits up
///   to a `2^{r/2}` improvement in `√k`-units; the experiment measures
///   how much of that a count-sum protocol realizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizedSumTester {
    n: usize,
    k: usize,
    message_bits: u8,
}

/// A [`QuantizedSumTester`] calibrated for a fixed per-node sample
/// count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparedQuantizedSumTester {
    inner: QuantizedSumTester,
    q: usize,
    referee_threshold: f64,
}

/// The outcome of one quantized-sum protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedSumOutcome {
    /// The referee's verdict.
    pub verdict: Verdict,
    /// The quantized messages the nodes sent.
    pub messages: Vec<Message>,
    /// The summed statistic the referee computed.
    pub statistic: u64,
}

impl QuantizedSumTester {
    /// Creates the protocol for domain size `n`, `k` nodes and
    /// `message_bits`-bit messages.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `k == 0`, or `message_bits ∉ 1..=16`.
    #[must_use]
    pub fn new(n: usize, k: usize, message_bits: u8) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(k > 0, "need at least one node");
        assert!(
            (1..=16).contains(&message_bits),
            "message length must be 1..=16 bits"
        );
        Self { n, k, message_bits }
    }

    /// Message alphabet maximum, `2^r − 1`.
    #[must_use]
    pub fn max_code(&self) -> u64 {
        (1u64 << self.message_bits) - 1
    }

    /// The node's message for a local collision count: for `r = 1` a
    /// balanced above-mean bit, otherwise the count saturated at
    /// `2^r − 1`.
    #[must_use]
    pub fn encode_count(&self, count: u64, q: usize) -> u64 {
        if self.message_bits == 1 {
            let lambda = (q * q.saturating_sub(1)) as f64 / 2.0 / self.n as f64;
            u64::from(count as f64 > lambda)
        } else {
            count.min(self.max_code())
        }
    }

    /// Calibrates the referee threshold for `q` samples per node by
    /// simulating the full protocol under uniform `calibration_trials`
    /// times and placing the threshold `z = 1.3` standard deviations
    /// above the mean statistic.
    ///
    /// # Panics
    ///
    /// Panics if `calibration_trials < 2`.
    pub fn prepare<R: Rng + ?Sized>(
        &self,
        q: usize,
        calibration_trials: usize,
        rng: &mut R,
    ) -> PreparedQuantizedSumTester {
        assert!(
            calibration_trials >= 2,
            "need at least two calibration trials"
        );
        let uniform = UniformSampler::new(self.n);
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for _ in 0..calibration_trials {
            let stat = self.statistic(&uniform, q, rng) as f64;
            sum += stat;
            sum_sq += stat * stat;
        }
        let mean = sum / calibration_trials as f64;
        let var = (sum_sq / calibration_trials as f64 - mean * mean).max(0.0);
        PreparedQuantizedSumTester {
            inner: *self,
            q,
            referee_threshold: mean + 1.3 * var.sqrt(),
        }
    }

    fn statistic<S, R>(&self, sampler: &S, q: usize, rng: &mut R) -> u64
    where
        S: Sampler,
        R: Rng + ?Sized,
    {
        (0..self.k)
            .map(|_| {
                let samples = sampler.sample_many(q, rng);
                self.encode_count(collision_count_of(&samples), q)
            })
            .sum()
    }
}

impl PreparedQuantizedSumTester {
    /// The calibrated referee threshold on the summed statistic.
    #[must_use]
    pub fn referee_threshold(&self) -> f64 {
        self.referee_threshold
    }

    /// The per-node sample count.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.q
    }

    /// Runs one execution.
    pub fn run<S, R>(&self, sampler: &S, rng: &mut R) -> QuantizedSumOutcome
    where
        S: Sampler,
        R: Rng + ?Sized,
    {
        let mut messages = Vec::with_capacity(self.inner.k);
        let mut statistic = 0u64;
        for _ in 0..self.inner.k {
            let samples = sampler.sample_many(self.q, rng);
            let code = self
                .inner
                .encode_count(collision_count_of(&samples), self.q);
            statistic += code;
            let code_word =
                u32::try_from(code).expect("encoded count is bounded by the message alphabet");
            messages.push(Message::new(code_word, self.inner.message_bits));
        }
        QuantizedSumOutcome {
            verdict: Verdict::from_accept_bit(statistic as f64 <= self.referee_threshold),
            messages,
            statistic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_probability::families;
    use rand::SeedableRng;

    fn acceptance<S: Sampler>(
        p: &PreparedQuantizedSumTester,
        sampler: &S,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..trials)
            .filter(|_| p.run(sampler, &mut rng).verdict.is_accept())
            .count() as f64
            / trials as f64
    }

    #[test]
    fn accepts_uniform_and_rejects_far() {
        let n = 1 << 10;
        let k = 32;
        let eps = 0.5;
        let tester = QuantizedSumTester::new(n, k, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let q = (6.0 * (n as f64 / k as f64).sqrt() / (eps * eps)).ceil() as usize;
        let prepared = tester.prepare(q, 600, &mut rng);
        let uniform = families::uniform(n).alias_sampler();
        let far = families::two_level(n, eps).unwrap().alias_sampler();
        // The 6x constant (vs the paper's asymptotic 3x) buys a clear
        // statistical margin at this small n, keeping the test stable
        // across RNG streams.
        assert!(acceptance(&prepared, &uniform, 120, 3) > 2.0 / 3.0);
        assert!(acceptance(&prepared, &far, 120, 5) < 1.0 / 3.0);
    }

    #[test]
    fn one_bit_encoding_is_balanced() {
        let tester = QuantizedSumTester::new(100, 4, 1);
        // lambda = C(10,2)/100 = 0.45.
        assert_eq!(tester.encode_count(0, 10), 0);
        assert_eq!(tester.encode_count(1, 10), 1);
        assert_eq!(tester.max_code(), 1);
    }

    #[test]
    fn multi_bit_encoding_saturates() {
        let tester = QuantizedSumTester::new(100, 4, 3);
        assert_eq!(tester.encode_count(5, 10), 5);
        assert_eq!(tester.encode_count(9, 10), 7);
        assert_eq!(tester.max_code(), 7);
    }

    #[test]
    fn messages_fit_declared_width() {
        let n = 256;
        let tester = QuantizedSumTester::new(n, 8, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let prepared = tester.prepare(12, 50, &mut rng);
        let point = families::point_mass(n, 0).unwrap().alias_sampler();
        let out = prepared.run(&point, &mut rng);
        assert!(out.messages.iter().all(|m| m.len() == 2 && m.bits() <= 3));
        assert!(out.verdict.is_reject());
    }

    #[test]
    fn more_bits_never_hurt_much() {
        // At matched q below the 1-bit protocol's requirement, the
        // 8-bit protocol should do at least as well on the far side.
        let n = 1 << 10;
        let k = 16;
        let eps = 0.5;
        let q = 40;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let far = families::two_level(n, eps).unwrap().alias_sampler();
        let one = QuantizedSumTester::new(n, k, 1).prepare(q, 800, &mut rng);
        let eight = QuantizedSumTester::new(n, k, 8).prepare(q, 800, &mut rng);
        let reject_one = 1.0 - acceptance(&one, &far, 150, 13);
        let reject_eight = 1.0 - acceptance(&eight, &far, 150, 17);
        assert!(
            reject_eight > reject_one - 0.15,
            "8-bit rejection {reject_eight} vs 1-bit {reject_one}"
        );
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn rejects_zero_bits() {
        let _ = QuantizedSumTester::new(16, 2, 0);
    }
}
