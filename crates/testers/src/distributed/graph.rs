use dut_probability::empirical::collision_count_of;
use dut_probability::Sampler;
use dut_simnet::aggregation::aggregate_sum;
use dut_simnet::{RoundModel, RoundStats, Topology, Verdict};
use rand::Rng;

/// Uniformity testing on an arbitrary connected graph in the
/// LOCAL/CONGEST models — the setting \[7\] reduces to the simultaneous
/// case.
///
/// Every node draws `q` samples and computes its local collision
/// count; the counts are convergecast (summed over a BFS tree) to the
/// root in `diameter + 1` rounds, and the root compares the pooled
/// count against the midpoint threshold `k·C(q,2)·(1+ε²/2)/n`.
///
/// Pooling the full counts (rather than 1-bit votes) keeps the
/// per-node cost at the optimal `O(√(n/k)/ε²)` while using only
/// `O(log)` bits per edge — the protocol is CONGEST-compatible for all
/// realistic parameters.
#[derive(Debug, Clone)]
pub struct GraphUniformityTester {
    n: usize,
    epsilon: f64,
    topology: Topology,
    model: RoundModel,
}

/// The outcome of one graph-tester execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphRunOutcome {
    /// The root's verdict.
    pub verdict: Verdict,
    /// The pooled collision count.
    pub statistic: u64,
    /// The decision threshold used.
    pub threshold: f64,
    /// Communication statistics of the convergecast.
    pub rounds: RoundStats,
}

impl GraphUniformityTester {
    /// Creates the tester for domain size `n`, proximity `epsilon`,
    /// over `topology` under `model`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `epsilon ∉ (0, 1]`, or the topology is
    /// disconnected.
    #[must_use]
    pub fn new(n: usize, epsilon: f64, topology: Topology, model: RoundModel) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        assert!(topology.is_connected(), "topology must be connected");
        Self {
            n,
            epsilon,
            topology,
            model,
        }
    }

    /// Number of nodes `k`.
    #[must_use]
    pub fn num_players(&self) -> usize {
        self.topology.len()
    }

    /// The pooled-count decision threshold for `q` samples per node.
    #[must_use]
    pub fn threshold(&self, q: usize) -> f64 {
        let k = self.topology.len() as f64;
        let pairs = (q * q.saturating_sub(1)) as f64 / 2.0;
        k * pairs / self.n as f64 * (1.0 + self.epsilon * self.epsilon / 2.0)
    }

    /// The paper-predicted sufficient per-node sample count
    /// `c·√(n/k)/ε²`.
    #[must_use]
    pub fn predicted_sample_count(&self) -> usize {
        let q = 6.0 * (self.n as f64 / self.topology.len() as f64).sqrt()
            / (self.epsilon * self.epsilon);
        dut_stats::convert::ceil_to_usize(q).max(2)
    }

    /// Runs one execution: sampling, convergecast, root decision.
    pub fn run<S, R>(&self, sampler: &S, q: usize, rng: &mut R) -> GraphRunOutcome
    where
        S: Sampler,
        R: Rng + ?Sized,
    {
        let counts: Vec<u64> = (0..self.topology.len())
            .map(|_| collision_count_of(&sampler.sample_many(q, rng)))
            .collect();
        let (statistic, rounds) = aggregate_sum(&self.topology, self.model, counts);
        let threshold = self.threshold(q);
        GraphRunOutcome {
            verdict: Verdict::from_accept_bit(statistic as f64 <= threshold),
            statistic,
            threshold,
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_probability::families;
    use rand::SeedableRng;

    fn acceptance<S: Sampler>(
        tester: &GraphUniformityTester,
        sampler: &S,
        q: usize,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..trials)
            .filter(|_| tester.run(sampler, q, &mut rng).verdict.is_accept())
            .count() as f64
            / trials as f64
    }

    #[test]
    fn works_on_star_topology() {
        let n = 1 << 10;
        let eps = 0.5;
        let tester = GraphUniformityTester::new(n, eps, Topology::star(33), RoundModel::Local);
        let q = tester.predicted_sample_count();
        let uniform = families::uniform(n).alias_sampler();
        let far = families::two_level(n, eps).unwrap().alias_sampler();
        assert!(acceptance(&tester, &uniform, q, 100, 41) > 2.0 / 3.0);
        assert!(acceptance(&tester, &far, q, 100, 43) < 1.0 / 3.0);
    }

    #[test]
    fn works_on_path_topology_with_more_rounds() {
        let n = 1 << 10;
        let eps = 0.6;
        let tester = GraphUniformityTester::new(n, eps, Topology::path(16), RoundModel::Local);
        let q = tester.predicted_sample_count();
        let uniform = families::uniform(n).alias_sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(47);
        let out = tester.run(&uniform, q, &mut rng);
        // Path of 16: diameter 15 -> 16 rounds.
        assert_eq!(out.rounds.rounds, 16);
        let far = families::two_level(n, eps).unwrap().alias_sampler();
        assert!(acceptance(&tester, &far, q, 100, 53) < 1.0 / 3.0);
        assert!(acceptance(&tester, &uniform, q, 100, 59) > 2.0 / 3.0);
    }

    #[test]
    fn congest_compatible_at_realistic_parameters() {
        let n = 1 << 12;
        let tester = GraphUniformityTester::new(
            n,
            0.5,
            Topology::binary_tree(31),
            RoundModel::congest_for(n),
        );
        let q = tester.predicted_sample_count();
        let uniform = families::uniform(n).alias_sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let out = tester.run(&uniform, q, &mut rng);
        // Pooled collision counts fit comfortably in O(log n) bits.
        assert!(out.rounds.max_message_bits <= 13);
    }

    #[test]
    fn per_node_cost_drops_with_network_size() {
        let n = 1 << 12;
        let small = GraphUniformityTester::new(n, 0.5, Topology::star(5), RoundModel::Local);
        let large = GraphUniformityTester::new(n, 0.5, Topology::star(65), RoundModel::Local);
        // 16x the players -> 4x fewer samples each.
        let ratio = small.predicted_sample_count() as f64 / large.predicted_sample_count() as f64;
        assert!((ratio - 4.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn random_graph_end_to_end() {
        let n = 1 << 10;
        let eps = 0.6;
        let mut rng = rand::rngs::StdRng::seed_from_u64(67);
        let topology = Topology::random_connected(20, 0.25, &mut rng);
        let tester = GraphUniformityTester::new(n, eps, topology, RoundModel::Local);
        let q = tester.predicted_sample_count();
        let far = families::alternating(n, eps).unwrap().alias_sampler();
        assert!(acceptance(&tester, &far, q, 80, 71) < 1.0 / 3.0);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected_topology() {
        let disconnected = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        let _ = GraphUniformityTester::new(16, 0.5, disconnected, RoundModel::Local);
    }
}
