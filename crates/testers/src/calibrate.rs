//! Monte-Carlo calibration of decision thresholds.
//!
//! Uniformity testing has a special structure the testers exploit: the
//! *null* distribution (uniform) is fully known, so a tester may simulate
//! itself under the null and pick thresholds from empirical quantiles —
//! no analytic tail bound, with its loose constants, is needed. All
//! paper-relevant *scaling* is unaffected; calibration only sharpens
//! constants.

use rand::Rng;

/// The empirical `(1 − alpha)`-quantile of `values`: the smallest value
/// `v` in the sample such that at most an `alpha` fraction of samples
/// exceed `v`.
///
/// # Panics
///
/// Panics if `values` is empty or `alpha ∉ (0, 1)`.
#[must_use]
pub fn upper_quantile(values: &[f64], alpha: f64) -> f64 {
    assert!(!values.is_empty(), "need at least one value");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let allowed_above = dut_stats::convert::floor_to_usize(alpha * sorted.len() as f64);
    let index = sorted.len() - 1 - allowed_above.min(sorted.len() - 1);
    sorted[index]
}

/// Estimates the `(1 − alpha)`-quantile of a statistic under a simulated
/// null by drawing `trials` fresh realizations.
///
/// # Panics
///
/// Panics if `trials == 0` or `alpha ∉ (0, 1)`.
pub fn calibrate_threshold<R, F>(trials: usize, alpha: f64, rng: &mut R, mut statistic: F) -> f64
where
    R: Rng + ?Sized,
    F: FnMut(&mut R) -> f64,
{
    assert!(trials > 0, "need at least one calibration trial");
    let values: Vec<f64> = (0..trials).map(|_| statistic(rng)).collect();
    upper_quantile(&values, alpha)
}

/// Estimates the probability that a statistic exceeds `threshold` under a
/// simulated distribution.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn exceedance_probability<R, F>(
    trials: usize,
    threshold: f64,
    rng: &mut R,
    mut statistic: F,
) -> f64
where
    R: Rng + ?Sized,
    F: FnMut(&mut R) -> f64,
{
    assert!(trials > 0, "need at least one trial");
    let hits = (0..trials).filter(|_| statistic(rng) > threshold).count();
    hits as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn quantile_of_known_sequence() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        // 10% may exceed: the 90th value.
        assert_eq!(upper_quantile(&values, 0.1), 90.0);
        // Tiny alpha: the maximum.
        assert_eq!(upper_quantile(&values, 0.001), 100.0);
    }

    #[test]
    fn quantile_unsorted_input() {
        let values = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(upper_quantile(&values, 0.21), 4.0);
    }

    #[test]
    fn quantile_single_value() {
        assert_eq!(upper_quantile(&[7.5], 0.5), 7.5);
    }

    #[test]
    fn calibrated_threshold_controls_false_positives() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        // Null statistic: Uniform[0,1). Calibrate at alpha = 0.05.
        let threshold = calibrate_threshold(20_000, 0.05, &mut rng, |r| r.random::<f64>());
        assert!((threshold - 0.95).abs() < 0.01, "threshold = {threshold}");
        // Measured false-positive rate under the null should be ~alpha.
        let fp = exceedance_probability(20_000, threshold, &mut rng, |r| r.random::<f64>());
        assert!(fp < 0.07, "false positive rate {fp}");
    }

    #[test]
    fn exceedance_probability_extremes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert_eq!(
            exceedance_probability(100, 2.0, &mut rng, |r| r.random::<f64>()),
            0.0
        );
        assert_eq!(
            exceedance_probability(100, -1.0, &mut rng, |r| r.random::<f64>()),
            1.0
        );
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_values_panic() {
        let _ = upper_quantile(&[], 0.1);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_panics() {
        let _ = upper_quantile(&[1.0], 1.5);
    }
}
