//! Uniformity testers: the upper bounds that the paper's lower bounds are
//! tight against.
//!
//! # Centralized testers ([`centralized`])
//!
//! * [`CollisionTester`] — the classic Goldreich–Ron collision tester,
//!   `Θ(√n/ε²)` samples,
//! * [`PaninskiTester`] — Paninski's coincidence tester,
//! * [`Chi2Tester`] — a χ²-style identity tester (against any reference),
//! * [`EmpiricalL1Tester`] — the learning baseline (`Θ(n/ε²)` samples).
//!
//! # Distributed testers ([`distributed`])
//!
//! * [`TThresholdTester`] — the Fischer–Meir–Oshman protocol family:
//!   every node runs a local collision test whose false-positive rate is
//!   calibrated to the decision rule; the referee rejects when at least
//!   `T` nodes reject. `T = 1` is the **AND rule** ([`AndRuleTester`])
//!   studied by Theorem 1.2; small `T` is the regime of Theorem 1.3.
//! * [`BalancedThresholdTester`] — the sample-optimal protocol matching
//!   Theorem 1.1: nodes send *balanced* bits (local collision statistic
//!   above/below its uniform mean) and the referee counts rejections
//!   against a Monte-Carlo-calibrated threshold; `O(√(n/k)/ε²)` samples
//!   per node.
//! * [`SingleSampleProtocol`] — the Acharya–Canonne–Tyagi regime: one
//!   sample per node, `ℓ`-bit messages via a shared random partition.
//! * [`FourierLearner`] — distributed learning of the input distribution
//!   (the object of Theorem 1.4).
//!
//! # Supporting machinery
//!
//! * [`calibrate`] — Monte-Carlo quantile calibration of decision
//!   thresholds under the (known) uniform distribution,
//! * [`cache`] — memoized Poisson tail thresholds, computed once per
//!   sweep point instead of once per trial,
//! * [`poisson`] — Poisson tail bounds used for per-node thresholds,
//! * [`reduction`] — Goldreich's reduction showing uniformity testing is
//!   complete for identity testing.
//!
//! # Example: centralized collision testing
//!
//! ```
//! use dut_testers::{centralized::CollisionTester, CentralizedTester};
//! use dut_probability::{families, Sampler};
//! use rand::SeedableRng;
//!
//! let n = 1 << 10;
//! let tester = CollisionTester::new(n, 0.5);
//! let q = tester.recommended_sample_count();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//!
//! let uniform = families::uniform(n).alias_sampler();
//! let samples = uniform.sample_many(q, &mut rng);
//! assert!(tester.test(&samples).is_accept());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Tests assert exact constructed values and index with small literals.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]

pub mod cache;
pub mod calibrate;
pub mod centralized;
pub mod distributed;
pub mod poisson;
pub mod reduction;

pub use centralized::{
    CentralizedTester, Chi2Tester, CollisionTester, EmpiricalL1Tester, PaninskiTester,
    SequentialUniformityTester, UniqueElementsTester,
};
pub use distributed::{
    AndRuleTester, AsymmetricThresholdTester, BalancedThresholdTester, FourierLearner,
    GraphUniformityTester, QuantizedSumTester, SingleSampleProtocol, TThresholdTester,
};
