//! Per-sweep-point calibration cache: memoized Poisson tail thresholds.
//!
//! A sweep evaluates thousands of trials at each `(k, q, ε, α)` grid
//! point, and every biased-node trial used to recompute the *same*
//! Poisson threshold from scratch — an O(λ) tail summation per run.
//! The threshold depends only on the collision rate `λ = C(q,2)/n` and
//! the per-node false-positive budget `α`, both fully determined by the
//! sweep point, so this module memoizes `(λ, α) → t` in a global map.
//! Hits and misses are counted in the [`dut_obs`] registry
//! ([`Counter::CalibrationCacheHits`] / [`Counter::CalibrationCacheMisses`])
//! and surfaced by `dut report`.
//!
//! Keys are the exact IEEE-754 bit patterns of `λ` and `α`: two sweep
//! points either produce bit-identical parameters (and share an entry)
//! or they don't (and get their own) — no epsilon-bucketing, so cached
//! and uncached runs are bit-identical.

use crate::poisson::poisson_threshold_for_tail;
use dut_obs::metrics::Counter;
use parking_lot::RwLock;
use std::collections::BTreeMap;

type Key = (u64, u64);

static THRESHOLDS: RwLock<BTreeMap<Key, u64>> = RwLock::new(BTreeMap::new());

/// Memoized [`poisson_threshold_for_tail`]: the smallest `t` with
/// `Pr[Poisson(λ) ≥ t] ≤ alpha`, computed once per distinct `(λ, alpha)`
/// pair and served from the cache afterwards.
///
/// # Panics
///
/// Same conditions as [`poisson_threshold_for_tail`].
#[must_use]
pub fn cached_poisson_threshold(lambda: f64, alpha: f64) -> u64 {
    let key = (lambda.to_bits(), alpha.to_bits());
    let registry = dut_obs::metrics::global();
    if let Some(&t) = THRESHOLDS.read().get(&key) {
        registry.incr(Counter::CalibrationCacheHits);
        return t;
    }
    registry.incr(Counter::CalibrationCacheMisses);
    let t = poisson_threshold_for_tail(lambda, alpha);
    THRESHOLDS.write().insert(key, t);
    t
}

/// Number of distinct `(λ, α)` entries currently cached.
#[must_use]
pub fn cache_len() -> usize {
    THRESHOLDS.read().len()
}

/// Empties the cache (tests and long-lived sweep drivers that change
/// domain between phases).
pub fn clear_cache() {
    THRESHOLDS.write().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests elsewhere in this crate hit the same global cache
    // concurrently; only this module clears it, so serialize the
    // clearing tests and keep length assertions monotone (concurrent
    // inserts can only grow the map).
    static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn cached_matches_direct_and_reuses_entries() {
        let _guard = LOCK.lock();
        clear_cache();
        let params = [(0.5f64, 0.01f64), (3.0, 0.05), (40.0, 1e-4), (0.5, 0.01)];
        for &(lambda, alpha) in &params {
            assert_eq!(
                cached_poisson_threshold(lambda, alpha),
                poisson_threshold_for_tail(lambda, alpha),
                "λ={lambda} α={alpha}"
            );
        }
        // The fourth call repeated the first pair: three distinct entries
        // of ours (plus whatever other tests inserted meanwhile).
        assert!(cache_len() >= 3);
    }

    #[test]
    fn hit_and_miss_counters_move() {
        let _guard = LOCK.lock();
        clear_cache();
        let registry = dut_obs::metrics::global();
        let misses_before = registry.counter(Counter::CalibrationCacheMisses);
        let hits_before = registry.counter(Counter::CalibrationCacheHits);
        let lambda = 17.125f64;
        let _ = cached_poisson_threshold(lambda, 0.01);
        let _ = cached_poisson_threshold(lambda, 0.01);
        assert!(registry.counter(Counter::CalibrationCacheMisses) > misses_before);
        assert!(registry.counter(Counter::CalibrationCacheHits) > hits_before);
    }

    #[test]
    fn distinct_bit_patterns_get_distinct_entries() {
        let _guard = LOCK.lock();
        let before = cache_len();
        let _ = cached_poisson_threshold(913.5, 0.25);
        let _ = cached_poisson_threshold(913.5 + f64::EPSILON * 1024.0, 0.25);
        assert!(cache_len() >= before + 2);
    }
}
