//! Per-sweep-point calibration cache: memoized Poisson tail thresholds.
//!
//! A sweep evaluates thousands of trials at each `(k, q, ε, α)` grid
//! point, and every biased-node trial used to recompute the *same*
//! Poisson threshold from scratch — an O(λ) tail summation per run.
//! The threshold depends only on the collision rate `λ = C(q,2)/n` and
//! the per-node false-positive budget `α`, both fully determined by the
//! sweep point, so this module memoizes `(λ, α) → t` in a global map.
//! Hits and misses are counted in the [`dut_obs`] registry
//! ([`Counter::CalibrationCacheHits`] / [`Counter::CalibrationCacheMisses`])
//! and surfaced by `dut report`.
//!
//! Keys are the exact IEEE-754 bit patterns of `λ` and `α`: two sweep
//! points either produce bit-identical parameters (and share an entry)
//! or they don't (and get their own) — no epsilon-bucketing, so cached
//! and uncached runs are bit-identical.

use crate::poisson::poisson_threshold_for_tail;
use dut_obs::metrics::Counter;
use parking_lot::RwLock;
use std::collections::BTreeMap;

type Key = (u64, u64);

static THRESHOLDS: RwLock<BTreeMap<Key, u64>> = RwLock::new(BTreeMap::new());

/// Memoized [`poisson_threshold_for_tail`]: the smallest `t` with
/// `Pr[Poisson(λ) ≥ t] ≤ alpha`, computed once per distinct `(λ, alpha)`
/// pair and served from the cache afterwards.
///
/// Concurrency: a miss re-checks under the write lock before
/// computing, so when N threads race on the same fresh key exactly one
/// performs the O(λ) tail inversion (the other N−1 block briefly and
/// then read its entry). The hit/miss counters reflect that — every
/// call increments exactly one of them, so
/// `hits + misses == total calls` holds under any interleaving.
///
/// # Panics
///
/// Same conditions as [`poisson_threshold_for_tail`].
#[must_use]
pub fn cached_poisson_threshold(lambda: f64, alpha: f64) -> u64 {
    let (t, _) = cached_poisson_threshold_traced(lambda, alpha);
    t
}

/// [`cached_poisson_threshold`] plus whether the call was a cache hit —
/// the observable form the concurrency regression tests assert on.
#[must_use]
pub fn cached_poisson_threshold_traced(lambda: f64, alpha: f64) -> (u64, bool) {
    let key = (lambda.to_bits(), alpha.to_bits());
    let registry = dut_obs::metrics::global();
    if let Some(&t) = THRESHOLDS.read().get(&key) {
        registry.incr(Counter::CalibrationCacheHits);
        return (t, true);
    }
    // Check-then-act closed: take the write lock, and only the caller
    // that still finds the key absent computes. Holding the lock across
    // the tail summation is deliberate — it is what serializes the
    // herd; every subsequent caller pays a lock wait instead of a
    // redundant O(λ) recomputation.
    let mut map = THRESHOLDS.write();
    if let Some(&t) = map.get(&key) {
        // Lost the race to another miss that computed first.
        registry.incr(Counter::CalibrationCacheHits);
        return (t, true);
    }
    registry.incr(Counter::CalibrationCacheMisses);
    let t = poisson_threshold_for_tail(lambda, alpha);
    map.insert(key, t);
    (t, false)
}

/// Number of distinct `(λ, α)` entries currently cached.
#[must_use]
pub fn cache_len() -> usize {
    THRESHOLDS.read().len()
}

/// Empties the cache (tests and long-lived sweep drivers that change
/// domain between phases).
pub fn clear_cache() {
    THRESHOLDS.write().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests elsewhere in this crate hit the same global cache
    // concurrently; only this module clears it, so serialize the
    // clearing tests and keep length assertions monotone (concurrent
    // inserts can only grow the map).
    static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn cached_matches_direct_and_reuses_entries() {
        let _guard = LOCK.lock();
        clear_cache();
        let params = [(0.5f64, 0.01f64), (3.0, 0.05), (40.0, 1e-4), (0.5, 0.01)];
        for &(lambda, alpha) in &params {
            assert_eq!(
                cached_poisson_threshold(lambda, alpha),
                poisson_threshold_for_tail(lambda, alpha),
                "λ={lambda} α={alpha}"
            );
        }
        // The fourth call repeated the first pair: three distinct entries
        // of ours (plus whatever other tests inserted meanwhile).
        assert!(cache_len() >= 3);
    }

    #[test]
    fn hit_and_miss_counters_move() {
        let _guard = LOCK.lock();
        clear_cache();
        let registry = dut_obs::metrics::global();
        let misses_before = registry.counter(Counter::CalibrationCacheMisses);
        let hits_before = registry.counter(Counter::CalibrationCacheHits);
        let lambda = 17.125f64;
        let _ = cached_poisson_threshold(lambda, 0.01);
        let _ = cached_poisson_threshold(lambda, 0.01);
        assert!(registry.counter(Counter::CalibrationCacheMisses) > misses_before);
        assert!(registry.counter(Counter::CalibrationCacheHits) > hits_before);
    }

    #[test]
    fn thundering_herd_computes_once() {
        // N threads race on the same fresh key: exactly one may miss
        // (compute), the rest must report hits. Uses a key no other
        // test touches so concurrent test modules cannot interfere,
        // and the traced return value instead of the global counters
        // (which other tests also bump). Holding LOCK keeps the
        // clearing tests from emptying the map mid-race.
        let _guard = LOCK.lock();
        let lambda = 123.456_789_f64;
        let alpha = 0.012_345_f64;
        let threads = 8;
        let mut flags = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let (t, hit) = cached_poisson_threshold_traced(lambda, alpha);
                        (t, hit)
                    })
                })
                .collect();
            for handle in handles {
                flags.push(handle.join().expect("no panic"));
            }
        });
        let expected = poisson_threshold_for_tail(lambda, alpha);
        for &(t, _) in &flags {
            assert_eq!(t, expected, "every caller sees the same threshold");
        }
        let misses = flags.iter().filter(|&&(_, hit)| !hit).count();
        assert_eq!(misses, 1, "exactly one thread computes: {flags:?}");
        assert_eq!(
            flags.len() - misses,
            threads - 1,
            "hits + misses == calls: {flags:?}"
        );
    }

    #[test]
    fn distinct_bit_patterns_get_distinct_entries() {
        let _guard = LOCK.lock();
        let before = cache_len();
        let _ = cached_poisson_threshold(913.5, 0.25);
        let _ = cached_poisson_threshold(913.5 + f64::EPSILON * 1024.0, 0.25);
        assert!(cache_len() >= before + 2);
    }
}
