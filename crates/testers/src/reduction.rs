//! Goldreich's reduction: **uniformity testing is complete** for testing
//! identity to any fixed, fully-known distribution `η`.
//!
//! The paper leans on this fact to motivate uniformity as *the* problem
//! to study ("testing equality to any fixed distribution reduces to
//! it"). This module makes the reduction executable:
//!
//! 1. **Mix**: replace each sample by a uniform one with probability ½,
//!    turning the pair `(μ, η)` into `(μ', η') = ((μ+u)/2, (η+u)/2)`;
//!    now every reference mass is ≥ `1/(2n)` and ℓ₁ distances halve.
//! 2. **Grain**: approximate `η'` by a multiple-of-`1/M` distribution,
//!    giving element `i` a block of `m_i = ⌊η'_i · M⌋ ≥ 1` buckets.
//! 3. **Filter & expand**: map a sample `i` to a uniformly random bucket
//!    in its block with probability `p_i = m_i/(M·η'_i) ≤ 1`, and to `⊥`
//!    (retry) otherwise.
//!
//! If `μ = η`, the output conditioned on not-`⊥` is **exactly uniform**
//! over the `Σ m_i` buckets; if `μ` is ε-far from `η`, the output stays
//! `Ω(ε)`-far from uniform. Both facts are verified *exactly* in the
//! tests via the explicit pushforward.

use dut_probability::{DenseDistribution, DistributionError, Sampler};
use rand::Rng;

/// The executable identity→uniformity reduction for a fixed reference.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentityToUniformityReduction {
    reference: DenseDistribution,
    epsilon: f64,
    granularity: usize,
    block_sizes: Vec<usize>,
    block_offsets: Vec<usize>,
    keep_probs: Vec<f64>,
    output_size: usize,
}

impl IdentityToUniformityReduction {
    /// Builds the reduction for reference `reference` and proximity
    /// `epsilon`, using granularity `M = ⌈20·n/ε⌉`.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::InvalidParameter`] if
    /// `epsilon ∉ (0, 1]`.
    pub fn new(reference: DenseDistribution, epsilon: f64) -> Result<Self, DistributionError> {
        if !(epsilon > 0.0 && epsilon <= 1.0) {
            return Err(DistributionError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
            });
        }
        let n = reference.support_size();
        let granularity = dut_stats::convert::ceil_to_usize(20.0 * n as f64 / epsilon);
        let mixed: Vec<f64> = reference
            .probs()
            .iter()
            .map(|&p| 0.5 * p + 0.5 / n as f64)
            .collect();
        let block_sizes: Vec<usize> = mixed
            .iter()
            .map(|&p| dut_stats::convert::floor_to_usize(p * granularity as f64).max(1))
            .collect();
        let mut block_offsets = Vec::with_capacity(n);
        let mut acc = 0usize;
        for &m in &block_sizes {
            block_offsets.push(acc);
            acc += m;
        }
        let keep_probs: Vec<f64> = block_sizes
            .iter()
            .zip(&mixed)
            .map(|(&m, &p)| (m as f64 / granularity as f64 / p).min(1.0))
            .collect();
        Ok(Self {
            reference,
            epsilon,
            granularity,
            block_sizes,
            block_offsets,
            keep_probs,
            output_size: acc,
        })
    }

    /// The reference distribution `η`.
    #[must_use]
    pub fn reference(&self) -> &DenseDistribution {
        &self.reference
    }

    /// The output domain size `Σ m_i` (uniformity is tested over this).
    #[must_use]
    pub fn output_domain_size(&self) -> usize {
        self.output_size
    }

    /// The granularity `M`.
    #[must_use]
    pub fn granularity(&self) -> usize {
        self.granularity
    }

    /// Transforms one input sample; `None` is the filter's `⊥` (the
    /// caller should retry with a fresh input sample).
    ///
    /// # Panics
    ///
    /// Panics if `sample` is out of the reference domain.
    pub fn transform_sample<R: Rng + ?Sized>(&self, sample: usize, rng: &mut R) -> Option<usize> {
        assert!(
            sample < self.reference.support_size(),
            "sample {sample} out of domain"
        );
        // Step 1: mix with uniform.
        let i = if rng.random::<bool>() {
            sample
        } else {
            rng.random_range(0..self.reference.support_size())
        };
        // Step 3: filter...
        if rng.random::<f64>() >= self.keep_probs[i] {
            return None;
        }
        // ...and expand into the block.
        Some(self.block_offsets[i] + rng.random_range(0..self.block_sizes[i]))
    }

    /// Draws input samples from `sampler` until the filter emits an
    /// output sample (the expected number of retries is < 2).
    pub fn transform_stream<S, R>(&self, sampler: &S, rng: &mut R) -> usize
    where
        S: Sampler,
        R: Rng + ?Sized,
    {
        loop {
            if let Some(out) = self.transform_sample(sampler.sample(rng), rng) {
                return out;
            }
        }
    }

    /// The exact pushforward of an input distribution `μ` through the
    /// reduction: returns the conditional output distribution (given
    /// not-`⊥`) and the `⊥` probability.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is on a different domain than the reference.
    #[must_use]
    pub fn output_distribution(&self, mu: &DenseDistribution) -> (DenseDistribution, f64) {
        assert_eq!(
            mu.support_size(),
            self.reference.support_size(),
            "input must share the reference domain"
        );
        let n = mu.support_size();
        let mut weights = vec![0.0f64; self.output_size];
        let mut kept_mass = 0.0f64;
        for i in 0..n {
            let mixed = 0.5 * mu.prob(i) + 0.5 / n as f64;
            let kept = mixed * self.keep_probs[i];
            kept_mass += kept;
            let per_bucket = kept / self.block_sizes[i] as f64;
            for b in 0..self.block_sizes[i] {
                weights[self.block_offsets[i] + b] = per_bucket;
            }
        }
        let out = DenseDistribution::from_weights(weights)
            .expect("kept mass is positive for any input distribution");
        (out, 1.0 - kept_mass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_probability::{distance, families};
    use rand::SeedableRng;

    #[test]
    fn matching_input_maps_exactly_to_uniform() {
        for reference in [
            families::zipf(32, 1.0).unwrap(),
            families::two_level(16, 0.6).unwrap(),
            families::uniform(8),
        ] {
            let reduction = IdentityToUniformityReduction::new(reference.clone(), 0.5).unwrap();
            let (out, bot) = reduction.output_distribution(&reference);
            let uniform = families::uniform(reduction.output_domain_size());
            let dist = distance::l1_distance(&out, &uniform);
            assert!(dist < 1e-9, "pushforward distance {dist}");
            assert!(bot < 0.2, "bot mass {bot}");
        }
    }

    #[test]
    fn far_input_stays_far_from_uniform() {
        let reference = families::zipf(32, 1.0).unwrap();
        let eps = 0.5;
        let reduction = IdentityToUniformityReduction::new(reference.clone(), eps).unwrap();
        // An input far from the reference: uniform itself.
        let mu = families::uniform(32);
        let input_dist = distance::l1_distance(&mu, &reference);
        assert!(input_dist > eps, "precondition: {input_dist}");
        let (out, _) = reduction.output_distribution(&mu);
        let uniform = families::uniform(reduction.output_domain_size());
        let out_dist = distance::l1_distance(&out, &uniform);
        assert!(
            out_dist > input_dist / 8.0,
            "output distance {out_dist} for input distance {input_dist}"
        );
    }

    #[test]
    fn sampled_stream_matches_exact_pushforward() {
        let reference = families::zipf(8, 0.8).unwrap();
        let reduction = IdentityToUniformityReduction::new(reference.clone(), 0.5).unwrap();
        let mu = families::two_level(8, 0.4).unwrap();
        let (exact, _) = reduction.output_distribution(&mu);
        let sampler = mu.alias_sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(151);
        let trials = 60_000;
        let mut hist = dut_probability::Histogram::new(reduction.output_domain_size());
        for _ in 0..trials {
            hist.record(reduction.transform_stream(&sampler, &mut rng));
        }
        let empirical = hist.empirical_distribution().unwrap();
        let err = distance::l1_distance(&empirical, &exact);
        // Coarse agreement: the output domain is large so allow slack.
        let budget = 2.5 * (reduction.output_domain_size() as f64 / trials as f64).sqrt();
        assert!(
            err < budget,
            "empirical vs exact pushforward: {err} > {budget}"
        );
    }

    #[test]
    fn block_structure_is_consistent() {
        let reference = families::zipf(16, 1.2).unwrap();
        let reduction = IdentityToUniformityReduction::new(reference, 0.25).unwrap();
        assert!(reduction.output_domain_size() <= reduction.granularity());
        assert!(reduction.output_domain_size() >= 16); // every element gets >= 1 bucket
    }

    #[test]
    fn bot_probability_is_small() {
        let reference = families::zipf(64, 1.0).unwrap();
        let reduction = IdentityToUniformityReduction::new(reference.clone(), 0.5).unwrap();
        let (_, bot) = reduction.output_distribution(&reference);
        // Mass loss is at most ~n/M = eps/20.
        assert!(bot < 0.1, "bot = {bot}");
    }

    #[test]
    fn rejects_bad_epsilon() {
        let reference = families::uniform(4);
        assert!(IdentityToUniformityReduction::new(reference.clone(), 0.0).is_err());
        assert!(IdentityToUniformityReduction::new(reference, 1.5).is_err());
    }

    #[test]
    fn end_to_end_identity_testing_via_uniformity() {
        // Compose: reduction + centralized collision tester on the output.
        use crate::centralized::{CentralizedTester, CollisionTester};
        let reference = families::zipf(64, 1.0).unwrap();
        let eps = 0.6;
        let reduction = IdentityToUniformityReduction::new(reference.clone(), eps).unwrap();
        let m = reduction.output_domain_size();
        let tester = CollisionTester::new(m, eps / 8.0);
        let q = tester.recommended_sample_count().min(40_000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(157);

        let run = |dist: &DenseDistribution, rng: &mut rand::rngs::StdRng| {
            let sampler = dist.alias_sampler();
            let samples: Vec<usize> = (0..q)
                .map(|_| reduction.transform_stream(&sampler, rng))
                .collect();
            tester.test(&samples)
        };

        // Matching reference: accept (run a few trials, take majority).
        let accepts = (0..5)
            .filter(|_| run(&reference, &mut rng).is_accept())
            .count();
        assert!(accepts >= 4, "identity accepted only {accepts}/5");

        // Far input (uniform is far from this zipf): reject.
        let mu = families::uniform(64);
        let rejects = (0..5).filter(|_| run(&mu, &mut rng).is_reject()).count();
        assert!(rejects >= 4, "far input rejected only {rejects}/5");
    }
}
