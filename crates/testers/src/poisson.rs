//! Poisson tail probabilities.
//!
//! Under the uniform distribution, a node's collision count on `q ≪ n^{2/3}`
//! samples is well approximated by `Poisson(C(q,2)/n)`; the biased-node
//! protocols ([`crate::TThresholdTester`]) set their local thresholds from
//! exact Poisson tails at this rate.

/// `Pr[Poisson(λ) ≥ t]`, computed by direct stable summation.
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
#[must_use]
pub fn poisson_upper_tail(lambda: f64, t: u64) -> f64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "lambda must be non-negative"
    );
    if t == 0 {
        return 1.0;
    }
    if lambda <= 0.0 {
        return 0.0;
    }
    // Sum the lower tail Pr[X < t] in log-stable fashion, then complement.
    // For large t relative to lambda, sum the upper tail directly instead.
    if (t as f64) > lambda {
        // Upper tail is small: sum from t upwards until terms vanish.
        let mut log_term = poisson_log_pmf(lambda, t);
        let mut total = log_term.exp();
        let mut k = t;
        loop {
            k += 1;
            log_term += lambda.ln() - (k as f64).ln();
            let term = log_term.exp();
            total += term;
            if term < total * 1e-16 || k > t + 10_000_000 {
                break;
            }
        }
        total.min(1.0)
    } else {
        // Lower tail is small: Pr[X >= t] = 1 - Pr[X <= t-1].
        let mut log_term = poisson_log_pmf(lambda, 0);
        let mut lower = log_term.exp();
        for k in 1..t {
            log_term += lambda.ln() - (k as f64).ln();
            lower += log_term.exp();
        }
        (1.0 - lower).clamp(0.0, 1.0)
    }
}

/// `log Pr[Poisson(λ) = k]` via Stirling-free accumulation.
///
/// # Panics
///
/// Panics if `lambda` is not positive and finite.
#[must_use]
pub fn poisson_log_pmf(lambda: f64, k: u64) -> f64 {
    assert!(
        lambda.is_finite() && lambda > 0.0,
        "lambda must be positive"
    );
    let k_f = k as f64;
    k_f * lambda.ln() - lambda - ln_factorial(k)
}

/// The smallest integer threshold `t` with `Pr[Poisson(λ) ≥ t] ≤ alpha`.
///
/// # Panics
///
/// Panics if `alpha ∉ (0, 1]` or `lambda` is invalid.
#[must_use]
pub fn poisson_threshold_for_tail(lambda: f64, alpha: f64) -> u64 {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "lambda must be non-negative"
    );
    let mut t = dut_stats::convert::ceil_to_usize(lambda) as u64;
    // Walk down while the tail at t-1 still satisfies alpha.
    while t > 0 && poisson_upper_tail(lambda, t - 1) <= alpha {
        t -= 1;
    }
    // Walk up until satisfied.
    while poisson_upper_tail(lambda, t) > alpha {
        t += 1;
    }
    t
}

/// `ln(k!)` by summation for small `k` and Stirling's series for large.
///
/// Delegates to [`dut_probability::occupancy::ln_factorial`] — the same
/// table the binomial sampler uses — so thresholds and the sampling fast
/// path can never disagree on factorials.
#[must_use]
pub fn ln_factorial(k: u64) -> f64 {
    dut_probability::occupancy::ln_factorial(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_at_zero_is_one() {
        assert_eq!(poisson_upper_tail(3.0, 0), 1.0);
        assert_eq!(poisson_upper_tail(0.0, 0), 1.0);
        assert_eq!(poisson_upper_tail(0.0, 1), 0.0);
    }

    #[test]
    fn tail_matches_direct_pmf_sum() {
        let lambda = 2.5;
        for t in 1..15u64 {
            let direct: f64 = (t..60).map(|k| poisson_log_pmf(lambda, k).exp()).sum();
            let tail = poisson_upper_tail(lambda, t);
            assert!((tail - direct).abs() < 1e-10, "t={t}: {tail} vs {direct}");
        }
    }

    #[test]
    fn tail_is_monotone_decreasing_in_t() {
        let lambda = 7.0;
        let mut prev = 1.0;
        for t in 0..40 {
            let tail = poisson_upper_tail(lambda, t);
            assert!(tail <= prev + 1e-15);
            prev = tail;
        }
    }

    #[test]
    fn tail_is_monotone_increasing_in_lambda() {
        for t in [1u64, 3, 10] {
            assert!(poisson_upper_tail(1.0, t) < poisson_upper_tail(2.0, t));
        }
    }

    #[test]
    fn known_values() {
        // Pr[Poi(1) >= 1] = 1 - e^{-1}.
        assert!((poisson_upper_tail(1.0, 1) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        // Pr[Poi(2) >= 2] = 1 - e^{-2}(1 + 2) = 1 - 3e^{-2}.
        assert!((poisson_upper_tail(2.0, 2) - (1.0 - 3.0 * (-2.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn threshold_achieves_target() {
        for &lambda in &[0.01, 0.5, 1.0, 5.0, 40.0] {
            for &alpha in &[0.5, 0.1, 0.01, 1e-4] {
                let t = poisson_threshold_for_tail(lambda, alpha);
                assert!(
                    poisson_upper_tail(lambda, t) <= alpha,
                    "λ={lambda} α={alpha}"
                );
                if t > 0 {
                    assert!(
                        poisson_upper_tail(lambda, t - 1) > alpha,
                        "λ={lambda} α={alpha}: threshold not minimal"
                    );
                }
            }
        }
    }

    #[test]
    fn threshold_alpha_one_is_zero() {
        assert_eq!(poisson_threshold_for_tail(3.0, 1.0), 0);
    }

    #[test]
    fn ln_factorial_agrees_with_direct() {
        let direct: f64 = (2..=200u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(200) - direct).abs() < 1e-6);
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
    }

    #[test]
    fn large_lambda_median_behaviour() {
        // Median of Poisson(100) is near 100.
        let t = poisson_threshold_for_tail(100.0, 0.5);
        assert!((95..=105).contains(&t), "median threshold {t}");
    }
}
