//! Property-based tests for the tester library.

#![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // test code asserts exact values
use dut_probability::{families, DenseDistribution, Sampler};
use dut_testers::calibrate::upper_quantile;
use dut_testers::centralized::CentralizedTester;
use dut_testers::poisson::{poisson_threshold_for_tail, poisson_upper_tail};
use dut_testers::reduction::IdentityToUniformityReduction;
use dut_testers::{Chi2Tester, CollisionTester, PaninskiTester, TThresholdTester};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_full_support_distribution() -> impl Strategy<Value = DenseDistribution> {
    prop::collection::vec(0.05f64..1.0, 4..40)
        .prop_map(|w| DenseDistribution::from_weights(w).expect("positive weights"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn collision_threshold_monotone_in_q(n in 4usize..1000, eps_i in 1u32..=10) {
        let eps = f64::from(eps_i) / 10.0;
        let tester = CollisionTester::new(n, eps);
        prop_assert!(tester.threshold(10) <= tester.threshold(20));
        prop_assert!(tester.threshold(2) >= 0.0);
    }

    #[test]
    fn collision_verdict_deterministic(samples in prop::collection::vec(0usize..64, 0..200)) {
        let tester = CollisionTester::new(64, 0.5);
        prop_assert_eq!(tester.test(&samples), tester.test(&samples));
    }

    #[test]
    fn paninski_threshold_between_means(n_pow in 3u32..12, q_frac in 0.1f64..2.0) {
        let n = 1usize << n_pow;
        let tester = PaninskiTester::new(n, 0.5);
        let q = ((n as f64).sqrt() * q_frac).ceil() as usize + 2;
        let t = tester.threshold(q);
        prop_assert!(t >= tester.uniform_expectation(q));
        prop_assert!(t <= tester.far_expectation(q) + 1e-9);
    }

    #[test]
    fn chi2_accepts_its_own_reference_in_expectation(d in arb_full_support_distribution()) {
        // The statistic's mean under the reference is -1 < threshold.
        let tester = Chi2Tester::new(d.clone(), 0.5);
        let sampler = d.alias_sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let q = 2000;
        let mut mean_stat = 0.0;
        let reps = 5;
        for _ in 0..reps {
            let samples = sampler.sample_many(q, &mut rng);
            mean_stat += tester.statistic(&samples);
        }
        mean_stat /= f64::from(reps);
        prop_assert!(mean_stat < tester.threshold(q), "mean statistic {mean_stat}");
    }

    #[test]
    fn poisson_threshold_tail_guarantee(lambda in 0.01f64..50.0, alpha_i in 1u32..=6) {
        let alpha = 10f64.powi(-(alpha_i as i32));
        let t = poisson_threshold_for_tail(lambda, alpha);
        prop_assert!(poisson_upper_tail(lambda, t) <= alpha);
    }

    #[test]
    fn poisson_tail_decreasing(lambda in 0.1f64..30.0, t in 0u64..50) {
        prop_assert!(
            poisson_upper_tail(lambda, t + 1) <= poisson_upper_tail(lambda, t) + 1e-12
        );
    }

    #[test]
    fn quantile_bounds_exceedance(values in prop::collection::vec(-100.0f64..100.0, 10..200)) {
        let alpha = 0.2;
        let q = upper_quantile(&values, alpha);
        let above = values.iter().filter(|&&v| v > q).count();
        prop_assert!(above as f64 <= alpha * values.len() as f64);
    }

    #[test]
    fn t_threshold_node_threshold_monotone_in_t(
        k_pow in 2u32..10,
        q in 4usize..200,
    ) {
        let n = 1 << 10;
        let k = 1usize << k_pow;
        // Larger T -> larger FP budget -> lower (or equal) node threshold.
        let t1 = TThresholdTester::new(n, k, 1).node_threshold(q);
        let t2 = TThresholdTester::new(n, k, (k / 2).max(2).min(k)).node_threshold(q);
        prop_assert!(t2 <= t1);
    }

    #[test]
    fn reduction_output_in_range(
        d in arb_full_support_distribution(),
        seed in any::<u64>(),
    ) {
        let reduction = IdentityToUniformityReduction::new(d.clone(), 0.5)
            .expect("valid epsilon");
        let sampler = d.alias_sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let out = reduction.transform_stream(&sampler, &mut rng);
            prop_assert!(out < reduction.output_domain_size());
        }
    }

    #[test]
    fn reduction_pushforward_is_distribution(d in arb_full_support_distribution()) {
        let reduction = IdentityToUniformityReduction::new(d.clone(), 0.25)
            .expect("valid epsilon");
        let (out, bot) = reduction.output_distribution(&d);
        prop_assert!((0.0..1.0).contains(&bot));
        let sum: f64 = out.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_matching_reference_gives_uniform(d in arb_full_support_distribution()) {
        let reduction = IdentityToUniformityReduction::new(d.clone(), 0.4)
            .expect("valid epsilon");
        let (out, _) = reduction.output_distribution(&d);
        let uniform = families::uniform(reduction.output_domain_size());
        prop_assert!(dut_probability::distance::l1_distance(&out, &uniform) < 1e-9);
    }
}
