//! Monte-Carlo estimators of the lower-bound quantities, for parameter
//! ranges where exact enumeration ([`crate::exact`]) is infeasible.
//!
//! Sampling from `ν_z` is direct: the cube part `x` is uniform and,
//! given `x`, the sign is `+1` with probability `(1 + z(x)·ε)/2` — no
//! alias table over the `2^{ℓ+1}` universe is needed.

use crate::player::{PairedSample, PlayerFunction};
use dut_probability::{PairedDomain, PerturbationVector};
use rand::Rng;

/// Draws one sample from `ν_z`.
///
/// # Panics
///
/// Panics (debug) on a length mismatch between `z` and the domain.
pub fn sample_nu_z<R: Rng + ?Sized>(
    dom: &PairedDomain,
    z: &PerturbationVector,
    epsilon: f64,
    rng: &mut R,
) -> PairedSample {
    debug_assert_eq!(z.len(), dom.cube_size());
    let x = dut_fourier::character::mask(rng.random_range(0..dom.cube_size()));
    let p_plus = (1.0 + f64::from(z.sign(x)) * epsilon) / 2.0;
    let s = if rng.random::<f64>() < p_plus { 1 } else { -1 };
    (x, s)
}

/// Draws one sample from the uniform distribution on the paired domain.
pub fn sample_uniform<R: Rng + ?Sized>(dom: &PairedDomain, rng: &mut R) -> PairedSample {
    let x = dut_fourier::character::mask(rng.random_range(0..dom.cube_size()));
    let s = if rng.random::<bool>() { 1 } else { -1 };
    (x, s)
}

/// Monte-Carlo estimate of `μ(G)` from `trials` uniform tuples.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn mu_g_monte_carlo<G, R>(dom: &PairedDomain, q: usize, g: &G, trials: u32, rng: &mut R) -> f64
where
    G: PlayerFunction + ?Sized,
    R: Rng + ?Sized,
{
    assert!(trials > 0, "need at least one trial");
    let mut hits = 0u32;
    let mut tuple = Vec::with_capacity(q);
    for _ in 0..trials {
        tuple.clear();
        for _ in 0..q {
            tuple.push(sample_uniform(dom, rng));
        }
        if g.output(&tuple) {
            hits += 1;
        }
    }
    f64::from(hits) / f64::from(trials)
}

/// Monte-Carlo estimate of `ν_z(G)` from `trials` tuples drawn from
/// `ν_z^q`.
///
/// # Panics
///
/// Panics if `trials == 0` or `ε ∉ [0, 1]`.
pub fn nu_g_monte_carlo<G, R>(
    dom: &PairedDomain,
    q: usize,
    g: &G,
    z: &PerturbationVector,
    epsilon: f64,
    trials: u32,
    rng: &mut R,
) -> f64
where
    G: PlayerFunction + ?Sized,
    R: Rng + ?Sized,
{
    assert!(trials > 0, "need at least one trial");
    assert!((0.0..=1.0).contains(&epsilon), "epsilon out of range");
    let mut hits = 0u32;
    let mut tuple = Vec::with_capacity(q);
    for _ in 0..trials {
        tuple.clear();
        for _ in 0..q {
            tuple.push(sample_nu_z(dom, z, epsilon, rng));
        }
        if g.output(&tuple) {
            hits += 1;
        }
    }
    f64::from(hits) / f64::from(trials)
}

/// Monte-Carlo estimate of the `z`-ensemble moments: draws `z_draws`
/// random perturbation vectors and, for each, estimates `ν_z(G)` from
/// `tuple_trials` tuples. Returns `(mean_deviation, second_moment)`
/// of `ν_z(G) − μ̂(G)`.
///
/// The second moment is debiased by subtracting the within-`z` binomial
/// sampling variance `ν̂(1−ν̂)/tuple_trials`, so it estimates the true
/// `E_z[(ν_z(G) − μ(G))²]` rather than inflating it with Monte-Carlo
/// noise.
///
/// # Panics
///
/// Panics if any trial count is zero or `ε ∉ [0, 1]`.
#[allow(clippy::too_many_arguments)]
pub fn z_moments_monte_carlo<G, R>(
    dom: &PairedDomain,
    q: usize,
    g: &G,
    epsilon: f64,
    z_draws: u32,
    tuple_trials: u32,
    mu_trials: u32,
    rng: &mut R,
) -> (f64, f64)
where
    G: PlayerFunction + ?Sized,
    R: Rng + ?Sized,
{
    assert!(z_draws > 0, "need at least one z draw");
    let mu = mu_g_monte_carlo(dom, q, g, mu_trials, rng);
    let mut sum_dev = 0.0f64;
    let mut sum_sq = 0.0f64;
    for _ in 0..z_draws {
        let z = PerturbationVector::random(dom.cube_size(), rng);
        let nu = nu_g_monte_carlo(dom, q, g, &z, epsilon, tuple_trials, rng);
        let dev = nu - mu;
        let within_var = nu * (1.0 - nu) / f64::from(tuple_trials);
        sum_dev += dev;
        sum_sq += (dev * dev - within_var).max(0.0);
    }
    (sum_dev / f64::from(z_draws), sum_sq / f64::from(z_draws))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use crate::player::CollisionIndicator;
    use rand::SeedableRng;

    #[test]
    fn nu_z_sampler_matches_exact_distribution() {
        let dom = PairedDomain::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let z = PerturbationVector::random(dom.cube_size(), &mut rng);
        let eps = 0.6;
        let nu = dom.perturbed_distribution(&z, eps).unwrap();
        let trials = 60_000;
        let mut counts = vec![0u64; dom.universe_size()];
        for _ in 0..trials {
            let (x, s) = sample_nu_z(&dom, &z, eps, &mut rng);
            counts[dom.encode(x, s)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = nu.prob(i) * trials as f64;
            let sd = (nu.prob(i) * trials as f64).sqrt();
            assert!(
                (c as f64 - expected).abs() < 6.0 * sd + 5.0,
                "index {i}: count {c}, expected {expected}"
            );
        }
    }

    #[test]
    fn uniform_sampler_covers_domain() {
        let dom = PairedDomain::new(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let (x, s) = sample_uniform(&dom, &mut rng);
            seen.insert(dom.encode(x, s));
        }
        assert_eq!(seen.len(), dom.universe_size());
    }

    #[test]
    fn mc_mu_matches_exact() {
        let dom = PairedDomain::new(2);
        let g = CollisionIndicator::new(1);
        let exact_mu = exact::mu_g(&dom, 3, &g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(35);
        let mc = mu_g_monte_carlo(&dom, 3, &g, 40_000, &mut rng);
        assert!((mc - exact_mu).abs() < 0.01, "mc {mc} vs exact {exact_mu}");
    }

    #[test]
    fn mc_nu_matches_exact() {
        let dom = PairedDomain::new(2);
        let g = CollisionIndicator::new(1);
        let z = PerturbationVector::from_code(4, 0b0101);
        let eps = 0.8;
        let exact_nu = exact::nu_g(&dom, 3, &g, &z, eps);
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        let mc = nu_g_monte_carlo(&dom, 3, &g, &z, eps, 40_000, &mut rng);
        assert!((mc - exact_nu).abs() < 0.01, "mc {mc} vs exact {exact_nu}");
    }

    #[test]
    fn mc_second_moment_tracks_exact() {
        let dom = PairedDomain::new(2);
        let q = 2;
        let eps = 0.7;
        let g = CollisionIndicator::new(1);
        let exact_m = exact::z_moments_exact(&dom, q, &g, eps);
        let mut rng = rand::rngs::StdRng::seed_from_u64(39);
        let (_, second) = z_moments_monte_carlo(&dom, q, &g, eps, 300, 4000, 200_000, &mut rng);
        assert!(
            (second - exact_m.second_moment).abs() < 0.3 * exact_m.second_moment + 1e-4,
            "mc {second} vs exact {}",
            exact_m.second_moment
        );
    }
}
