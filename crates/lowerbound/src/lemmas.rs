//! The main lemmas (4.2, 4.3, 4.4, 5.1) as executable checks: each
//! lemma bounds how differently a player function `G` behaves on the
//! hard family versus uniform, in terms of `var(G)`.
//!
//! The left-hand sides are computed exactly ([`crate::exact`]); the
//! right-hand sides are the paper's closed-form expressions. A
//! [`LemmaCheck`] packages both with the observed/bound ratio.

use crate::exact::{self, ZMoments};
use crate::player::PlayerFunction;
use dut_probability::PairedDomain;

/// The outcome of checking one lemma instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LemmaCheck {
    /// The exact left-hand side.
    pub lhs: f64,
    /// The paper's right-hand side.
    pub rhs: f64,
    /// Whether the precondition on `q` was satisfied (checks with a
    /// violated precondition are reported but vacuous).
    pub precondition: bool,
}

impl LemmaCheck {
    /// `lhs ≤ rhs` (with numeric slack), or the precondition failed.
    #[must_use]
    pub fn holds(&self) -> bool {
        !self.precondition || self.lhs <= self.rhs * (1.0 + 1e-9) + 1e-15
    }

    /// `lhs / rhs` — how much slack the bound has (`≤ 1` means holds).
    /// Degenerate instances (`rhs = 0`, e.g. constant players with zero
    /// variance) report 0 when the lhs is enumeration round-off.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.rhs <= 0.0 {
            if self.lhs.abs() < 1e-12 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.lhs / self.rhs
        }
    }
}

/// Right-hand side of Lemma 5.1: `(4qε²/√n)·√var(G)`.
#[must_use]
pub fn lemma_5_1_rhs(n: usize, q: usize, epsilon: f64, var: f64) -> f64 {
    4.0 * q as f64 * epsilon * epsilon / (n as f64).sqrt() * var.sqrt()
}

/// Precondition of Lemma 5.1: `q ≤ √n/(4ε²)`.
#[must_use]
pub fn lemma_5_1_precondition(n: usize, q: usize, epsilon: f64) -> bool {
    (q as f64) <= (n as f64).sqrt() / (4.0 * epsilon * epsilon)
}

/// Right-hand side of Lemma 4.2:
/// `(20·q²ε⁴/n + 2·qε²/n)·var(G)`.
///
/// **Constant correction.** The paper states the linear term as
/// `qε²/n·var(G)`, but exact enumeration falsifies that constant: for
/// the sign-dictator `G(s₁) = 1[s₁ = −1]` at `q = 1`, the exact
/// left-hand side is `ε²/(2n) = 2·qε²·var(G)/n` (`var = 1/4`), which
/// exceeds `qε²·var(G)/n`. A Cauchy–Schwarz pass over the level-1 term
/// of the expansion gives the tight general constant 2 (the dictator is
/// extremal), so this implementation uses `2·qε²/n`. The `20q²ε⁴/n`
/// quadratic term is kept as stated. See EXPERIMENTS.md (E5).
#[must_use]
pub fn lemma_4_2_rhs(n: usize, q: usize, epsilon: f64, var: f64) -> f64 {
    let n_f = n as f64;
    let q_f = q as f64;
    let e2 = epsilon * epsilon;
    (20.0 * q_f * q_f * e2 * e2 / n_f + 2.0 * q_f * e2 / n_f) * var
}

/// Precondition of Lemma 4.2: `q ≤ √n/(20ε²)`.
#[must_use]
pub fn lemma_4_2_precondition(n: usize, q: usize, epsilon: f64) -> bool {
    (q as f64) <= (n as f64).sqrt() / (20.0 * epsilon * epsilon)
}

/// Right-hand side of Lemma 4.3 for bias parameter `m`:
/// `(q/√n + (q/√n)^{1/(2m+2)}) · 40m²ε² · var(G)^{(2m+1)/(2m+2)}`.
#[must_use]
pub fn lemma_4_3_rhs(n: usize, q: usize, epsilon: f64, m: u32, var: f64) -> f64 {
    let ratio = q as f64 / (n as f64).sqrt();
    let exponent = 1.0 / f64::from(2 * m + 2);
    let var_exponent = f64::from(2 * m + 1) / f64::from(2 * m + 2);
    (ratio + ratio.powf(exponent))
        * 40.0
        * f64::from(m * m)
        * epsilon
        * epsilon
        * var.powf(var_exponent)
}

/// Precondition of Lemma 4.3:
/// `q ≤ min(√n/(40m²ε²), √n/(40m²ε²)^{m+1})`.
#[must_use]
pub fn lemma_4_3_precondition(n: usize, q: usize, epsilon: f64, m: u32) -> bool {
    let sqrt_n = (n as f64).sqrt();
    let base = 40.0 * f64::from(m * m) * epsilon * epsilon;
    let first = sqrt_n / base;
    let second = sqrt_n / base.powi(m as i32 + 1);
    (q as f64) <= first.min(second)
}

/// Right-hand side of Lemma 4.4 with its (unspecified-in-the-paper)
/// constant `c`:
/// `2ε²q/n·var + c·(q/√n + (q/√n)^{1/(m+1)})·m²ε²·var^{2−1/(m+1)}`.
#[must_use]
pub fn lemma_4_4_rhs(n: usize, q: usize, epsilon: f64, m: u32, var: f64, c: f64) -> f64 {
    let n_f = n as f64;
    let q_f = q as f64;
    let e2 = epsilon * epsilon;
    let ratio = q_f / n_f.sqrt();
    let exponent = 1.0 / f64::from(m + 1);
    2.0 * e2 * q_f / n_f * var
        + c * (ratio + ratio.powf(exponent)) * f64::from(m * m) * e2 * var.powf(2.0 - exponent)
}

/// Precondition of Lemma 4.4:
/// `q ≤ min(√n/((40m)²ε²)^{m+1}, √n/((40m)²ε²))`.
#[must_use]
pub fn lemma_4_4_precondition(n: usize, q: usize, epsilon: f64, m: u32) -> bool {
    let sqrt_n = (n as f64).sqrt();
    let base = (40.0 * f64::from(m)).powi(2) * epsilon * epsilon;
    let first = sqrt_n / base.powi(m as i32 + 1);
    let second = sqrt_n / base;
    (q as f64) <= first.min(second)
}

/// Checks Lemma 5.1 exactly:
/// `|E_z[ν_z(G)] − μ(G)| ≤ (4qε²/√n)·√var(G)`.
///
/// # Panics
///
/// Panics if the exact-enumeration guards trip (see [`crate::exact`]).
#[must_use]
pub fn check_lemma_5_1<G: PlayerFunction + ?Sized>(
    dom: &PairedDomain,
    q: usize,
    epsilon: f64,
    g: &G,
) -> LemmaCheck {
    let n = dom.universe_size();
    let m = exact::z_moments_exact(dom, q, g, epsilon);
    LemmaCheck {
        lhs: m.first_moment_abs(),
        rhs: lemma_5_1_rhs(n, q, epsilon, exact::var_g_from_mu(m.mu)),
        precondition: lemma_5_1_precondition(n, q, epsilon),
    }
}

/// Checks Lemma 4.2 exactly:
/// `E_z[(ν_z(G) − μ(G))²] ≤ (20q²ε⁴/n + qε²/n)·var(G)`.
///
/// # Panics
///
/// Panics if the exact-enumeration guards trip.
#[must_use]
pub fn check_lemma_4_2<G: PlayerFunction + ?Sized>(
    dom: &PairedDomain,
    q: usize,
    epsilon: f64,
    g: &G,
) -> LemmaCheck {
    let n = dom.universe_size();
    let m = exact::z_moments_exact(dom, q, g, epsilon);
    LemmaCheck {
        lhs: m.second_moment,
        rhs: lemma_4_2_rhs(n, q, epsilon, exact::var_g_from_mu(m.mu)),
        precondition: lemma_4_2_precondition(n, q, epsilon),
    }
}

/// Checks Lemma 4.3 exactly for bias parameter `m`:
/// `|E_z[ν_z(G)] − μ(G)| ≤ rhs(m)`.
///
/// # Panics
///
/// Panics if the exact-enumeration guards trip.
#[must_use]
pub fn check_lemma_4_3<G: PlayerFunction + ?Sized>(
    dom: &PairedDomain,
    q: usize,
    epsilon: f64,
    m: u32,
    g: &G,
) -> LemmaCheck {
    let n = dom.universe_size();
    let moments = exact::z_moments_exact(dom, q, g, epsilon);
    LemmaCheck {
        lhs: moments.first_moment_abs(),
        rhs: lemma_4_3_rhs(n, q, epsilon, m, exact::var_g_from_mu(moments.mu)),
        precondition: lemma_4_3_precondition(n, q, epsilon, m),
    }
}

/// Checks Lemma 4.4 exactly with constant `c`.
///
/// # Panics
///
/// Panics if the exact-enumeration guards trip.
#[must_use]
pub fn check_lemma_4_4<G: PlayerFunction + ?Sized>(
    dom: &PairedDomain,
    q: usize,
    epsilon: f64,
    m: u32,
    c: f64,
    g: &G,
) -> LemmaCheck {
    let n = dom.universe_size();
    let moments = exact::z_moments_exact(dom, q, g, epsilon);
    LemmaCheck {
        lhs: moments.second_moment,
        rhs: lemma_4_4_rhs(n, q, epsilon, m, exact::var_g_from_mu(moments.mu), c),
        precondition: lemma_4_4_precondition(n, q, epsilon, m),
    }
}

/// Pre-packaged moments variant: builds all four checks from already
/// computed [`ZMoments`] (avoids re-enumerating for each lemma).
#[must_use]
pub fn checks_from_moments(
    n: usize,
    q: usize,
    epsilon: f64,
    m_bias: u32,
    c: f64,
    moments: &ZMoments,
) -> [LemmaCheck; 4] {
    let var = exact::var_g_from_mu(moments.mu);
    [
        LemmaCheck {
            lhs: moments.first_moment_abs(),
            rhs: lemma_5_1_rhs(n, q, epsilon, var),
            precondition: lemma_5_1_precondition(n, q, epsilon),
        },
        LemmaCheck {
            lhs: moments.second_moment,
            rhs: lemma_4_2_rhs(n, q, epsilon, var),
            precondition: lemma_4_2_precondition(n, q, epsilon),
        },
        LemmaCheck {
            lhs: moments.first_moment_abs(),
            rhs: lemma_4_3_rhs(n, q, epsilon, m_bias, var),
            precondition: lemma_4_3_precondition(n, q, epsilon, m_bias),
        },
        LemmaCheck {
            lhs: moments.second_moment,
            rhs: lemma_4_4_rhs(n, q, epsilon, m_bias, var, c),
            precondition: lemma_4_4_precondition(n, q, epsilon, m_bias),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::player::{
        CollisionIndicator, CubeDictator, PairedSample, SignDictator, SignMajority, SignParity,
        TableFunction,
    };
    use rand::SeedableRng;

    fn small_domain() -> PairedDomain {
        PairedDomain::new(2) // universe 8, 16 perturbation vectors
    }

    #[test]
    fn lemma_5_1_holds_for_canonical_players() {
        let dom = small_domain();
        for q in 1..=3usize {
            for &eps in &[0.1, 0.3, 0.5] {
                let checks = [
                    check_lemma_5_1(&dom, q, eps, &CollisionIndicator::new(1)),
                    check_lemma_5_1(&dom, q, eps, &SignDictator::new(0)),
                    check_lemma_5_1(&dom, q, eps, &SignParity),
                    check_lemma_5_1(&dom, q, eps, &SignMajority),
                    check_lemma_5_1(&dom, q, eps, &CubeDictator::new(0, 1)),
                ];
                for (i, c) in checks.iter().enumerate() {
                    assert!(c.holds(), "player {i} q={q} eps={eps}: {c:?}");
                }
            }
        }
    }

    #[test]
    fn lemma_4_2_holds_for_canonical_players() {
        let dom = small_domain();
        for q in 1..=3usize {
            for &eps in &[0.1, 0.3] {
                let checks = [
                    check_lemma_4_2(&dom, q, eps, &CollisionIndicator::new(1)),
                    check_lemma_4_2(&dom, q, eps, &SignDictator::new(0)),
                    check_lemma_4_2(&dom, q, eps, &SignParity),
                ];
                for (i, c) in checks.iter().enumerate() {
                    assert!(c.holds(), "player {i} q={q} eps={eps}: {c:?}");
                }
            }
        }
    }

    #[test]
    fn lemma_4_2_holds_for_random_functions() {
        let dom = small_domain();
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for &density in &[0.1, 0.5, 0.9] {
            for _ in 0..3 {
                let g = TableFunction::random(dom, 2, density, &mut rng);
                let check = check_lemma_4_2(&dom, 2, 0.25, &g);
                assert!(check.holds(), "density {density}: {check:?}");
            }
        }
    }

    #[test]
    fn lemma_4_3_holds_for_biased_functions() {
        // The AND-type regime: highly biased functions, small variance.
        let dom = small_domain();
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        for m in 1..=3u32 {
            for _ in 0..3 {
                let g = TableFunction::random(dom, 2, 0.03, &mut rng);
                let check = check_lemma_4_3(&dom, 2, 0.1, m, &g);
                assert!(check.holds(), "m={m}: {check:?}");
            }
        }
    }

    #[test]
    fn lemma_4_4_holds_with_unit_constant_on_small_instances() {
        let dom = small_domain();
        let g = CollisionIndicator::new(1);
        let check = check_lemma_4_4(&dom, 1, 0.05, 1, 1.0, &g);
        assert!(check.holds(), "{check:?}");
    }

    #[test]
    fn exhaustive_all_player_functions_tiny_instance() {
        // ell=1, q=1: player functions are over 2 bits -> 16 functions.
        // Check Lemma 5.1 and 4.2 for every single one.
        let dom = PairedDomain::new(1);
        let q = 1;
        for code in 0u32..16 {
            let table = dut_fourier::BooleanFunction::from_fn(2, |x| f64::from((code >> x) & 1));
            let g = TableFunction::new(dom, q, table);
            for &eps in &[0.1, 0.4] {
                let c1 = check_lemma_5_1(&dom, q, eps, &g);
                assert!(c1.holds(), "code={code} eps={eps}: {c1:?}");
                let c2 = check_lemma_4_2(&dom, q, eps, &g);
                assert!(c2.holds(), "code={code} eps={eps}: {c2:?}");
            }
        }
    }

    #[test]
    fn ratio_reports_slack_correctly() {
        let check = LemmaCheck {
            lhs: 0.5,
            rhs: 1.0,
            precondition: true,
        };
        assert!((check.ratio() - 0.5).abs() < 1e-15);
        assert!(check.holds());
        let violated = LemmaCheck {
            lhs: 2.0,
            rhs: 1.0,
            precondition: true,
        };
        assert!(!violated.holds());
        let vacuous = LemmaCheck {
            lhs: 2.0,
            rhs: 1.0,
            precondition: false,
        };
        assert!(vacuous.holds());
        let degenerate = LemmaCheck {
            lhs: 0.0,
            rhs: 0.0,
            precondition: true,
        };
        assert_eq!(degenerate.ratio(), 0.0);
    }

    #[test]
    fn preconditions_bite_for_large_q() {
        assert!(!lemma_5_1_precondition(16, 100, 0.5));
        assert!(lemma_5_1_precondition(1 << 20, 100, 0.5));
        assert!(!lemma_4_3_precondition(16, 100, 0.5, 2));
    }

    #[test]
    fn checks_from_moments_consistent_with_direct() {
        let dom = small_domain();
        let q = 2;
        let eps = 0.3;
        let g = CollisionIndicator::new(1);
        let moments = crate::exact::z_moments_exact(&dom, q, &g, eps);
        let packed = checks_from_moments(dom.universe_size(), q, eps, 1, 1.0, &moments);
        let direct_5_1 = check_lemma_5_1(&dom, q, eps, &g);
        assert!((packed[0].lhs - direct_5_1.lhs).abs() < 1e-15);
        assert!((packed[0].rhs - direct_5_1.rhs).abs() < 1e-15);
        let direct_4_2 = check_lemma_4_2(&dom, q, eps, &g);
        assert!((packed[1].rhs - direct_4_2.rhs).abs() < 1e-15);
    }

    #[test]
    fn constant_functions_have_zero_lhs() {
        let dom = small_domain();
        let always = |_: &[PairedSample]| true;
        let c = check_lemma_4_2(&dom, 2, 0.5, &always);
        assert_eq!(c.lhs, 0.0);
        assert_eq!(c.rhs, 0.0); // var = 0
        assert!(c.holds());
    }
}
