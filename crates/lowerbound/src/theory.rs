//! Every theorem's predicted sample complexity, as formulas (constants
//! set to 1 unless the paper specifies them). The benchmark harness
//! prints these columns next to the measured values so the *shape*
//! comparison — slopes, crossovers — is direct.

/// Centralized uniformity testing: `q = Θ(√n/ε²)` (Paninski).
///
/// # Panics
///
/// Panics on degenerate arguments.
#[must_use]
pub fn centralized(n: usize, epsilon: f64) -> f64 {
    validate(n, 1, epsilon);
    (n as f64).sqrt() / (epsilon * epsilon)
}

/// Theorem 1.1 / 6.1: any decision rule needs
/// `q = Ω(min(√(n/k), n/k)/ε²)`.
///
/// # Panics
///
/// Panics on degenerate arguments.
#[must_use]
pub fn theorem_1_1(n: usize, k: usize, epsilon: f64) -> f64 {
    validate(n, k, epsilon);
    let n_f = n as f64;
    let k_f = k as f64;
    ((n_f / k_f).sqrt()).min(n_f / k_f) / (epsilon * epsilon)
}

/// Theorem 1.2: the AND rule needs `q = Ω(√n/(log²k · ε²))`, valid for
/// `k ≤ 2^{c/ε}`. Uses `log₂(k) + 2` to stay finite at `k = 1`.
///
/// # Panics
///
/// Panics on degenerate arguments.
#[must_use]
pub fn theorem_1_2(n: usize, k: usize, epsilon: f64) -> f64 {
    validate(n, k, epsilon);
    let log_k = (k as f64).log2() + 2.0;
    (n as f64).sqrt() / (log_k * log_k * epsilon * epsilon)
}

/// The validity range of Theorem 1.2: `k ≤ 2^{c/ε}` with `c = 1`.
#[must_use]
pub fn theorem_1_2_k_range(epsilon: f64) -> f64 {
    (1.0 / epsilon).exp2()
}

/// Theorem 1.3: the `T`-threshold rule with
/// `T < c/(ε²·log²(k/ε))` needs
/// `q = Ω(√n/(T·log²(k/ε)·ε²))`.
///
/// # Panics
///
/// Panics on degenerate arguments or `t == 0`.
#[must_use]
pub fn theorem_1_3(n: usize, k: usize, epsilon: f64, t: usize) -> f64 {
    validate(n, k, epsilon);
    assert!(t >= 1, "threshold must be at least 1");
    let log_term = (k as f64 / epsilon).log2().max(1.0);
    (n as f64).sqrt() / (t as f64 * log_term * log_term * epsilon * epsilon)
}

/// The small-threshold condition of Theorem 1.3 (`c = 1`):
/// `T < 1/(ε²·log²(k/ε))`.
#[must_use]
pub fn theorem_1_3_threshold_range(k: usize, epsilon: f64) -> f64 {
    let log_term = (k as f64 / epsilon).log2().max(1.0);
    1.0 / (epsilon * epsilon * log_term * log_term)
}

/// Theorem 1.4: learning a `δ`-approximation with `q` queries per node
/// needs `k = Ω(n²/q²)` nodes.
///
/// # Panics
///
/// Panics on degenerate arguments.
#[must_use]
pub fn theorem_1_4_min_players(n: usize, q: usize) -> f64 {
    assert!(n >= 1 && q >= 1, "degenerate parameters");
    (n as f64 / q as f64).powi(2)
}

/// Theorem 6.4: with `r`-bit messages the bound becomes
/// `q = Ω(min(√(n/(2^r·k)), n/(2^r·k))/ε²)`.
///
/// # Panics
///
/// Panics on degenerate arguments or `r == 0`.
#[must_use]
pub fn theorem_6_4(n: usize, k: usize, epsilon: f64, r: u32) -> f64 {
    validate(n, k, epsilon);
    assert!(r >= 1, "messages carry at least one bit");
    let effective_k = (k as f64) * (r as f64).exp2();
    let n_f = n as f64;
    ((n_f / effective_k).sqrt()).min(n_f / effective_k) / (epsilon * epsilon)
}

/// The `\[7\]` AND-rule **upper** bound: `q = O(√n/(k^{Θ(ε²)}·ε²))`
/// (constant in the exponent set to 1).
///
/// # Panics
///
/// Panics on degenerate arguments.
#[must_use]
pub fn fmo_and_upper(n: usize, k: usize, epsilon: f64) -> f64 {
    validate(n, k, epsilon);
    (n as f64).sqrt() / ((k as f64).powf(epsilon * epsilon) * epsilon * epsilon)
}

/// The `\[7\]` threshold-rule **upper** bound: `q = O(√(n/k)/ε²)` —
/// matched by Theorem 1.1, hence optimal.
///
/// # Panics
///
/// Panics on degenerate arguments.
#[must_use]
pub fn fmo_threshold_upper(n: usize, k: usize, epsilon: f64) -> f64 {
    validate(n, k, epsilon);
    (n as f64 / k as f64).sqrt() / (epsilon * epsilon)
}

/// The `\[1\]` single-sample node count: `k = Θ(n/(2^{ℓ/2}·ε²))` for
/// `ℓ`-bit messages.
///
/// # Panics
///
/// Panics on degenerate arguments or `ell == 0`.
#[must_use]
pub fn act_single_sample_nodes(n: usize, epsilon: f64, ell: u32) -> f64 {
    validate(n, 1, epsilon);
    assert!(ell >= 1, "messages carry at least one bit");
    n as f64 / ((f64::from(ell) / 2.0).exp2() * epsilon * epsilon)
}

/// The asymmetric-cost optimal time (§6.2): `τ = Θ(√n/(ε²·‖T‖₂))`.
///
/// # Panics
///
/// Panics on degenerate arguments.
#[must_use]
pub fn asymmetric_time(n: usize, epsilon: f64, rate_l2_norm: f64) -> f64 {
    validate(n, 1, epsilon);
    assert!(
        rate_l2_norm.is_finite() && rate_l2_norm > 0.0,
        "rate norm must be positive"
    );
    (n as f64).sqrt() / (epsilon * epsilon * rate_l2_norm)
}

/// Section 6.2 remark: minimal players for fixed `q`:
/// `k ≥ n/(q·ε²)` when `q ≤ 1/ε²`, and `k ≥ n/(q²·ε⁴)` when larger.
///
/// # Panics
///
/// Panics on degenerate arguments.
#[must_use]
pub fn min_players_for_fixed_q(n: usize, q: usize, epsilon: f64) -> f64 {
    validate(n, q, epsilon);
    let e2 = epsilon * epsilon;
    if (q as f64) <= 1.0 / e2 {
        n as f64 / (q as f64 * e2)
    } else {
        n as f64 / ((q * q) as f64 * e2 * e2)
    }
}

fn validate(n: usize, k: usize, epsilon: f64) {
    assert!(n >= 1, "domain must be non-empty");
    assert!(k >= 1, "need at least one player");
    assert!(
        epsilon > 0.0 && epsilon <= 1.0,
        "epsilon must be in (0, 1], got {epsilon}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_1_1_reduces_to_centralized_at_k1() {
        let n = 1 << 12;
        assert!((theorem_1_1(n, 1, 0.5) - centralized(n, 0.5)).abs() < 1e-9);
    }

    #[test]
    fn theorem_1_1_switches_regimes() {
        // For k <= n: sqrt(n/k); for k > n the n/k branch is smaller.
        let n = 256;
        let small_k = theorem_1_1(n, 16, 1.0);
        assert!((small_k - 4.0).abs() < 1e-12); // sqrt(256/16)
        let large_k = theorem_1_1(n, 1024, 1.0);
        assert!((large_k - 0.25).abs() < 1e-12); // 256/1024
    }

    #[test]
    fn and_rule_bound_nearly_flat_in_k() {
        // Theorem 1.2: only log^2 decay in k — contrast with sqrt decay.
        let n = 1 << 16;
        let eps = 0.25;
        let q1 = theorem_1_2(n, 2, eps);
        let q2 = theorem_1_2(n, 1024, eps);
        // Three orders of magnitude more players, less than 20x cheaper.
        assert!(q1 / q2 < 20.0);
        // While the any-rule bound drops by sqrt(512) ≈ 22.6x.
        let any1 = theorem_1_1(n, 2, eps);
        let any2 = theorem_1_1(n, 1024, eps);
        assert!(any1 / any2 > 20.0);
    }

    #[test]
    fn and_rule_dominates_any_rule() {
        // The AND lower bound is at least the any-rule bound up to
        // log factors; check simple dominance in a regime where it holds.
        let n = 1 << 20;
        let eps = 0.1;
        for k in [4usize, 64, 1024] {
            assert!(
                theorem_1_2(n, k, eps) >= theorem_1_1(n, k, eps) / 10.0,
                "k = {k}"
            );
        }
    }

    #[test]
    fn threshold_bound_decays_in_t() {
        let n = 1 << 16;
        let k = 64;
        let eps = 0.2;
        let t1 = theorem_1_3(n, k, eps, 1);
        let t4 = theorem_1_3(n, k, eps, 4);
        assert!((t1 / t4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_range_shrinks_with_epsilon() {
        assert!(theorem_1_3_threshold_range(64, 0.1) > theorem_1_3_threshold_range(64, 0.5));
    }

    #[test]
    fn learning_bound_quadratic() {
        assert!((theorem_1_4_min_players(100, 10) - 100.0).abs() < 1e-12);
        assert!(
            (theorem_1_4_min_players(1000, 10) / theorem_1_4_min_players(100, 10) - 100.0).abs()
                < 1e-9
        );
    }

    #[test]
    fn message_bits_act_like_extra_players() {
        let n = 1 << 14;
        let eps = 0.5;
        // r bits multiply k by 2^r inside the bound.
        assert!((theorem_6_4(n, 16, eps, 2) - theorem_1_1(n, 64, eps)).abs() < 1e-9);
    }

    #[test]
    fn fmo_upper_bounds_dominate_lower_bounds() {
        // Upper >= lower (constants 1): threshold case is exactly equal.
        let n = 1 << 12;
        let eps = 0.5;
        for k in [2usize, 16, 256] {
            assert!(
                fmo_threshold_upper(n, k, eps) >= theorem_1_1(n, k, eps) - 1e-9,
                "k = {k}"
            );
        }
    }

    #[test]
    fn and_upper_vs_lower_gap_is_the_open_question() {
        // The paper leaves a quadratic gap in the exponent of k; at
        // least the ordering upper >= lower must hold for small k.
        let n = 1 << 20;
        let eps = 0.2;
        let k = 16;
        assert!(fmo_and_upper(n, k, eps) >= theorem_1_2(n, k, eps) / 8.0);
    }

    #[test]
    fn single_sample_node_count_scaling() {
        let n = 1 << 12;
        let eps = 0.5;
        // 2 extra message bits halve the node count.
        let l2 = act_single_sample_nodes(n, eps, 2);
        let l4 = act_single_sample_nodes(n, eps, 4);
        assert!((l2 / l4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_time_matches_symmetric_case() {
        // Unit rates: ||T||_2 = sqrt(k), recovering sqrt(n/k)/eps^2.
        let n = 1 << 10;
        let k = 16;
        let eps = 0.5;
        let tau = asymmetric_time(n, eps, (k as f64).sqrt());
        assert!((tau - fmo_threshold_upper(n, k, eps)).abs() < 1e-9);
    }

    #[test]
    fn fixed_q_remark_regimes() {
        let n = 1 << 10;
        let eps = 0.5; // 1/eps^2 = 4
                       // q <= 4: k ~ n/(q eps^2).
        assert!((min_players_for_fixed_q(n, 1, eps) - n as f64 / 0.25).abs() < 1e-9);
        // q > 4: k ~ n/(q^2 eps^4).
        let k8 = min_players_for_fixed_q(n, 8, eps);
        assert!((k8 - n as f64 / (64.0 * 0.0625)).abs() < 1e-9);
    }

    #[test]
    fn validity_range_is_exponential() {
        assert!(theorem_1_2_k_range(0.1) > theorem_1_2_k_range(0.5));
        assert!((theorem_1_2_k_range(0.5) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn formulas_validate_epsilon() {
        let _ = theorem_1_1(16, 4, 0.0);
    }
}
