//! The mixture `E_z[ν_z^q]` and its distance from `uniform^q` — the
//! quantity behind the *centralized* √n lower bound (Paninski), which
//! the paper's Section 3 machinery refines player-by-player.
//!
//! Why testing needs √n samples even centrally: the average of the
//! hard family over `z` is exactly uniform per sample, and remains
//! close to `uniform^q` in total variation until `q ≈ √n`. This module
//! computes that closeness **exactly**:
//!
//! * [`mixture_density`] — `E_z[ν_z^q(w)]` in `O(2^q)` per tuple via
//!   the even-cover support (no enumeration over `z`),
//! * [`tv_mixture_uniform_exact`] / [`tv_mixture_uniform_monte_carlo`]
//!   — total variation `TV(E_z[ν_z^q], U^q)`,
//! * [`chi2_mixture_exact`] — the Ingster χ²:
//!   `χ²(E_z[ν_z^q], U^q) = E_W[(1 + 2ε²W/n)^q] − 1` with
//!   `W = Σ_{i≤n/2} Rademacher_i`, computed exactly from binomial
//!   weights.

use crate::player::PairedSample;
use dut_fourier::evencover::is_evenly_covered;
use dut_probability::PairedDomain;
use rand::Rng;

/// The exact mixture density `E_z[ν_z^q(w)]` of a sample tuple, in
/// `O(q log q)` time.
///
/// By Claim 3.1 and odd cancelation, only the evenly-covered subsets
/// survive the average:
/// `E_z[ν_z^q(x,s)] = n^{-q} · Σ_{S : x_S evenly covered} ε^{|S|} χ_S(s)`,
/// and that sum **factorizes over the groups of equal cube points**:
/// a subset is evenly covered iff its intersection with every group
/// has even size, and the even-size part of
/// `Σ_{T⊆g} ε^{|T|} Π_{j∈T} s_j = Π_{j∈g}(1 + ε·s_j)` is
/// `(Π(1 + ε·s_j) + Π(1 − ε·s_j))/2`.
///
/// # Panics
///
/// Panics if `ε ∉ [0, 1]`.
#[must_use]
pub fn mixture_density(dom: &PairedDomain, epsilon: f64, tuple: &[PairedSample]) -> f64 {
    mixture_likelihood_ratio(epsilon, tuple)
        * (dom.universe_size() as f64).powi(-dut_fourier::character::powi_exp(tuple.len() as u64))
}

/// The likelihood ratio `E_z[ν_z^q(w)] / uniform^q(w)` of a sample
/// tuple — the per-group product without the `n^{-q}` normalization,
/// which underflows for large `q`. Use this for statistics of long
/// tuples.
///
/// # Panics
///
/// Panics if `ε ∉ [0, 1]`.
#[must_use]
pub fn mixture_likelihood_ratio(epsilon: f64, tuple: &[PairedSample]) -> f64 {
    assert!((0.0..=1.0).contains(&epsilon), "epsilon out of range");
    let q = tuple.len();
    // Group by cube point via sorting.
    let mut sorted: Vec<PairedSample> = tuple.to_vec();
    sorted.sort_unstable();
    let mut total = 1.0f64;
    let mut i = 0;
    while i < q {
        let x = sorted[i].0;
        let mut plus = 1.0f64; // prod (1 + eps * s_j)
        let mut minus = 1.0f64; // prod (1 - eps * s_j)
        while i < q && sorted[i].0 == x {
            let s = f64::from(sorted[i].1);
            plus *= 1.0 + epsilon * s;
            minus *= 1.0 - epsilon * s;
            i += 1;
        }
        total *= (plus + minus) / 2.0;
    }
    total
}

/// Reference implementation of [`mixture_density`] by direct subset
/// enumeration (`O(2^q)`), kept as a test oracle.
///
/// # Panics
///
/// Panics if `q > 20` (subset enumeration guard) or `ε ∉ [0, 1]`.
#[must_use]
pub fn mixture_density_by_enumeration(
    dom: &PairedDomain,
    epsilon: f64,
    tuple: &[PairedSample],
) -> f64 {
    assert!(tuple.len() <= 20, "subset enumeration limited to q <= 20");
    assert!((0.0..=1.0).contains(&epsilon), "epsilon out of range");
    let q = tuple.len();
    let xs: Vec<u32> = tuple.iter().map(|&(x, _)| x).collect();
    let n = dom.universe_size() as f64;
    let mut total = 0.0f64;
    for subset in 0u64..(1 << q) {
        if !is_evenly_covered(&xs, subset) {
            continue;
        }
        // chi_S(s): product of the signs selected by the subset.
        let mut sign = 1.0f64;
        let mut bits = subset;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            sign *= f64::from(tuple[j].1);
        }
        total += epsilon.powi(subset.count_ones() as i32) * sign;
    }
    total / n.powi(dut_fourier::character::powi_exp(q as u64))
}

/// Exact total variation `TV(E_z[ν_z^q], uniform^q)` by full tuple
/// enumeration.
///
/// # Panics
///
/// Panics if `n^q` exceeds the enumeration guard of
/// [`crate::exact::for_each_tuple`].
#[must_use]
pub fn tv_mixture_uniform_exact(dom: &PairedDomain, q: usize, epsilon: f64) -> f64 {
    let uniform_mass =
        (dom.universe_size() as f64).powi(-dut_fourier::character::powi_exp(q as u64));
    let mut tv = 0.0f64;
    crate::exact::for_each_tuple(dom, q, |tuple| {
        let m = mixture_density(dom, epsilon, tuple);
        tv += (m - uniform_mass).abs();
    });
    tv / 2.0
}

/// Monte-Carlo estimate of the same total variation, using
/// `TV(P, U) = E_{w~U}[(1 − P(w)/U(w))⁺]`, from `trials` uniform
/// tuples.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn tv_mixture_uniform_monte_carlo<R: Rng + ?Sized>(
    dom: &PairedDomain,
    q: usize,
    epsilon: f64,
    trials: u32,
    rng: &mut R,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let mut acc = 0.0f64;
    let mut tuple = Vec::with_capacity(q);
    for _ in 0..trials {
        tuple.clear();
        for _ in 0..q {
            tuple.push(crate::montecarlo::sample_uniform(dom, rng));
        }
        let ratio = mixture_likelihood_ratio(epsilon, &tuple);
        acc += (1.0 - ratio).max(0.0);
    }
    acc / f64::from(trials)
}

/// The exact Ingster χ² divergence `χ²(E_z[ν_z^q], uniform^q)`.
///
/// Pairing two independent draws of `z` gives
/// `χ² + 1 = E_{z,z'}[(1 + 2ε²·⟨z,z'⟩/n)^q]` with
/// `⟨z,z'⟩ = Σ_{x∈cube} z(x)z'(x)` a sum of `n/2` Rademacher
/// variables; the expectation is a finite binomial sum, computed in
/// log-space for stability.
///
/// # Panics
///
/// Panics if the cube has more than `2^22` vertices or `ε ∉ [0, 1]`.
#[must_use]
pub fn chi2_mixture_exact(dom: &PairedDomain, q: usize, epsilon: f64) -> f64 {
    assert!((0.0..=1.0).contains(&epsilon), "epsilon out of range");
    let half = dom.cube_size();
    assert!(half <= 1 << 22, "cube too large for exact binomial sum");
    let n = dom.universe_size() as f64;
    // W = half - 2*B with B ~ Bin(half, 1/2); weight of each B value
    // is C(half, B)/2^half, accumulated in log space.
    let ln2 = std::f64::consts::LN_2;
    let mut total = 0.0f64;
    let mut ln_binom = 0.0f64; // ln C(half, 0)
    for b in 0..=half {
        if b > 0 {
            ln_binom += ((half - b + 1) as f64).ln() - (b as f64).ln();
        }
        let ln_weight = ln_binom - half as f64 * ln2;
        let w = half as f64 - 2.0 * b as f64;
        let base = 1.0 + 2.0 * epsilon * epsilon * w / n;
        if base <= 0.0 {
            // Possible only for eps^2 > 1/2 at the extreme W = -n/2;
            // the contribution is (negative)^q, handled via sign.
            let magnitude = (q as f64) * base.abs().ln() + ln_weight;
            let signed = if q.is_multiple_of(2) { 1.0 } else { -1.0 };
            total += signed * magnitude.exp();
        } else {
            total += ((q as f64) * base.ln() + ln_weight).exp();
        }
    }
    (total - 1.0).max(0.0)
}

/// The classic sufficient condition threshold: the minimal `q ≤ max_q`
/// at which the exact χ² exceeds `bound` (testing is impossible while
/// `TV ≤ √χ²/2` stays small). Uses geometric bracketing plus binary
/// search — χ² is non-decreasing in `q` for `ε² ≤ 1/2` (and in
/// practice throughout; callers in the extreme-ε regime should treat
/// the result as a bracketing heuristic).
///
/// # Panics
///
/// Panics if `max_q == 0`.
#[must_use]
pub fn q_where_chi2_exceeds(
    dom: &PairedDomain,
    epsilon: f64,
    bound: f64,
    max_q: usize,
) -> Option<usize> {
    assert!(max_q >= 1, "need a positive search range");
    let exceeds = |q: usize| chi2_mixture_exact(dom, q, epsilon) > bound;
    // Geometric bracket.
    let mut hi = 1usize;
    let mut lo = 0usize;
    loop {
        if exceeds(hi.min(max_q)) {
            break;
        }
        if hi >= max_q {
            return None;
        }
        lo = hi;
        hi = (hi * 2).min(max_q);
    }
    let mut hi = hi.min(max_q);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if exceeds(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_probability::PerturbationVector;
    use rand::SeedableRng;

    #[test]
    fn mixture_matches_brute_force_average() {
        // Compare against direct averaging over all z (ell = 2).
        let dom = PairedDomain::new(2);
        let eps = 0.6;
        let q = 3;
        let count = 1u64 << dom.cube_size();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let tuple: Vec<PairedSample> = (0..q)
                .map(|_| crate::montecarlo::sample_uniform(&dom, &mut rng))
                .collect();
            let mut brute = 0.0f64;
            for code in 0..count {
                let z = PerturbationVector::from_code(dom.cube_size(), code);
                let mut w = 1.0;
                for &(x, s) in &tuple {
                    w *= (1.0 + f64::from(s) * f64::from(z.sign(x)) * eps)
                        / dom.universe_size() as f64;
                }
                brute += w;
            }
            brute /= count as f64;
            let fast = mixture_density(&dom, eps, &tuple);
            let oracle = mixture_density_by_enumeration(&dom, eps, &tuple);
            assert!((fast - brute).abs() < 1e-15, "{fast} vs {brute}");
            assert!((fast - oracle).abs() < 1e-15, "{fast} vs oracle {oracle}");
        }
    }

    #[test]
    fn single_sample_mixture_is_uniform() {
        // q = 1: the mixture is exactly uniform, TV = 0.
        let dom = PairedDomain::new(3);
        assert!(tv_mixture_uniform_exact(&dom, 1, 0.9) < 1e-15);
    }

    #[test]
    fn tv_zero_at_epsilon_zero() {
        let dom = PairedDomain::new(2);
        assert!(tv_mixture_uniform_exact(&dom, 3, 0.0) < 1e-15);
    }

    #[test]
    fn tv_grows_with_q() {
        let dom = PairedDomain::new(2);
        let eps = 0.8;
        let tv2 = tv_mixture_uniform_exact(&dom, 2, eps);
        let tv3 = tv_mixture_uniform_exact(&dom, 3, eps);
        let tv5 = tv_mixture_uniform_exact(&dom, 5, eps);
        assert!(tv2 < tv3);
        assert!(tv3 < tv5);
        assert!(tv5 <= 1.0);
    }

    #[test]
    fn monte_carlo_tracks_exact_tv() {
        let dom = PairedDomain::new(2);
        let eps = 0.8;
        let q = 4;
        let exact = tv_mixture_uniform_exact(&dom, q, eps);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mc = tv_mixture_uniform_monte_carlo(&dom, q, eps, 60_000, &mut rng);
        assert!((mc - exact).abs() < 0.02, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn chi2_matches_brute_force_pairing() {
        // chi^2 + 1 = E_{z,z'}[(1 + 2 eps^2 <z,z'>/n)^q], brute over all pairs.
        let dom = PairedDomain::new(2);
        let eps = 0.5;
        let q = 3;
        let count = 1u64 << dom.cube_size();
        let mut brute = 0.0f64;
        for a in 0..count {
            for b in 0..count {
                let za = PerturbationVector::from_code(dom.cube_size(), a);
                let zb = PerturbationVector::from_code(dom.cube_size(), b);
                let inner: f64 = (0..dom.cube_size() as u32)
                    .map(|x| f64::from(za.sign(x)) * f64::from(zb.sign(x)))
                    .sum();
                brute += (1.0 + 2.0 * eps * eps * inner / dom.universe_size() as f64).powi(q);
            }
        }
        brute = brute / (count * count) as f64 - 1.0;
        let exact = chi2_mixture_exact(&dom, q as usize, eps);
        assert!((exact - brute).abs() < 1e-12, "{exact} vs {brute}");
    }

    #[test]
    fn chi2_grows_with_q_and_epsilon() {
        let dom = PairedDomain::new(4);
        assert!(chi2_mixture_exact(&dom, 4, 0.5) > chi2_mixture_exact(&dom, 2, 0.5));
        assert!(chi2_mixture_exact(&dom, 4, 0.8) > chi2_mixture_exact(&dom, 4, 0.3));
        assert!(chi2_mixture_exact(&dom, 2, 0.0) < 1e-15);
    }

    #[test]
    fn tv_bounded_by_half_sqrt_chi2() {
        // The standard chain TV <= sqrt(chi^2)/2 must hold exactly.
        let dom = PairedDomain::new(2);
        for q in 1..=5usize {
            for &eps in &[0.3, 0.6, 0.9] {
                let tv = tv_mixture_uniform_exact(&dom, q, eps);
                let chi2 = chi2_mixture_exact(&dom, q, eps);
                assert!(
                    tv <= chi2.sqrt() / 2.0 + 1e-12,
                    "q={q} eps={eps}: tv={tv} chi2={chi2}"
                );
            }
        }
    }

    #[test]
    fn chi2_stays_small_until_sqrt_n() {
        // The sqrt(n) barrier: at q far below sqrt(n)/eps^2 the chi^2
        // is tiny; it crosses 1/10 only at q = Omega(sqrt(n)).
        let dom = PairedDomain::new(10); // n = 2048
        let eps = 0.5;
        let crossing = q_where_chi2_exceeds(&dom, eps, 0.1, 4096).expect("chi2 eventually grows");
        let sqrt_n = (dom.universe_size() as f64).sqrt();
        assert!(
            crossing as f64 > 0.5 * sqrt_n,
            "crossing {crossing} vs sqrt(n) {sqrt_n}"
        );
        assert!(
            (crossing as f64) < 20.0 * sqrt_n / (eps * eps),
            "crossing {crossing} too large"
        );
    }

    #[test]
    fn likelihood_ratio_well_defined_for_long_tuples() {
        // n^{-q} underflows far before q = 600; the ratio must not.
        let dom = PairedDomain::new(9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let tuple: Vec<PairedSample> = (0..600)
            .map(|_| crate::montecarlo::sample_uniform(&dom, &mut rng))
            .collect();
        let ratio = mixture_likelihood_ratio(0.5, &tuple);
        assert!(ratio.is_finite() && ratio > 0.0, "ratio = {ratio}");
        let mc = tv_mixture_uniform_monte_carlo(&dom, 600, 0.5, 500, &mut rng);
        assert!(mc > 0.0 && mc <= 1.0, "tv = {mc}");
    }

    #[test]
    fn mixture_densities_sum_to_one() {
        let dom = PairedDomain::new(2);
        let q = 3;
        let mut total = 0.0f64;
        crate::exact::for_each_tuple(&dom, q, |tuple| {
            total += mixture_density(&dom, 0.7, tuple);
        });
        assert!((total - 1.0).abs() < 1e-10);
    }
}
