//! Numeric verification of the spectral structure of the hard family
//! (Section 3 of the paper).
//!
//! * **Claim 3.1**: the product density factorizes over characters,
//!   `ν_z^q(x, s) = n^{-q} · Σ_{S⊆[q]} ε^{|S|} χ_S(s) Π_{j∈S} z(x_j)`.
//! * **Spectrum support**: averaging over random `z`, the coefficient
//!   `b_x(T) = E_z[Π_{j∈T} z(x_j)]` is `1` when the multiset
//!   `{x_j}_{j∈T}` is evenly covered and `0` otherwise — the "odd
//!   cancelation" driving the whole lower bound.

use dut_fourier::evencover::is_evenly_covered;
use dut_probability::{PairedDomain, PerturbationVector};

/// Evaluates the density `ν_z^q` on a tuple directly from the product
/// definition.
#[must_use]
pub fn density_product(
    dom: &PairedDomain,
    z: &PerturbationVector,
    epsilon: f64,
    xs: &[u32],
    ss: &[i8],
) -> f64 {
    assert_eq!(xs.len(), ss.len(), "tuple parts must have equal length");
    let n = dom.universe_size() as f64;
    xs.iter()
        .zip(ss)
        .map(|(&x, &s)| (1.0 + f64::from(s) * f64::from(z.sign(x)) * epsilon) / n)
        .product()
}

/// Evaluates the density via the character expansion of Claim 3.1.
///
/// # Panics
///
/// Panics if `q > 20` (subset enumeration guard).
#[must_use]
pub fn density_expansion(
    dom: &PairedDomain,
    z: &PerturbationVector,
    epsilon: f64,
    xs: &[u32],
    ss: &[i8],
) -> f64 {
    assert_eq!(xs.len(), ss.len(), "tuple parts must have equal length");
    let q = xs.len();
    assert!(q <= 20, "subset enumeration limited to q <= 20");
    let n = dom.universe_size() as f64;
    let mut total = 0.0f64;
    for subset in 0u64..(1 << q) {
        let size = subset.count_ones();
        // chi_S(s) = prod_{j in S} s_j  and the z product.
        let mut sign = 1.0f64;
        let mut bits = subset;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            sign *= f64::from(ss[j]) * f64::from(z.sign(xs[j]));
        }
        total += epsilon.powi(size as i32) * sign;
    }
    total / n.powi(dut_fourier::character::powi_exp(q as u64))
}

/// The averaged coefficient `b_x(T) = E_z[Π_{j∈T} z(x_j)]`, computed
/// exactly over all perturbation vectors.
///
/// # Panics
///
/// Panics if the cube has more than 20 vertices.
#[must_use]
pub fn b_x_exact(dom: &PairedDomain, xs: &[u32], subset: u64) -> f64 {
    let cube = dom.cube_size();
    assert!(cube <= 20, "z enumeration limited to 2^20 vectors");
    let count = 1u64 << cube;
    let mut total = 0.0f64;
    for code in 0..count {
        let z = PerturbationVector::from_code(cube, code);
        let mut prod = 1.0f64;
        let mut bits = subset;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            prod *= f64::from(z.sign(xs[j]));
        }
        total += prod;
    }
    total / count as f64
}

/// The paper's prediction for `b_x(T)`: `1` iff `{x_j}_{j∈T}` is evenly
/// covered, else `0`.
#[must_use]
pub fn b_x_predicted(xs: &[u32], subset: u64) -> f64 {
    if is_evenly_covered(xs, subset) {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn claim_3_1_exhaustive_small() {
        // All tuples, a few z's, ell = 2, q = 2.
        let dom = PairedDomain::new(2);
        let q = 2;
        for code in [0u64, 0b0101, 0b1111, 0b0010] {
            let z = PerturbationVector::from_code(dom.cube_size(), code);
            for eps in [0.0, 0.3, 1.0] {
                for a in 0..dom.universe_size() {
                    for b in 0..dom.universe_size() {
                        let (xa, sa) = dom.decode(a);
                        let (xb, sb) = dom.decode(b);
                        let xs = [xa, xb];
                        let ss = [sa, sb];
                        let lhs = density_product(&dom, &z, eps, &xs, &ss);
                        let rhs = density_expansion(&dom, &z, eps, &xs, &ss);
                        assert!(
                            (lhs - rhs).abs() < 1e-12,
                            "z={code:b} eps={eps} tuple=({a},{b}): {lhs} vs {rhs}"
                        );
                    }
                }
            }
        }
        let _ = q;
    }

    #[test]
    fn claim_3_1_randomized_larger() {
        let dom = PairedDomain::new(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(47);
        for _ in 0..50 {
            let z = PerturbationVector::random(dom.cube_size(), &mut rng);
            let q = 1 + rng.random_range(0..5usize);
            let xs: Vec<u32> = (0..q)
                .map(|_| rng.random_range(0..dom.cube_size()) as u32)
                .collect();
            let ss: Vec<i8> = (0..q)
                .map(|_| if rng.random::<bool>() { 1 } else { -1 })
                .collect();
            let eps = rng.random::<f64>();
            let lhs = density_product(&dom, &z, eps, &xs, &ss);
            let rhs = density_expansion(&dom, &z, eps, &xs, &ss);
            assert!((lhs - rhs).abs() < 1e-12, "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn densities_sum_to_one() {
        let dom = PairedDomain::new(2);
        let z = PerturbationVector::from_code(4, 0b1001);
        let eps = 0.6;
        let mut total = 0.0;
        for a in 0..dom.universe_size() {
            for b in 0..dom.universe_size() {
                let (xa, sa) = dom.decode(a);
                let (xb, sb) = dom.decode(b);
                total += density_expansion(&dom, &z, eps, &[xa, xb], &[sa, sb]);
            }
        }
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn b_x_matches_even_cover_prediction_exhaustively() {
        // ell = 2 (4 cube vertices), q = 4: every tuple, every subset.
        let dom = PairedDomain::new(2);
        let q = 4usize;
        let cube = dom.cube_size() as u32;
        let mut tuples_checked = 0u64;
        for t0 in 0..cube {
            for t1 in 0..cube {
                for t2 in 0..cube {
                    for t3 in 0..cube {
                        let xs = [t0, t1, t2, t3];
                        for subset in 0u64..(1 << q) {
                            let exact = b_x_exact(&dom, &xs, subset);
                            let predicted = b_x_predicted(&xs, subset);
                            assert!(
                                (exact - predicted).abs() < 1e-12,
                                "xs={xs:?} subset={subset:b}: {exact} vs {predicted}"
                            );
                        }
                        tuples_checked += 1;
                    }
                }
            }
        }
        assert_eq!(tuples_checked, 256);
    }

    #[test]
    fn empty_subset_coefficient_is_one() {
        let dom = PairedDomain::new(2);
        assert_eq!(b_x_exact(&dom, &[0, 1, 2], 0), 1.0);
        assert_eq!(b_x_predicted(&[0, 1, 2], 0), 1.0);
    }

    #[test]
    fn odd_multiplicity_cancels() {
        let dom = PairedDomain::new(2);
        // Subset {0}: single occurrence -> 0.
        assert_eq!(b_x_exact(&dom, &[3, 3], 0b01), 0.0);
        // Subset {0,1} with equal values -> 1.
        assert_eq!(b_x_exact(&dom, &[3, 3], 0b11), 1.0);
        // Subset {0,1} with distinct values -> 0.
        assert_eq!(b_x_exact(&dom, &[3, 2], 0b11), 0.0);
    }
}
