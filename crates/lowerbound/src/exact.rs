//! Exact evaluation of player behaviour on the hard family, by full
//! enumeration.
//!
//! For parameters where `n^q` (sample tuples) and `2^{2^ℓ}`
//! (perturbation vectors) are enumerable, every quantity in the paper's
//! lemmas is computed *exactly*: these exact values validate the
//! Monte-Carlo estimators of [`crate::montecarlo`] and make the lemma
//! checks in [`crate::lemmas`] airtight on small instances.

use crate::player::{PairedSample, PlayerFunction};
use dut_probability::{PairedDomain, PerturbationVector};

/// Guard: maximum number of sample tuples we will enumerate.
pub const MAX_TUPLES: u128 = 1 << 24;

/// Guard: maximum number of perturbation vectors we will enumerate.
pub const MAX_VECTORS: u64 = 1 << 20;

/// Iterates over all `n^q` sample tuples, invoking `visit` with the
/// tuple and its index.
///
/// # Panics
///
/// Panics if `n^q` exceeds [`MAX_TUPLES`].
pub fn for_each_tuple<F: FnMut(&[PairedSample])>(dom: &PairedDomain, q: usize, mut visit: F) {
    let n = dom.universe_size();
    let total = (n as u128).pow(dut_fourier::character::mask(q));
    assert!(total <= MAX_TUPLES, "tuple enumeration too large: {total}");
    let mut tuple: Vec<PairedSample> = vec![dom.decode(0); q];
    let mut digits = vec![0usize; q];
    loop {
        visit(&tuple);
        // Increment the mixed-radix counter.
        let mut pos = 0;
        loop {
            if pos == q {
                return;
            }
            digits[pos] += 1;
            if digits[pos] < n {
                tuple[pos] = dom.decode(digits[pos]);
                break;
            }
            digits[pos] = 0;
            tuple[pos] = dom.decode(0);
            pos += 1;
        }
    }
}

/// Exact `μ(G) = Pr_{S ~ uniform^q}[G(S) = 1]`.
///
/// # Panics
///
/// Panics if the enumeration guard trips.
#[must_use]
pub fn mu_g<G: PlayerFunction + ?Sized>(dom: &PairedDomain, q: usize, g: &G) -> f64 {
    let mut count = 0u64;
    let mut total = 0u64;
    for_each_tuple(dom, q, |tuple| {
        total += 1;
        if g.output(tuple) {
            count += 1;
        }
    });
    count as f64 / total as f64
}

/// Exact `ν_z(G) = Pr_{S ~ ν_z^q}[G(S) = 1]` by weighted enumeration.
///
/// # Panics
///
/// Panics if the guard trips, `z` has the wrong length, or
/// `ε ∉ [0, 1]`.
#[must_use]
pub fn nu_g<G: PlayerFunction + ?Sized>(
    dom: &PairedDomain,
    q: usize,
    g: &G,
    z: &PerturbationVector,
    epsilon: f64,
) -> f64 {
    assert_eq!(
        z.len(),
        dom.cube_size(),
        "perturbation vector length mismatch"
    );
    assert!((0.0..=1.0).contains(&epsilon), "epsilon out of range");
    let n = dom.universe_size() as f64;
    let mut acc = 0.0f64;
    for_each_tuple(dom, q, |tuple| {
        if g.output(tuple) {
            let mut weight = 1.0;
            for &(x, s) in tuple {
                weight *= (1.0 + f64::from(s) * f64::from(z.sign(x)) * epsilon) / n;
            }
            acc += weight;
        }
    });
    acc
}

/// The exact first and second moments of `ν_z(G) − μ(G)` over the
/// **full** ensemble of perturbation vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZMoments {
    /// `μ(G)` (uniform acceptance probability).
    pub mu: f64,
    /// `E_z[ν_z(G)]`.
    pub mean_nu: f64,
    /// `E_z[(ν_z(G) − μ(G))²]`.
    pub second_moment: f64,
    /// `max_z |ν_z(G) − μ(G)|`.
    pub max_abs_deviation: f64,
}

impl ZMoments {
    /// `|E_z[ν_z(G)] − μ(G)|` — the left-hand side of Lemma 5.1 / 4.3.
    #[must_use]
    pub fn first_moment_abs(&self) -> f64 {
        (self.mean_nu - self.mu).abs()
    }
}

/// Computes [`ZMoments`] exactly by enumerating **all** `2^{2^ℓ}`
/// perturbation vectors.
///
/// # Panics
///
/// Panics if `2^{2^ℓ}` exceeds [`MAX_VECTORS`] (i.e. `ℓ > 4`), or the
/// tuple guard trips.
#[must_use]
pub fn z_moments_exact<G: PlayerFunction + ?Sized>(
    dom: &PairedDomain,
    q: usize,
    g: &G,
    epsilon: f64,
) -> ZMoments {
    let cube = dom.cube_size();
    assert!(cube <= 20, "z enumeration needs 2^(2^ell) <= MAX_VECTORS");
    let count = 1u64 << cube;
    assert!(count <= MAX_VECTORS, "z enumeration too large");
    let mu = mu_g(dom, q, g);
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut max_abs: f64 = 0.0;
    for code in 0..count {
        let z = PerturbationVector::from_code(cube, code);
        let nu = nu_g(dom, q, g, &z, epsilon);
        let dev = nu - mu;
        sum += nu;
        sum_sq += dev * dev;
        max_abs = max_abs.max(dev.abs());
    }
    ZMoments {
        mu,
        mean_nu: sum / count as f64,
        second_moment: sum_sq / count as f64,
        max_abs_deviation: max_abs,
    }
}

/// The variance of a `{0,1}`-valued `G` under the uniform distribution:
/// `var(G) = μ(G)·(1 − μ(G))`.
#[must_use]
pub fn var_g_from_mu(mu: f64) -> f64 {
    mu * (1.0 - mu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::player::{CollisionIndicator, SignDictator, SignParity};
    use rand::SeedableRng;

    #[test]
    fn tuple_enumeration_counts() {
        let dom = PairedDomain::new(2);
        let mut count = 0u64;
        for_each_tuple(&dom, 2, |_| count += 1);
        assert_eq!(count, 64); // 8^2
    }

    #[test]
    fn mu_of_constant_functions() {
        let dom = PairedDomain::new(2);
        let always = |_: &[PairedSample]| true;
        assert_eq!(mu_g(&dom, 2, &always), 1.0);
        let never = |_: &[PairedSample]| false;
        assert_eq!(mu_g(&dom, 2, &never), 0.0);
    }

    #[test]
    fn mu_of_sign_dictator_is_half() {
        let dom = PairedDomain::new(3);
        assert!((mu_g(&dom, 2, &SignDictator::new(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nu_sums_to_probability() {
        // nu_g of the constant-1 function must be exactly 1 (the weights
        // form a distribution).
        let dom = PairedDomain::new(2);
        let z = PerturbationVector::from_code(4, 0b0110);
        let always = |_: &[PairedSample]| true;
        assert!((nu_g(&dom, 3, &always, &z, 0.7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nu_equals_mu_at_epsilon_zero() {
        let dom = PairedDomain::new(2);
        let z = PerturbationVector::from_code(4, 0b1010);
        let g = CollisionIndicator::new(1);
        let nu = nu_g(&dom, 2, &g, &z, 0.0);
        let mu = mu_g(&dom, 2, &g);
        assert!((nu - mu).abs() < 1e-12);
    }

    #[test]
    fn sign_dictator_sees_nothing_on_average_but_each_z_biases_it() {
        // For a single sample, nu_z(SignDictator) = 1/2 - eps*avg(z)/2;
        // with the all-plus z the dictator IS biased, but averaging over
        // z it is not.
        let dom = PairedDomain::new(2);
        let eps = 0.5;
        let all_plus = PerturbationVector::from_code(4, 0);
        let g = SignDictator::new(0);
        let nu = nu_g(&dom, 1, &g, &all_plus, eps);
        // G = 1 iff s = -1; under nu_z with all z = +1: Pr[s=-1] = (1-eps)/2.
        assert!((nu - (1.0 - eps) / 2.0).abs() < 1e-12);
        let m = z_moments_exact(&dom, 1, &g, eps);
        assert!(m.first_moment_abs() < 1e-12, "averaged over z: no signal");
        assert!(m.second_moment > 0.0, "but individual z's bias the bit");
    }

    #[test]
    fn sign_parity_has_no_signal_for_q1() {
        // With q = 1, parity = dictator.
        let dom = PairedDomain::new(2);
        let m = z_moments_exact(&dom, 1, &SignParity, 0.9);
        assert!(m.first_moment_abs() < 1e-12);
    }

    #[test]
    fn mixture_property_constant_zero_deviation() {
        // Constant functions cannot distinguish anything.
        let dom = PairedDomain::new(2);
        let always = |_: &[PairedSample]| true;
        let m = z_moments_exact(&dom, 2, &always, 0.8);
        assert!(m.second_moment < 1e-20, "{}", m.second_moment);
        assert!(m.max_abs_deviation < 1e-10, "{}", m.max_abs_deviation);
    }

    #[test]
    fn collision_indicator_gains_signal_with_epsilon() {
        // The mean shift of a collision tester grows with eps.
        let dom = PairedDomain::new(2);
        let g = CollisionIndicator::new(1);
        let weak = z_moments_exact(&dom, 3, &g, 0.2);
        let strong = z_moments_exact(&dom, 3, &g, 0.9);
        assert!(strong.first_moment_abs() > weak.first_moment_abs());
        assert!(strong.second_moment > weak.second_moment);
    }

    #[test]
    fn z_moments_match_monte_carlo_spot_check() {
        let dom = PairedDomain::new(2);
        let q = 2;
        let eps = 0.6;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let g = crate::player::TableFunction::random(dom, q, 0.4, &mut rng);
        let exact = z_moments_exact(&dom, q, &g, eps);
        // Estimate E_z[nu_z(G)] by direct averaging over random z with
        // exact nu (no sampling noise from tuples).
        let mut sum = 0.0;
        let draws = 400;
        for _ in 0..draws {
            let z = PerturbationVector::random(dom.cube_size(), &mut rng);
            sum += nu_g(&dom, q, &g, &z, eps);
        }
        let mc = sum / f64::from(draws);
        assert!(
            (mc - exact.mean_nu).abs() < 0.02,
            "mc = {mc}, exact = {}",
            exact.mean_nu
        );
    }

    #[test]
    fn var_from_mu() {
        assert_eq!(var_g_from_mu(0.0), 0.0);
        assert_eq!(var_g_from_mu(1.0), 0.0);
        assert!((var_g_from_mu(0.5) - 0.25).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn tuple_guard_trips() {
        let dom = PairedDomain::new(10);
        for_each_tuple(&dom, 4, |_| {});
    }
}
