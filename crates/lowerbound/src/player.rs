//! Concrete player functions `G` — the objects the paper's lemmas
//! quantify over.
//!
//! A player sees `q` samples from the paired domain, each a pair
//! `(x, s)` with `x ∈ {-1,1}^ℓ` (encoded as a bitmask) and `s ∈ {±1}`,
//! and outputs one bit. The [`PlayerFunction`] trait evaluates that bit
//! on a sample tuple; the library below covers the qualitatively
//! different behaviours the lemmas distinguish:
//!
//! * [`CollisionIndicator`] — what real testers do: reject on repeated
//!   samples (information-carrying, collision-based);
//! * [`SignDictator`] / [`SignParity`] / [`SignMajority`] — functions of
//!   the matching bits `s` only (these cannot detect anything: the
//!   `s` marginal of every `ν_z` is uniform);
//! * [`CubeDictator`] — a function of the cube part only;
//! * [`TableFunction`] — an arbitrary (e.g. random) function given by a
//!   truth table over the `(ℓ+1)·q` sample bits, bridging to
//!   `dut_fourier::BooleanFunction`.

use dut_fourier::BooleanFunction;
use dut_probability::PairedDomain;
use rand::Rng;

/// A sample from the paired domain: the cube point and the sign.
pub type PairedSample = (u32, i8);

/// A player's decision function `G`: one bit from `q` paired samples.
///
/// The paper's convention: the output is the bit sent to the referee
/// (`true` ↦ 1). For uniformity testers, `1` conventionally means
/// "accept", but nothing in the lower-bound machinery depends on the
/// interpretation.
pub trait PlayerFunction {
    /// Evaluates the bit on a tuple of `q` samples.
    fn output(&self, samples: &[PairedSample]) -> bool;
}

impl<F: Fn(&[PairedSample]) -> bool> PlayerFunction for F {
    fn output(&self, samples: &[PairedSample]) -> bool {
        self(samples)
    }
}

/// Outputs 1 iff the number of colliding pairs among the full samples
/// `(x, s)` is **below** `threshold` — the "accept bit" of a local
/// collision tester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollisionIndicator {
    threshold: u64,
}

impl CollisionIndicator {
    /// Accept iff fewer than `threshold` colliding pairs.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` (the function would be constant 0).
    #[must_use]
    pub fn new(threshold: u64) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        Self { threshold }
    }
}

impl PlayerFunction for CollisionIndicator {
    fn output(&self, samples: &[PairedSample]) -> bool {
        let mut sorted: Vec<PairedSample> = samples.to_vec();
        sorted.sort_unstable();
        let mut collisions = 0u64;
        let mut run = 1u64;
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                run += 1;
            } else {
                collisions += run * (run - 1) / 2;
                run = 1;
            }
        }
        collisions += run * (run - 1) / 2;
        collisions < self.threshold
    }
}

/// Outputs the sign bit of sample `index`: 1 iff `s_index = -1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignDictator {
    index: usize,
}

impl SignDictator {
    /// Dictator on the sign of sample `index`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self { index }
    }
}

impl PlayerFunction for SignDictator {
    fn output(&self, samples: &[PairedSample]) -> bool {
        samples[self.index].1 == -1
    }
}

/// Outputs the parity of all sign bits: 1 iff an odd number of samples
/// have `s = -1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SignParity;

impl PlayerFunction for SignParity {
    fn output(&self, samples: &[PairedSample]) -> bool {
        samples.iter().filter(|&&(_, s)| s == -1).count() % 2 == 1
    }
}

/// Outputs 1 iff a strict majority of samples have `s = -1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SignMajority;

impl PlayerFunction for SignMajority {
    fn output(&self, samples: &[PairedSample]) -> bool {
        2 * samples.iter().filter(|&&(_, s)| s == -1).count() > samples.len()
    }
}

/// Outputs bit `bit` of the cube point of sample `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CubeDictator {
    index: usize,
    bit: u32,
}

impl CubeDictator {
    /// Dictator on cube bit `bit` of sample `index`.
    #[must_use]
    pub fn new(index: usize, bit: u32) -> Self {
        Self { index, bit }
    }
}

impl PlayerFunction for CubeDictator {
    fn output(&self, samples: &[PairedSample]) -> bool {
        (samples[self.index].0 >> self.bit) & 1 == 1
    }
}

/// An arbitrary player function given by a truth table over the
/// `(ℓ+1)·q` sample bits, in the bit layout of [`encode_tuple`].
#[derive(Debug, Clone, PartialEq)]
pub struct TableFunction {
    dom: PairedDomain,
    q: usize,
    table: BooleanFunction,
}

impl TableFunction {
    /// Wraps a truth table; its variable count must be `(ℓ+1)·q`.
    ///
    /// # Panics
    ///
    /// Panics on a size mismatch or non-Boolean table.
    #[must_use]
    pub fn new(dom: PairedDomain, q: usize, table: BooleanFunction) -> Self {
        assert_eq!(
            table.num_vars(),
            (dom.ell() + 1) * dut_fourier::character::mask(q),
            "table must have (ell+1)*q variables"
        );
        assert!(table.is_boolean(), "player functions are 0/1-valued");
        Self { dom, q, table }
    }

    /// A uniformly random player function (each tuple's bit independent
    /// with density `p`).
    ///
    /// # Panics
    ///
    /// Panics if the bit count `(ℓ+1)·q` exceeds
    /// [`BooleanFunction::MAX_VARS`] or `p ∉ [0,1]`.
    pub fn random<R: Rng + ?Sized>(dom: PairedDomain, q: usize, p: f64, rng: &mut R) -> Self {
        let bits = (dom.ell() + 1) * dut_fourier::character::mask(q);
        Self::new(dom, q, BooleanFunction::random(bits, p, rng))
    }

    /// The underlying truth table.
    #[must_use]
    pub fn table(&self) -> &BooleanFunction {
        &self.table
    }

    /// The paired domain.
    #[must_use]
    pub fn domain(&self) -> PairedDomain {
        self.dom
    }

    /// Samples per player.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.q
    }
}

impl PlayerFunction for TableFunction {
    fn output(&self, samples: &[PairedSample]) -> bool {
        // Truth tables store exact 0.0/1.0; a midpoint threshold is
        // equivalent and robust, with no float equality involved.
        self.table.eval(encode_tuple(&self.dom, samples)) > 0.5
    }
}

/// Encodes a sample tuple as a bitmask over `(ℓ+1)·q` variables: sample
/// `i` occupies bits `[i·(ℓ+1), (i+1)·(ℓ+1))`, low `ℓ` bits the cube
/// point, the top bit the sign (`1` ⇔ `s = -1`).
///
/// # Panics
///
/// Panics if the total bit count exceeds 32.
#[must_use]
pub fn encode_tuple(dom: &PairedDomain, samples: &[PairedSample]) -> u32 {
    let width = dom.ell() + 1;
    assert!(
        width as usize * samples.len() <= 32,
        "tuple encoding exceeds 32 bits"
    );
    let mut mask = 0u32;
    for (i, &(x, s)) in samples.iter().enumerate() {
        debug_assert!((x as usize) < dom.cube_size());
        let mut part = x;
        if s == -1 {
            part |= 1 << dom.ell();
        }
        mask |= part << (dut_fourier::character::mask(i) * width);
    }
    mask
}

/// Decodes a bitmask back into a sample tuple (inverse of
/// [`encode_tuple`]).
#[must_use]
pub fn decode_tuple(dom: &PairedDomain, mask: u32, q: usize) -> Vec<PairedSample> {
    let width = dom.ell() + 1;
    let cube_mask = (1u32 << dom.ell()) - 1;
    (0..q)
        .map(|i| {
            let part = (mask >> (dut_fourier::character::mask(i) * width)) & ((1u32 << width) - 1);
            let x = part & cube_mask;
            let s = if part >> dom.ell() == 1 { -1 } else { 1 };
            (x, s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn collision_indicator_counts_pairs() {
        let g = CollisionIndicator::new(1);
        assert!(g.output(&[(0, 1), (1, 1), (0, -1)])); // all distinct pairs
        assert!(!g.output(&[(0, 1), (0, 1)])); // one collision
        let g2 = CollisionIndicator::new(2);
        assert!(g2.output(&[(0, 1), (0, 1)])); // below threshold 2
        assert!(!g2.output(&[(0, 1), (0, 1), (0, 1)])); // 3 collisions
    }

    #[test]
    fn sign_dictator_reads_sign() {
        let g = SignDictator::new(1);
        assert!(g.output(&[(0, 1), (3, -1)]));
        assert!(!g.output(&[(0, -1), (3, 1)]));
    }

    #[test]
    fn sign_parity_and_majority() {
        let samples = [(0, -1), (1, -1), (2, 1)];
        assert!(!SignParity.output(&samples)); // two minus signs: even
        assert!(SignMajority.output(&samples)); // 2 of 3
        let one = [(0, -1), (1, 1), (2, 1)];
        assert!(SignParity.output(&one));
        assert!(!SignMajority.output(&one));
    }

    #[test]
    fn cube_dictator_reads_bit() {
        let g = CubeDictator::new(0, 2);
        assert!(g.output(&[(0b100, 1)]));
        assert!(!g.output(&[(0b011, 1)]));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let dom = PairedDomain::new(3);
        let samples = vec![(0b101u32, -1i8), (0b010, 1), (0b111, -1)];
        let mask = encode_tuple(&dom, &samples);
        assert_eq!(decode_tuple(&dom, mask, 3), samples);
    }

    #[test]
    fn encode_all_tuples_distinct() {
        let dom = PairedDomain::new(2);
        let q = 2;
        let mut seen = std::collections::HashSet::new();
        for a in 0..dom.universe_size() {
            for b in 0..dom.universe_size() {
                let (xa, sa) = dom.decode(a);
                let (xb, sb) = dom.decode(b);
                assert!(seen.insert(encode_tuple(&dom, &[(xa, sa), (xb, sb)])));
            }
        }
        assert_eq!(seen.len(), dom.universe_size().pow(q));
    }

    #[test]
    fn table_function_matches_direct_eval() {
        let dom = PairedDomain::new(2);
        let q = 2;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let tf = TableFunction::random(dom, q, 0.5, &mut rng);
        // Consistency: output must equal table lookup for every tuple.
        for mask in 0..(1u32 << ((dom.ell() + 1) * q as u32)) {
            let samples = decode_tuple(&dom, mask, q);
            assert_eq!(
                tf.output(&samples),
                tf.table().eval(mask) == 1.0,
                "mask {mask:#b}"
            );
        }
        assert_eq!(tf.sample_count(), q);
        assert_eq!(tf.domain(), dom);
    }

    #[test]
    fn closure_is_a_player_function() {
        let g = |samples: &[PairedSample]| samples.len() > 2;
        assert!(g.output(&[(0, 1), (0, 1), (0, 1)]));
        assert!(!g.output(&[(0, 1)]));
    }

    #[test]
    #[should_panic(expected = "exceeds 32 bits")]
    fn oversized_tuple_panics() {
        let dom = PairedDomain::new(7);
        let samples = vec![(0u32, 1i8); 5]; // 8 * 5 = 40 bits
        let _ = encode_tuple(&dom, &samples);
    }
}
