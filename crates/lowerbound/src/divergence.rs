//! The KL-budget argument of Section 6.1 (Theorem 6.1), executable.
//!
//! For the referee to distinguish uniform from a random `ν_z` with
//! success probability `1 − δ`, the players' bit distributions must
//! accumulate total divergence
//! `Σ_j E_z[D(ν_{G_j} ‖ μ_{G_j})] > (1/10)·log(1/δ)` — while Fact 6.3
//! plus Lemma 4.2 cap every player's contribution at
//! `(1/ln 2)·(20q²ε⁴/n + qε²/n)`. Rearranging yields the sample-
//! complexity lower bound, equation (13).

use crate::exact;
use crate::player::PlayerFunction;
use dut_probability::distance::bernoulli_kl;
use dut_probability::{PairedDomain, PerturbationVector};

/// Required total divergence (bits) for two-sided error `δ`:
/// `(1/10)·log₂(1/δ)` — the left-hand side of equation (10).
///
/// # Panics
///
/// Panics if `delta ∉ (0, 1)`.
#[must_use]
pub fn required_budget(delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    0.1 * (1.0 / delta).log2()
}

/// The per-player divergence cap from Fact 6.3 + Lemma 4.2 (equation
/// (12)): `(1/ln 2)·(20q²ε⁴/n + 2qε²/n)` — with the corrected
/// linear-term constant, see [`crate::lemmas::lemma_4_2_rhs`].
#[must_use]
pub fn per_player_cap(n: usize, q: usize, epsilon: f64) -> f64 {
    let n_f = n as f64;
    let q_f = q as f64;
    let e2 = epsilon * epsilon;
    (20.0 * q_f * q_f * e2 * e2 / n_f + 2.0 * q_f * e2 / n_f) / std::f64::consts::LN_2
}

/// The minimal number of players implied by equation (13) for two-sided
/// error `δ = 1/3`: `k ≥ Ω(log(1/δ)) / per_player_cap`.
#[must_use]
pub fn min_players(n: usize, q: usize, epsilon: f64) -> f64 {
    required_budget(1.0 / 3.0) / per_player_cap(n, q, epsilon)
}

/// The divergence a single player function `G` actually achieves,
/// averaged exactly over the full perturbation ensemble:
/// `E_z[D(B(ν_z(G)) ‖ B(μ(G)))]` in bits.
///
/// Degenerate cases (`ν_z(G) ∈ {0,1}` against interior `μ(G)`) use the
/// exact (possibly infinite) Bernoulli KL.
///
/// # Panics
///
/// Panics if the exact-enumeration guards of [`crate::exact`] trip.
#[must_use]
pub fn average_divergence_exact<G: PlayerFunction + ?Sized>(
    dom: &PairedDomain,
    q: usize,
    epsilon: f64,
    g: &G,
) -> f64 {
    let cube = dom.cube_size();
    assert!(cube <= 20, "z enumeration limited");
    let count = 1u64 << cube;
    let mu = exact::mu_g(dom, q, g);
    let mut total = 0.0f64;
    for code in 0..count {
        let z = PerturbationVector::from_code(cube, code);
        let nu = exact::nu_g(dom, q, g, &z, epsilon).clamp(0.0, 1.0);
        // Guard against enumeration round-off producing nu = mu ± 1e-16
        // at the boundary, where the exact KL is 0 but the formula sees
        // a support violation.
        if (nu - mu).abs() > 1e-12 {
            total += bernoulli_kl(nu, mu);
        }
    }
    total / count as f64
}

/// The Fact 6.3 upper bound on the same average divergence, computed
/// from the exact second moment:
/// `E_z[(ν_z(G) − μ(G))²] / (var(G)·ln 2)`.
///
/// # Panics
///
/// Panics if the exact-enumeration guards trip.
#[must_use]
pub fn average_divergence_fact_6_3_bound<G: PlayerFunction + ?Sized>(
    dom: &PairedDomain,
    q: usize,
    epsilon: f64,
    g: &G,
) -> f64 {
    let m = exact::z_moments_exact(dom, q, g, epsilon);
    let var = exact::var_g_from_mu(m.mu);
    if var <= 0.0 {
        return if m.second_moment <= 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
    }
    m.second_moment / (var * std::f64::consts::LN_2)
}

/// Sample-complexity lower bound from equation (13), solved for `q`:
/// the largest `q` for which `k` players at `(n, ε)` cannot accumulate
/// the required budget, i.e.
/// `k·(20q²ε⁴/n + qε²/n)/ln2 ≤ (1/10)·log₂(3)`.
///
/// Matches Theorem 6.1's `Ω(min(√(n/k), n/k)/ε²)` shape.
#[must_use]
pub fn q_lower_bound(n: usize, k: usize, epsilon: f64) -> f64 {
    // Solve 20 q^2 e4/n + 2 q e2/n = B/k (with B in nats) for q > 0.
    let budget_nats = required_budget(1.0 / 3.0) * std::f64::consts::LN_2;
    let n_f = n as f64;
    let e2 = epsilon * epsilon;
    let a = 20.0 * e2 * e2 / n_f;
    let b = 2.0 * e2 / n_f;
    let c = -budget_nats / k as f64;
    // Positive root of a q^2 + b q + c = 0.
    (-b + (b * b - 4.0 * a * c).sqrt()) / (2.0 * a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::player::{CollisionIndicator, SignParity};

    #[test]
    fn budget_grows_with_confidence() {
        assert!(required_budget(0.01) > required_budget(1.0 / 3.0));
        assert!((required_budget(0.5) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fact_6_3_dominates_actual_divergence() {
        // The chain KL <= chi^2-style bound must hold player-by-player.
        let dom = PairedDomain::new(2);
        for q in 1..=3usize {
            for &eps in &[0.2, 0.5, 0.9] {
                let g = CollisionIndicator::new(1);
                let actual = average_divergence_exact(&dom, q, eps, &g);
                let bound = average_divergence_fact_6_3_bound(&dom, q, eps, &g);
                assert!(
                    actual <= bound * (1.0 + 1e-9) + 1e-12,
                    "q={q} eps={eps}: {actual} > {bound}"
                );
            }
        }
    }

    #[test]
    fn lemma_4_2_cap_dominates_fact_6_3_bound_within_precondition() {
        let dom = PairedDomain::new(2);
        let n = dom.universe_size();
        let q = 1;
        let eps = 0.3;
        assert!(crate::lemmas::lemma_4_2_precondition(n, q, eps));
        let g = CollisionIndicator::new(1);
        let observed = average_divergence_fact_6_3_bound(&dom, q, eps, &g);
        let cap = per_player_cap(n, q, eps);
        assert!(
            observed <= cap * (1.0 + 1e-9),
            "observed {observed} > cap {cap}"
        );
    }

    #[test]
    fn uninformative_players_have_zero_divergence() {
        let dom = PairedDomain::new(2);
        // Parity of a single sign: E_z symmetric, and per-z it IS biased,
        // so divergence is positive but small; the constant function is 0.
        let constant = |_: &[crate::player::PairedSample]| true;
        assert_eq!(average_divergence_exact(&dom, 2, 0.8, &constant), 0.0);
        let parity = average_divergence_exact(&dom, 1, 0.8, &SignParity);
        assert!(parity > 0.0);
    }

    #[test]
    fn divergence_increases_with_epsilon() {
        let dom = PairedDomain::new(2);
        let g = CollisionIndicator::new(1);
        let weak = average_divergence_exact(&dom, 3, 0.2, &g);
        let strong = average_divergence_exact(&dom, 3, 0.8, &g);
        assert!(strong > weak);
    }

    #[test]
    fn q_lower_bound_shapes() {
        let eps = 0.5;
        let n = 1 << 16;
        // sqrt(n/k) regime: quadrupling k halves the bound.
        let q16 = q_lower_bound(n, 16, eps);
        let q64 = q_lower_bound(n, 64, eps);
        assert!(
            (q16 / q64 - 2.0).abs() < 0.35,
            "q16={q16} q64={q64} ratio={}",
            q16 / q64
        );
        // Bound decreases with k and increases with n.
        assert!(q_lower_bound(n, 256, eps) < q16);
        assert!(q_lower_bound(n * 4, 16, eps) > q16);
    }

    #[test]
    fn q_lower_bound_epsilon_scaling() {
        let n = 1 << 16;
        let k = 16;
        // In the sqrt regime, q* ~ 1/eps^2.
        let q_half = q_lower_bound(n, k, 0.5);
        let q_quarter = q_lower_bound(n, k, 0.25);
        assert!(
            (q_quarter / q_half - 4.0).abs() < 1.0,
            "ratio = {}",
            q_quarter / q_half
        );
    }

    #[test]
    fn min_players_matches_single_sample_regime() {
        // q = 1: k = Omega(n / eps^2) (the ACT18 recovery noted in 6.1).
        let eps = 0.5;
        let a = min_players(1 << 10, 1, eps);
        let b = min_players(1 << 12, 1, eps);
        assert!((b / a - 4.0).abs() < 0.2, "n-scaling ratio {}", b / a);
    }

    #[test]
    fn bernoulli_kl_bound_sanity() {
        // Fact 6.3 on raw Bernoullis, used throughout: spot check here
        // so the dependency is exercised from this crate too.
        use dut_probability::distance::bernoulli_kl_chi2_bound;
        assert!(bernoulli_kl(0.4, 0.5) <= bernoulli_kl_chi2_bound(0.4, 0.5));
    }

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn budget_validates_delta() {
        let _ = required_budget(0.0);
    }
}
