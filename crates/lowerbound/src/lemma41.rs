//! Lemma 4.1, executable: the exact Fourier expansion of a player's
//! deviation,
//!
//! ```text
//! ν_z(G) − μ(G) = (2^q/n^q) · Σ_{S≠∅} Σ_x ε^{|S|} Π_{j∈S} z(x_j) · Ĝ_x(S)
//! ```
//!
//! where `G_x(s) = G(x, s)` is the restriction of the player function
//! to a fixed tuple of cube points and `Ĝ_x` its Fourier transform in
//! the sign variables. This module evaluates the right-hand side from
//! actual restricted spectra (via `dut_fourier::restriction`) and the
//! tests confirm it coincides with the directly-computed left-hand
//! side — the identity every lemma in the paper starts from.

use crate::player::TableFunction;
use dut_fourier::restriction::{restrict, Restriction};
use dut_fourier::Spectrum;
#[cfg(test)]
use dut_probability::PairedDomain;
use dut_probability::PerturbationVector;

/// The restricted spectra `{Ĝ_x}` of a table player function: for each
/// cube-part tuple `x` (mixed-radix index over `(n/2)^q`), the Fourier
/// spectrum of `G_x` in the `q` sign variables.
///
/// # Panics
///
/// Panics if `(n/2)^q` exceeds `2^22` (enumeration guard).
#[must_use]
pub fn restricted_spectra(g: &TableFunction) -> Vec<Spectrum> {
    let dom = g.domain();
    let q = g.sample_count();
    let ell = dom.ell();
    let cube = dom.cube_size() as u64;
    let total = cube.pow(dut_fourier::character::mask(q));
    assert!(total <= 1 << 22, "cube-tuple enumeration too large");
    let width = ell + 1;
    (0..total)
        .map(|code| {
            // Fix the cube bits of every sample to the digits of `code`;
            // the free variables are exactly the q sign bits.
            let mut mask = 0u32;
            let mut values = 0u32;
            let mut c = code;
            for i in 0..dut_fourier::character::mask(q) {
                let x = u32::try_from(c % cube).expect("cube digit fits a u32");
                c /= cube;
                let cube_mask = (1u32 << ell) - 1;
                mask |= cube_mask << (i * width);
                values |= x << (i * width);
            }
            restrict(g.table(), Restriction::new(mask, values)).spectrum()
        })
        .collect()
}

/// Evaluates the right-hand side of Lemma 4.1 for a given `z` and `ε`,
/// from the restricted spectra.
///
/// # Panics
///
/// Panics if `z` does not match the domain or the enumeration guard
/// trips.
#[must_use]
pub fn lemma_4_1_rhs(g: &TableFunction, z: &PerturbationVector, epsilon: f64) -> f64 {
    let dom = g.domain();
    let q = g.sample_count();
    assert_eq!(
        z.len(),
        dom.cube_size(),
        "perturbation vector length mismatch"
    );
    let cube = dom.cube_size() as u64;
    let n = dom.universe_size() as f64;
    let spectra = restricted_spectra(g);
    let qe = dut_fourier::character::powi_exp(q as u64);
    let scale = 2.0f64.powi(qe) / n.powi(qe);
    let mut total = 0.0f64;
    for (code, spectrum) in spectra.iter().enumerate() {
        // Decode the cube tuple for the z product.
        let mut digits = Vec::with_capacity(q);
        let mut c = code as u64;
        for _ in 0..q {
            digits.push(u32::try_from(c % cube).expect("cube digit fits a u32"));
            c /= cube;
        }
        for subset in 1u32..(1 << q) {
            let mut z_product = 1.0f64;
            let mut bits = subset;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                z_product *= f64::from(z.sign(digits[j]));
            }
            total +=
                epsilon.powi(subset.count_ones() as i32) * z_product * spectrum.coefficient(subset);
        }
    }
    scale * total
}

/// Checks the identity for one `(G, z, ε)`: returns
/// `(lhs, rhs, |lhs − rhs|)` where the lhs is computed by direct
/// enumeration ([`crate::exact`]).
///
/// # Panics
///
/// Panics if the enumeration guards trip.
#[must_use]
pub fn check_lemma_4_1(g: &TableFunction, z: &PerturbationVector, epsilon: f64) -> (f64, f64, f64) {
    let dom = g.domain();
    let q = g.sample_count();
    let lhs = crate::exact::nu_g(&dom, q, g, z, epsilon) - crate::exact::mu_g(&dom, q, g);
    let rhs = lemma_4_1_rhs(g, z, epsilon);
    (lhs, rhs, (lhs - rhs).abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identity_holds_for_random_functions() {
        let dom = PairedDomain::new(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        for q in 1..=3usize {
            for _ in 0..4 {
                let g = TableFunction::random(dom, q, 0.5, &mut rng);
                let z = PerturbationVector::random(dom.cube_size(), &mut rng);
                for &eps in &[0.0, 0.3, 0.9] {
                    let (lhs, rhs, err) = check_lemma_4_1(&g, &z, eps);
                    assert!(
                        err < 1e-12,
                        "q={q} eps={eps}: lhs={lhs} rhs={rhs} err={err}"
                    );
                }
            }
        }
    }

    #[test]
    fn identity_holds_for_biased_functions() {
        let dom = PairedDomain::new(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(53);
        let g = TableFunction::random(dom, 2, 0.05, &mut rng);
        let z = PerturbationVector::from_code(dom.cube_size(), 0b0110);
        let (_, _, err) = check_lemma_4_1(&g, &z, 0.7);
        assert!(err < 1e-12);
    }

    #[test]
    fn rhs_vanishes_at_epsilon_zero() {
        let dom = PairedDomain::new(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let g = TableFunction::random(dom, 2, 0.5, &mut rng);
        let z = PerturbationVector::random(dom.cube_size(), &mut rng);
        assert!(lemma_4_1_rhs(&g, &z, 0.0).abs() < 1e-15);
    }

    #[test]
    fn restricted_spectra_count_and_shape() {
        let dom = PairedDomain::new(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(57);
        let g = TableFunction::random(dom, 2, 0.5, &mut rng);
        let spectra = restricted_spectra(&g);
        assert_eq!(spectra.len(), 16); // (n/2)^q = 4^2
        assert!(spectra.iter().all(|s| s.num_vars() == 2)); // q sign vars
    }

    #[test]
    fn sign_only_functions_have_x_independent_spectra() {
        // A player reading only the signs: every restriction is equal.
        let dom = PairedDomain::new(2);
        let q = 2;
        let table = dut_fourier::BooleanFunction::from_fn(6, |w| {
            // Sign bits are at positions 2 and 5 (width 3 per sample).
            f64::from(((w >> 2) & 1) ^ ((w >> 5) & 1))
        });
        let g = TableFunction::new(dom, q, table);
        let spectra = restricted_spectra(&g);
        let first = spectra[0].coefficients().to_vec();
        for s in &spectra {
            for (a, b) in s.coefficients().iter().zip(&first) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
