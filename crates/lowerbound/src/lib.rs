//! Executable lower-bound machinery for *Can Distributed Uniformity
//! Testing Be Local?* (PODC 2019) — the paper's primary contribution,
//! made computational.
//!
//! The paper models a player as a Boolean function
//! `G : {-1,1}^{(ℓ+1)q} → {0,1}` of its `q` samples from the paired
//! domain, and bounds how differently `G` can behave on the uniform
//! distribution versus a random member `ν_z` of the hard family:
//!
//! * [`player`] — a library of concrete player functions `G`
//!   (collision indicators, dictators, parities, majorities, random
//!   functions) evaluated on sample tuples;
//! * [`exact`] — exact computation of `μ(G)`, `ν_z(G)`,
//!   `E_z[ν_z(G)]` and `E_z[(ν_z(G) − μ(G))²]` by full enumeration of
//!   sample tuples and perturbation vectors (small parameters);
//! * [`montecarlo`] — unbiased Monte-Carlo estimators of the same
//!   quantities for larger parameters;
//! * [`lemmas`] — right-hand sides of Lemma 4.2, 4.3, 4.4 and 5.1 and
//!   checkers that compare them against the exact/estimated left-hand
//!   sides;
//! * [`claim31`] — numeric verification of Claim 3.1 (the product
//!   expansion of `ν_z^q`) and of the even-cover spectrum structure;
//! * [`divergence`] — the KL-budget argument of Section 6.1
//!   (Fact 6.2/6.3, equations (9)–(13));
//! * [`theory`] — every theorem's predicted sample complexity as a
//!   formula, used by the benchmark tables.
//!
//! # Example: checking Lemma 5.1 exactly
//!
//! ```
//! use dut_lowerbound::{exact, lemmas, player::CollisionIndicator};
//! use dut_probability::PairedDomain;
//!
//! let dom = PairedDomain::new(2); // universe size 8
//! let q = 2;
//! let eps = 0.5;
//! let g = CollisionIndicator::new(1);
//! let check = lemmas::check_lemma_5_1(&dom, q, eps, &g);
//! assert!(check.holds(), "{check:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Tests assert exact constructed values and index with small literals.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]

pub mod claim31;
pub mod divergence;
pub mod exact;
pub mod lemma41;
pub mod lemmas;
pub mod mixture;
pub mod montecarlo;
pub mod player;
pub mod theory;
