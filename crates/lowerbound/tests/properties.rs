//! Property-based tests for the lower-bound machinery: the paper's
//! inequalities as universally-quantified properties over random
//! player functions and parameters.

#![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // test code asserts exact values
use dut_lowerbound::{claim31, exact, lemmas, player, theory};
use dut_probability::{PairedDomain, PerturbationVector};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_table_function(ell: u32, q: usize) -> impl Strategy<Value = player::TableFunction> {
    let bits = (ell + 1) * q as u32;
    prop::collection::vec(prop::bool::ANY, 1usize << bits).prop_map(move |values| {
        let table =
            dut_fourier::BooleanFunction::from_values(values.into_iter().map(f64::from).collect());
        player::TableFunction::new(PairedDomain::new(ell), q, table)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lemma_5_1_universal(g in arb_table_function(2, 2), eps_i in 1u32..=9) {
        let dom = PairedDomain::new(2);
        let eps = f64::from(eps_i) / 10.0;
        let check = lemmas::check_lemma_5_1(&dom, 2, eps, &g);
        prop_assert!(check.holds(), "{check:?}");
    }

    #[test]
    fn lemma_4_2_universal(g in arb_table_function(2, 2), eps_i in 1u32..=9) {
        let dom = PairedDomain::new(2);
        let eps = f64::from(eps_i) / 10.0;
        let check = lemmas::check_lemma_4_2(&dom, 2, eps, &g);
        prop_assert!(check.holds(), "{check:?}");
    }

    #[test]
    fn lemma_4_3_universal(g in arb_table_function(2, 1), eps_i in 1u32..=5, m in 1u32..=3) {
        let dom = PairedDomain::new(2);
        let eps = f64::from(eps_i) / 10.0;
        let check = lemmas::check_lemma_4_3(&dom, 1, eps, m, &g);
        prop_assert!(check.holds(), "{check:?}");
    }

    #[test]
    fn nu_g_is_probability(g in arb_table_function(2, 2), code in 0u64..16, eps_i in 0u32..=10) {
        let dom = PairedDomain::new(2);
        let z = PerturbationVector::from_code(dom.cube_size(), code);
        let eps = f64::from(eps_i) / 10.0;
        let nu = exact::nu_g(&dom, 2, &g, &z, eps);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&nu));
    }

    #[test]
    fn second_moment_bounds_first_squared(g in arb_table_function(2, 2), eps_i in 1u32..=9) {
        // Jensen: |E_z[dev]|^2 <= E_z[dev^2].
        let dom = PairedDomain::new(2);
        let eps = f64::from(eps_i) / 10.0;
        let m = exact::z_moments_exact(&dom, 2, &g, eps);
        prop_assert!(m.first_moment_abs().powi(2) <= m.second_moment + 1e-12);
        prop_assert!(m.second_moment <= m.max_abs_deviation.powi(2) + 1e-12);
    }

    #[test]
    fn claim_3_1_pointwise(
        code in any::<u64>(),
        eps in 0.0f64..=1.0,
        tuple_seed in any::<u64>(),
        q in 1usize..5,
    ) {
        let dom = PairedDomain::new(3);
        let z = PerturbationVector::from_code(dom.cube_size(), code & 0xFF);
        let mut rng = rand::rngs::StdRng::seed_from_u64(tuple_seed);
        use rand::Rng;
        let xs: Vec<u32> = (0..q).map(|_| rng.random_range(0..8)).collect();
        let ss: Vec<i8> = (0..q).map(|_| if rng.random::<bool>() { 1 } else { -1 }).collect();
        let lhs = claim31::density_product(&dom, &z, eps, &xs, &ss);
        let rhs = claim31::density_expansion(&dom, &z, eps, &xs, &ss);
        prop_assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn b_x_is_even_cover_indicator(
        xs in prop::collection::vec(0u32..4, 1..6),
        subset_bits in any::<u64>(),
    ) {
        let dom = PairedDomain::new(2);
        let subset = subset_bits & ((1u64 << xs.len()) - 1);
        let exact_b = claim31::b_x_exact(&dom, &xs, subset);
        prop_assert!((exact_b - claim31::b_x_predicted(&xs, subset)).abs() < 1e-12);
    }

    #[test]
    fn theorem_formulas_monotone(
        n_pow in 4u32..20,
        k_pow in 0u32..10,
        eps_i in 1u32..=10,
    ) {
        let n = 1usize << n_pow;
        let k = 1usize << k_pow;
        let eps = f64::from(eps_i) / 10.0;
        // More players never increases the required samples.
        prop_assert!(theory::theorem_1_1(n, 2 * k, eps) <= theory::theorem_1_1(n, k, eps) + 1e-9);
        prop_assert!(theory::theorem_1_2(n, 2 * k, eps) <= theory::theorem_1_2(n, k, eps) + 1e-9);
        // Larger domains never decrease it.
        prop_assert!(theory::theorem_1_1(2 * n, k, eps) >= theory::theorem_1_1(n, k, eps) - 1e-9);
        // Smaller epsilon is harder.
        if eps_i >= 2 {
            let smaller = f64::from(eps_i - 1) / 10.0;
            prop_assert!(theory::theorem_1_1(n, k, smaller) >= theory::theorem_1_1(n, k, eps));
        }
        // The r-bit bound interpolates: r bits at k players = 1 bit at 2^r k.
        prop_assert!(
            (theory::theorem_6_4(n, k, eps, 3) - theory::theorem_1_1(n, 8 * k, eps)).abs()
                < 1e-9
        );
    }

    #[test]
    fn encode_decode_tuple_roundtrip(
        samples in prop::collection::vec((0u32..8, prop::bool::ANY), 1..5),
    ) {
        let dom = PairedDomain::new(3);
        let tuple: Vec<player::PairedSample> = samples
            .into_iter()
            .map(|(x, neg)| (x, if neg { -1 } else { 1 }))
            .collect();
        let mask = player::encode_tuple(&dom, &tuple);
        prop_assert_eq!(player::decode_tuple(&dom, mask, tuple.len()), tuple);
    }
}
