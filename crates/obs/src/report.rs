//! Trace aggregation: turns a JSONL trace into a human-readable
//! profile (`dut report <trace.jsonl>`).

use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Snapshot of one histogram: (count, sum, non-empty buckets as
/// (upper-bound, count) pairs).
pub type HistogramSnapshot = (u64, u64, Vec<(u64, u64)>);

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStats {
    /// Number of span instances.
    pub count: u64,
    /// Total wall time across instances, microseconds.
    pub total_micros: u64,
}

/// One `probe` event, tagged with the search it belongs to.
///
/// Concurrent searches (e.g. two `dut serve` workers calibrating at
/// once) interleave their probes in one trace; `search_id` is the
/// per-process run identity that demultiplexes them. Traces written
/// before the id existed parse with `search_id == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeRecord {
    /// The owning search's run id (0 for legacy traces).
    pub search_id: u64,
    /// The probed parameter value.
    pub value: u64,
    /// Whether the predicate held at this value.
    pub sufficient: bool,
    /// Wall time of the probe, microseconds.
    pub elapsed_micros: u64,
}

/// One completed `search_done` event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchRecord {
    /// The search's run id (0 for legacy traces).
    pub search_id: u64,
    /// The minimal sufficient value found.
    pub minimal: u64,
    /// Predicate evaluations spent.
    pub evaluations: u64,
    /// Whether the search saturated at its upper limit.
    pub saturated: bool,
}

/// The one-time wall-clock anchor of a trace, if present: the wall
/// clock observed at a known trace-relative timestamp. See
/// [`crate::recorder::clock_anchor_event`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClockAnchor {
    /// Wall clock at the anchor, microseconds since the Unix epoch.
    pub unix_micros: u64,
    /// Trace-relative timestamp of the anchor event.
    pub ts_micros: u64,
    /// Emitting process id (0 for legacy traces).
    pub pid: u64,
}

impl ClockAnchor {
    /// Converts a trace-relative timestamp to wall-clock microseconds.
    #[must_use]
    pub fn wall_micros(&self, ts_micros: u64) -> u64 {
        // The anchor is emitted at sink install, so in-trace
        // timestamps virtually always follow it; saturate rather than
        // wrap for the pathological pre-anchor event.
        self.unix_micros
            .saturating_add(ts_micros)
            .saturating_sub(self.ts_micros)
    }
}

/// Aggregated view of one trace file.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Manifest fields (flattened key → display string), if present.
    pub manifest: BTreeMap<String, String>,
    /// Per-span-name wall-time totals.
    pub spans: BTreeMap<String, SpanStats>,
    /// Search probes seen, tagged by owning search.
    pub probes: Vec<ProbeRecord>,
    /// Completed searches, tagged by run id.
    pub searches: Vec<SearchRecord>,
    /// Final metrics snapshot: counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Final metrics snapshot: gauge name → value.
    pub gauges: BTreeMap<String, u64>,
    /// Final metrics snapshot: histogram name → (count, sum, buckets).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Per-execution events seen (verbose traces only).
    pub net_runs: u64,
    /// Trial batches seen.
    pub trial_batches: u64,
    /// Wall-clock anchor, when the trace carries one.
    pub anchor: Option<ClockAnchor>,
    /// Largest event timestamp, microseconds.
    pub last_ts_micros: u64,
    /// Total events parsed.
    pub events: u64,
    /// Lines that failed to parse (malformed/truncated traces).
    pub malformed_lines: u64,
}

impl Report {
    /// Parses and aggregates a JSONL trace.
    ///
    /// # Errors
    ///
    /// Returns an error if no line parses as a trace event.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut report = Report::default();
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let Ok(value) = json::parse(trimmed) else {
                report.malformed_lines += 1;
                continue;
            };
            report.ingest(&value);
        }
        if report.events == 0 {
            return Err("no parseable trace events found".into());
        }
        Ok(report)
    }

    fn ingest(&mut self, value: &Json) {
        let Some(event) = value.get("event").and_then(Json::as_str) else {
            self.malformed_lines += 1;
            return;
        };
        self.events += 1;
        if let Some(ts) = value.get("ts_us").and_then(Json::as_u64) {
            self.last_ts_micros = self.last_ts_micros.max(ts);
        }
        match event {
            "manifest" => {
                if let Some(obj) = value.as_obj() {
                    for (key, val) in obj {
                        if key == "event" || key == "ts_us" {
                            continue;
                        }
                        self.manifest.insert(key.clone(), display_json(val));
                    }
                }
            }
            "span" => {
                let name = value
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("<unnamed>");
                let elapsed = value.get("elapsed_us").and_then(Json::as_u64).unwrap_or(0);
                let stats = self.spans.entry(name.to_owned()).or_default();
                stats.count += 1;
                stats.total_micros += elapsed;
            }
            "probe" => {
                self.probes.push(ProbeRecord {
                    search_id: value.get("search_id").and_then(Json::as_u64).unwrap_or(0),
                    value: value.get("value").and_then(Json::as_u64).unwrap_or(0),
                    sufficient: matches!(value.get("sufficient"), Some(Json::Bool(true))),
                    elapsed_micros: value.get("elapsed_us").and_then(Json::as_u64).unwrap_or(0),
                });
            }
            "search_done" => {
                self.searches.push(SearchRecord {
                    search_id: value.get("search_id").and_then(Json::as_u64).unwrap_or(0),
                    minimal: value.get("minimal").and_then(Json::as_u64).unwrap_or(0),
                    evaluations: value.get("evaluations").and_then(Json::as_u64).unwrap_or(0),
                    saturated: matches!(value.get("saturated"), Some(Json::Bool(true))),
                });
            }
            "metrics" => {
                if let Some(counters) = value.get("counters").and_then(Json::as_obj) {
                    self.counters = counters
                        .iter()
                        .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                        .collect();
                }
                if let Some(gauges) = value.get("gauges").and_then(Json::as_obj) {
                    self.gauges = gauges
                        .iter()
                        .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                        .collect();
                }
                if let Some(histograms) = value.get("histograms").and_then(Json::as_obj) {
                    self.histograms = histograms
                        .iter()
                        .filter_map(|(k, v)| {
                            let count = v.get("count")?.as_u64()?;
                            let sum = v.get("sum")?.as_u64()?;
                            let buckets = match v.get("buckets") {
                                Some(Json::Arr(pairs)) => pairs
                                    .iter()
                                    .filter_map(|p| match p {
                                        Json::Arr(pair) if pair.len() == 2 => {
                                            Some((pair[0].as_u64()?, pair[1].as_u64()?))
                                        }
                                        _ => None,
                                    })
                                    .collect(),
                                _ => Vec::new(),
                            };
                            Some((k.clone(), (count, sum, buckets)))
                        })
                        .collect();
                }
            }
            "clock_anchor" => {
                self.anchor = Some(ClockAnchor {
                    unix_micros: value.get("unix_micros").and_then(Json::as_u64).unwrap_or(0),
                    ts_micros: value.get("ts_us").and_then(Json::as_u64).unwrap_or(0),
                    pid: value.get("pid").and_then(Json::as_u64).unwrap_or(0),
                });
            }
            "net_run" => self.net_runs += 1,
            "trial_batch" => self.trial_batches += 1,
            _ => {}
        }
    }

    /// A named counter from the final snapshot (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Probes and the completing `search_done` (if any) grouped by run
    /// id — the demultiplexed view of interleaved concurrent searches.
    /// Legacy traces collapse onto id 0.
    #[must_use]
    pub fn searches_by_id(&self) -> BTreeMap<u64, (Vec<&ProbeRecord>, Option<&SearchRecord>)> {
        let mut by_id: BTreeMap<u64, (Vec<&ProbeRecord>, Option<&SearchRecord>)> = BTreeMap::new();
        for probe in &self.probes {
            by_id.entry(probe.search_id).or_default().0.push(probe);
        }
        for search in &self.searches {
            by_id.entry(search.search_id).or_default().1 = Some(search);
        }
        by_id
    }

    /// Renders the human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== dut trace report ==");
        if !self.manifest.is_empty() {
            let _ = writeln!(out, "\nmanifest:");
            for (key, value) in &self.manifest {
                let _ = writeln!(out, "  {key:<16} {value}");
            }
        }
        let _ = writeln!(
            out,
            "\nevents: {} parsed{}  trace span: {}",
            self.events,
            if self.malformed_lines > 0 {
                format!(" ({} malformed lines skipped)", self.malformed_lines)
            } else {
                String::new()
            },
            human_micros(self.last_ts_micros)
        );
        if let Some(anchor) = &self.anchor {
            let _ = writeln!(
                out,
                "clock anchor: pid {} at unix {} µs (trace t={})",
                anchor.pid,
                anchor.unix_micros,
                human_micros(anchor.ts_micros)
            );
        }

        if !self.spans.is_empty() {
            let mut spans: Vec<(&String, &SpanStats)> = self.spans.iter().collect();
            spans.sort_by_key(|(_, s)| std::cmp::Reverse(s.total_micros));
            let grand_total: u64 = spans.iter().map(|(_, s)| s.total_micros).sum();
            let _ = writeln!(out, "\nper-phase wall time:");
            let _ = writeln!(
                out,
                "  {:<28} {:>6} {:>12} {:>7}",
                "phase", "count", "total", "share"
            );
            for (name, stats) in spans {
                let share = if grand_total > 0 {
                    100.0 * stats.total_micros as f64 / grand_total as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  {:<28} {:>6} {:>12} {share:>6.1}%",
                    name,
                    stats.count,
                    human_micros(stats.total_micros)
                );
            }
        }

        if !self.probes.is_empty() || !self.searches.is_empty() {
            let _ = writeln!(out, "\nsearch activity:");
            if !self.probes.is_empty() {
                let sufficient = self.probes.iter().filter(|p| p.sufficient).count();
                let probe_time: u64 = self.probes.iter().map(|p| p.elapsed_micros).sum();
                let _ = writeln!(
                    out,
                    "  probes: {} ({} sufficient, {} insufficient), {} probing",
                    self.probes.len(),
                    sufficient,
                    self.probes.len() - sufficient,
                    human_micros(probe_time)
                );
            }
            if !self.searches.is_empty() {
                let evals: u64 = self.searches.iter().map(|s| s.evaluations).sum();
                let saturated = self.searches.iter().filter(|s| s.saturated).count();
                let _ = writeln!(
                    out,
                    "  searches: {} completed, {} evaluations total{}",
                    self.searches.len(),
                    evals,
                    if saturated > 0 {
                        format!(", {saturated} saturated")
                    } else {
                        String::new()
                    }
                );
            }
            // Demultiplex by run id when the trace interleaves more
            // than one search (concurrent `dut serve` calibrations).
            let by_id = self.searches_by_id();
            if by_id.len() > 1 || by_id.keys().any(|&id| id != 0) {
                for (id, (probes, done)) in &by_id {
                    let line = match done {
                        Some(d) => format!(
                            "minimal {}{} in {} evaluations",
                            d.minimal,
                            if d.saturated { " (saturated)" } else { "" },
                            d.evaluations
                        ),
                        None => "unfinished".to_owned(),
                    };
                    let _ = writeln!(out, "    search #{id}: {} probes, {line}", probes.len());
                }
            }
        }

        if !self.counters.is_empty() {
            let accepts = self.counter("verdict_accept");
            let rejects = self.counter("verdict_reject");
            let runs = self.counter("net_runs");
            let _ = writeln!(out, "\ntotals (final metrics snapshot):");
            let _ = writeln!(out, "  protocol runs    {}", human_count(runs));
            if accepts + rejects > 0 {
                let _ = writeln!(
                    out,
                    "  verdicts         {} accept ({:.1}%), {} reject ({:.1}%)",
                    human_count(accepts),
                    100.0 * accepts as f64 / (accepts + rejects) as f64,
                    human_count(rejects),
                    100.0 * rejects as f64 / (accepts + rejects) as f64,
                );
            }
            let _ = writeln!(
                out,
                "  samples drawn    {}",
                human_count(self.counter("samples_drawn"))
            );
            let _ = writeln!(
                out,
                "  message bits     {}",
                human_count(self.counter("bits_sent"))
            );
            let _ = writeln!(
                out,
                "  mc trials        {}",
                human_count(self.counter("trials_run"))
            );
            let _ = writeln!(
                out,
                "  search probes    {}",
                human_count(self.counter("search_probes"))
            );
            let crashed = self.counter("faults_crashed");
            let lost = self.counter("faults_messages_lost");
            if crashed + lost > 0 {
                let _ = writeln!(
                    out,
                    "  faults           {} crashed, {} messages lost",
                    human_count(crashed),
                    human_count(lost)
                );
            }
            let retries = self.counter("fault_retries");
            let redundant = self.counter("redundant_bits");
            let recovered = self.counter("recovered_bits");
            let timeouts = self.counter("fault_timeouts");
            if retries + redundant + recovered + timeouts > 0 {
                let _ = writeln!(
                    out,
                    "  recovery         {} retries, {} redundant bits, {} recovered, {} timeouts",
                    human_count(retries),
                    human_count(redundant),
                    human_count(recovered),
                    human_count(timeouts)
                );
            }
            let flips = self.counter("byzantine_flips");
            if flips > 0 {
                let _ = writeln!(
                    out,
                    "  byzantine        {} corrupted bits",
                    human_count(flips)
                );
            }
            let hist_draws = self.counter("histogram_draws");
            if hist_draws > 0 {
                let _ = writeln!(
                    out,
                    "  histogram draws  {} (conditional-binomial fast path)",
                    human_count(hist_draws)
                );
            }
            let cache_hits = self.counter("calibration_cache_hits");
            let cache_misses = self.counter("calibration_cache_misses");
            if cache_hits + cache_misses > 0 {
                let _ = writeln!(
                    out,
                    "  calib cache      {} hits, {} misses ({:.1}% hit rate)",
                    human_count(cache_hits),
                    human_count(cache_misses),
                    100.0 * cache_hits as f64 / (cache_hits + cache_misses) as f64,
                );
            }
            let serve_requests = self.counter("serve_requests");
            let serve_shed = self.counter("serve_shed");
            if serve_requests + serve_shed > 0 {
                let serve_hits = self.counter("serve_cache_hits");
                let serve_misses = self.counter("serve_cache_misses");
                let _ = writeln!(
                    out,
                    "  serve            {} requests, {} shed, tester cache {} hits / {} misses",
                    human_count(serve_requests),
                    human_count(serve_shed),
                    human_count(serve_hits),
                    human_count(serve_misses),
                );
                if let Some(&depth) = self.gauges.get("serve_queue_depth") {
                    let _ = writeln!(out, "  serve queue      {depth} waiting at snapshot");
                }
                let malformed = self.counter("serve_malformed");
                let reaped = self.counter("serve_reaped");
                let budget_closed = self.counter("serve_error_budget");
                let panics = self.counter("serve_panics_caught");
                if malformed + reaped + budget_closed + panics > 0 {
                    let _ = writeln!(
                        out,
                        "  serve hardening  {} malformed, {} reaped, {} budget-closed, {} panics caught",
                        human_count(malformed),
                        human_count(reaped),
                        human_count(budget_closed),
                        human_count(panics),
                    );
                }
            }
            let chaos = self.counter("chaos_injected");
            if chaos > 0 {
                let _ = writeln!(
                    out,
                    "  chaos injected   {} hostile client actions",
                    human_count(chaos)
                );
            }
            if let Some(&threads) = self.gauges.get("runner_threads").filter(|&&t| t > 0) {
                let _ = writeln!(out, "  runner threads   {threads}");
            }
            if let Some(&backend) = self.gauges.get("sampling_backend").filter(|&&b| b > 0) {
                let _ = writeln!(
                    out,
                    "  sampling backend {}",
                    if backend == 2 {
                        "histogram"
                    } else {
                        "per-draw"
                    }
                );
            }
        }

        if !self.histograms.is_empty() {
            let _ = writeln!(out, "\nhistograms (log2 buckets):");
            for (name, (count, sum, buckets)) in &self.histograms {
                if *count == 0 {
                    continue;
                }
                #[allow(clippy::cast_precision_loss)]
                let mean = *sum as f64 / *count as f64;
                let _ = writeln!(
                    out,
                    "  {name:<20} count={count} mean={mean:.1} p50≈{} max_bucket≈{}",
                    approx_quantile(buckets, *count, 0.5),
                    buckets.last().map_or(0, |b| b.0),
                );
            }
        }

        if self.net_runs > 0 || self.trial_batches > 0 {
            let _ = writeln!(
                out,
                "\nverbose events: {} net_run, {} trial_batch",
                self.net_runs, self.trial_batches
            );
        }
        out
    }
}

/// Approximate quantile from log buckets: the low edge of the bucket
/// where the cumulative count crosses `q`.
fn approx_quantile(buckets: &[(u64, u64)], count: u64, q: f64) -> u64 {
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_sign_loss,
        clippy::cast_possible_truncation
    )]
    let target = (count as f64 * q).ceil().max(1.0) as u64;
    let mut seen = 0;
    for &(low, n) in buckets {
        seen += n;
        if seen >= target {
            return low;
        }
    }
    buckets.last().map_or(0, |b| b.0)
}

#[allow(clippy::float_cmp)]
fn display_json(value: &Json) -> String {
    match value {
        Json::Null => "null".into(),
        Json::Bool(b) => b.to_string(),
        Json::Uint(x) => x.to_string(),
        Json::Num(x) => {
            // dut-lint: allow(float-eq): fract() of an integral f64 is exactly +0.0 — exact integrality test picking the display format
            if x.fract() == 0.0 && x.abs() < 9e15 {
                format!("{x:.0}")
            } else {
                format!("{x}")
            }
        }
        Json::Str(s) => s.clone(),
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(display_json).collect();
            format!("[{}]", inner.join(", "))
        }
        Json::Obj(map) => {
            let inner: Vec<String> = map
                .iter()
                .map(|(k, v)| format!("{k}={}", display_json(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

/// `1234567` → `1.23M`-style counts.
fn human_count(n: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let x = n as f64;
    if n < 10_000 {
        n.to_string()
    } else if x < 1e6 {
        format!("{:.1}k", x / 1e3)
    } else if x < 1e9 {
        format!("{:.2}M", x / 1e6)
    } else {
        format!("{:.2}G", x / 1e9)
    }
}

/// Microseconds → human time.
fn human_micros(us: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let x = us as f64;
    if us < 1_000 {
        format!("{us} µs")
    } else if x < 1e6 {
        format!("{:.2} ms", x / 1e3)
    } else {
        format!("{:.2} s", x / 1e6)
    }
}

/// Reads, aggregates, and renders a trace file.
///
/// # Errors
///
/// Returns an error when the file is unreadable or contains no events.
pub fn summarize_file(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
    let report = Report::from_jsonl(&text)?;
    Ok(report.render())
}

/// Reads several trace files (e.g. a server's and a loadgen's) and
/// renders them on one wall-clock axis using each trace's
/// `clock_anchor`, followed by each individual summary.
///
/// Recorder timestamps are relative to each process's own start, so
/// raw `ts_us` values from different traces are incomparable; the
/// anchors translate them onto shared wall-clock time. Traces without
/// an anchor are listed but marked unaligned.
///
/// # Errors
///
/// Returns an error when any file is unreadable or empty of events.
pub fn summarize_aligned(paths: &[&str]) -> Result<String, String> {
    let mut reports = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
        reports.push((*path, Report::from_jsonl(&text)?));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== dut aligned trace report ({} traces) ==",
        paths.len()
    );
    // Earliest aligned wall-clock instant across traces becomes t0.
    let t0 = reports
        .iter()
        .filter_map(|(_, r)| r.anchor.map(|a| a.wall_micros(0)))
        .min();
    let _ = writeln!(
        out,
        "\n  {:<28} {:>8} {:>6} {:>14} {:>14}",
        "trace", "events", "pid", "start (t0+)", "end (t0+)"
    );
    for (path, report) in &reports {
        match (report.anchor, t0) {
            (Some(anchor), Some(t0)) => {
                let start = anchor.wall_micros(0).saturating_sub(t0);
                let end = anchor.wall_micros(report.last_ts_micros).saturating_sub(t0);
                let _ = writeln!(
                    out,
                    "  {:<28} {:>8} {:>6} {:>14} {:>14}",
                    short_name(path),
                    report.events,
                    anchor.pid,
                    human_micros(start),
                    human_micros(end),
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>8} {:>6} {:>14} {:>14}",
                    short_name(path),
                    report.events,
                    "-",
                    "(no anchor)",
                    "unaligned",
                );
            }
        }
    }
    let aligned: Vec<&Report> = reports
        .iter()
        .filter(|(_, r)| r.anchor.is_some())
        .map(|(_, r)| r)
        .collect();
    if let (Some(t0), false) = (t0, aligned.is_empty()) {
        let span = aligned
            .iter()
            .filter_map(|r| r.anchor.map(|a| a.wall_micros(r.last_ts_micros)))
            .max()
            .unwrap_or(t0)
            .saturating_sub(t0);
        let _ = writeln!(
            out,
            "\n  aligned span: {} across {} anchored trace(s)",
            human_micros(span),
            aligned.len()
        );
    } else {
        let _ = writeln!(
            out,
            "\n  no clock anchors found; traces cannot share a time axis"
        );
    }
    for (path, report) in &reports {
        let _ = writeln!(out, "\n--- {path} ---");
        out.push_str(&report.render());
    }
    Ok(out)
}

/// The file-name tail of a path, for compact table rows.
fn short_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::snapshot_event;
    use crate::trace::Event;

    fn sample_trace() -> String {
        let registry = crate::metrics::Registry::new();
        registry.add(crate::metrics::Counter::NetRuns, 100);
        registry.add(crate::metrics::Counter::SamplesDrawn, 6_400);
        registry.add(crate::metrics::Counter::BitsSent, 800);
        registry.add(crate::metrics::Counter::VerdictAccept, 70);
        registry.add(crate::metrics::Counter::VerdictReject, 30);
        registry.set_gauge(crate::metrics::Gauge::RunnerThreads, 4);
        registry.observe(crate::metrics::HistogramId::RunSamples, 64);
        let mut lines = vec![
            Event::new("manifest")
                .with("experiment", "e1_test")
                .with("seed", 7u64)
                .to_json_line(),
            Event::new("span")
                .with("name", "e1.sweep_k")
                .with("elapsed_us", 5_000u64)
                .to_json_line(),
            Event::new("span")
                .with("name", "e1.sweep_k")
                .with("elapsed_us", 3_000u64)
                .to_json_line(),
            Event::new("probe")
                .with("value", 32u64)
                .with("sufficient", false)
                .with("elapsed_us", 700u64)
                .to_json_line(),
            Event::new("probe")
                .with("value", 64u64)
                .with("sufficient", true)
                .with("elapsed_us", 900u64)
                .to_json_line(),
            Event::new("search_done")
                .with("minimal", 64u64)
                .with("evaluations", 2u64)
                .with("saturated", false)
                .to_json_line(),
        ];
        lines.push(snapshot_event(&registry.snapshot()).to_json_line());
        lines.join("\n")
    }

    #[test]
    fn aggregates_spans_probes_and_metrics() {
        let report = Report::from_jsonl(&sample_trace()).unwrap();
        assert_eq!(report.manifest.get("experiment").unwrap(), "e1_test");
        let sweep = report.spans.get("e1.sweep_k").unwrap();
        assert_eq!(sweep.count, 2);
        assert_eq!(sweep.total_micros, 8_000);
        assert_eq!(report.probes.len(), 2);
        assert_eq!(
            report.searches,
            vec![SearchRecord {
                search_id: 0,
                minimal: 64,
                evaluations: 2,
                saturated: false
            }]
        );
        assert_eq!(report.counter("net_runs"), 100);
        assert_eq!(report.counter("samples_drawn"), 6_400);
        assert_eq!(report.gauges.get("runner_threads"), Some(&4));
        assert_eq!(report.histograms.get("run_samples").unwrap().0, 1);
    }

    #[test]
    fn render_mentions_required_sections() {
        let report = Report::from_jsonl(&sample_trace()).unwrap();
        let text = report.render();
        assert!(text.contains("per-phase wall time"), "{text}");
        assert!(text.contains("e1.sweep_k"), "{text}");
        assert!(text.contains("samples drawn"), "{text}");
        assert!(text.contains("message bits"), "{text}");
        assert!(text.contains("accept"), "{text}");
        assert!(text.contains("probes: 2"), "{text}");
    }

    #[test]
    fn render_surfaces_resilience_counters() {
        let registry = crate::metrics::Registry::new();
        registry.add(crate::metrics::Counter::NetRuns, 10);
        registry.add(crate::metrics::Counter::FaultsMessagesLost, 12);
        registry.add(crate::metrics::Counter::FaultRetries, 40);
        registry.add(crate::metrics::Counter::FaultRedundantBits, 25);
        registry.add(crate::metrics::Counter::FaultRecoveredBits, 9);
        registry.add(crate::metrics::Counter::FaultTimeouts, 3);
        registry.add(crate::metrics::Counter::FaultByzantineFlips, 2);
        let trace = snapshot_event(&registry.snapshot()).to_json_line();
        let report = Report::from_jsonl(&trace).unwrap();
        let text = report.render();
        assert!(
            text.contains(
                "recovery         40 retries, 25 redundant bits, 9 recovered, 3 timeouts"
            ),
            "{text}"
        );
        assert!(text.contains("byzantine        2 corrupted bits"), "{text}");
        assert!(text.contains("12 messages lost"), "{text}");
    }

    #[test]
    fn demultiplexes_interleaved_searches() {
        // Two searches interleave their probes; ids pull them apart.
        let lines = [
            Event::new("probe")
                .with("search_id", 1u64)
                .with("value", 8u64)
                .with("sufficient", false)
                .with("elapsed_us", 10u64)
                .to_json_line(),
            Event::new("probe")
                .with("search_id", 2u64)
                .with("value", 4u64)
                .with("sufficient", true)
                .with("elapsed_us", 12u64)
                .to_json_line(),
            Event::new("probe")
                .with("search_id", 1u64)
                .with("value", 16u64)
                .with("sufficient", true)
                .with("elapsed_us", 11u64)
                .to_json_line(),
            Event::new("search_done")
                .with("search_id", 2u64)
                .with("minimal", 4u64)
                .with("evaluations", 1u64)
                .with("saturated", false)
                .to_json_line(),
            Event::new("search_done")
                .with("search_id", 1u64)
                .with("minimal", 16u64)
                .with("evaluations", 2u64)
                .with("saturated", false)
                .to_json_line(),
        ];
        let report = Report::from_jsonl(&lines.join("\n")).unwrap();
        let by_id = report.searches_by_id();
        assert_eq!(by_id.len(), 2);
        let (probes1, done1) = &by_id[&1];
        assert_eq!(probes1.len(), 2);
        assert_eq!(probes1[0].value, 8);
        assert_eq!(probes1[1].value, 16);
        assert_eq!(done1.unwrap().minimal, 16);
        let (probes2, done2) = &by_id[&2];
        assert_eq!(probes2.len(), 1);
        assert_eq!(done2.unwrap().evaluations, 1);
        let text = report.render();
        assert!(text.contains("search #1: 2 probes, minimal 16"), "{text}");
        assert!(text.contains("search #2: 1 probes, minimal 4"), "{text}");
    }

    #[test]
    fn render_surfaces_serve_counters() {
        let registry = crate::metrics::Registry::new();
        registry.add(crate::metrics::Counter::ServeRequests, 1_000);
        registry.add(crate::metrics::Counter::ServeCacheHits, 990);
        registry.add(crate::metrics::Counter::ServeCacheMisses, 10);
        registry.add(crate::metrics::Counter::ServeShed, 7);
        registry.set_gauge(crate::metrics::Gauge::ServeQueueDepth, 3);
        registry.observe(crate::metrics::HistogramId::RequestMicros, 150);
        let trace = snapshot_event(&registry.snapshot()).to_json_line();
        let report = Report::from_jsonl(&trace).unwrap();
        let text = report.render();
        assert!(
            text.contains(
                "serve            1000 requests, 7 shed, tester cache 990 hits / 10 misses"
            ),
            "{text}"
        );
        assert!(
            text.contains("serve queue      3 waiting at snapshot"),
            "{text}"
        );
        assert!(text.contains("request_micros"), "{text}");
    }

    #[test]
    fn tolerates_malformed_lines() {
        let text = format!("not json\n{}\n{{\"truncated\":", sample_trace());
        let report = Report::from_jsonl(&text).unwrap();
        assert_eq!(report.malformed_lines, 2);
        assert!(report.events > 0);
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert!(Report::from_jsonl("").is_err());
        assert!(Report::from_jsonl("garbage\n").is_err());
    }

    #[test]
    fn clock_anchor_aligns_timestamps() {
        let anchor_line = Event {
            ts_micros: 500,
            ..Event::new("clock_anchor")
        }
        .with("unix_micros", 1_000_000_000u64)
        .with("pid", 42u64)
        .to_json_line();
        let span_line = Event {
            ts_micros: 1_500,
            ..Event::new("span")
        }
        .with("name", "x")
        .with("elapsed_us", 10u64)
        .to_json_line();
        let report = Report::from_jsonl(&format!("{anchor_line}\n{span_line}")).unwrap();
        let anchor = report.anchor.unwrap();
        assert_eq!(anchor.pid, 42);
        // Trace t=1500 is 1000 µs after the anchor at t=500.
        assert_eq!(anchor.wall_micros(1_500), 1_000_001_000);
        assert!(report.render().contains("clock anchor: pid 42"));
    }

    #[test]
    fn aligned_summary_places_traces_on_one_axis() {
        let dir = std::env::temp_dir().join("dut_obs_align_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mk = |name: &str, unix: u64, pid: u64| {
            let anchor = Event::new("clock_anchor")
                .with("unix_micros", unix)
                .with("pid", pid)
                .to_json_line();
            let span = Event {
                ts_micros: 2_000,
                ..Event::new("span")
            }
            .with("name", "w")
            .with("elapsed_us", 5u64)
            .to_json_line();
            let path = dir.join(name);
            std::fs::write(&path, format!("{anchor}\n{span}\n")).unwrap();
            path.to_string_lossy().into_owned()
        };
        // The loadgen starts 1 s after the server.
        let server = mk("server.jsonl", 5_000_000, 1);
        let loadgen = mk("loadgen.jsonl", 6_000_000, 2);
        let text = summarize_aligned(&[server.as_str(), loadgen.as_str()]).unwrap();
        assert!(text.contains("2 traces"), "{text}");
        assert!(text.contains("server.jsonl"), "{text}");
        // Server anchors t0; loadgen starts 1 s later and its last
        // event (trace t=2 ms) lands at t0 + 1.002 s.
        assert!(text.contains("aligned span: 1.00 s"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aligned_summary_tolerates_missing_anchor() {
        let dir = std::env::temp_dir().join("dut_obs_align_noanchor");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plain.jsonl");
        std::fs::write(
            &path,
            format!(
                "{}\n",
                Event::new("span")
                    .with("name", "w")
                    .with("elapsed_us", 5u64)
                    .to_json_line()
            ),
        )
        .unwrap();
        let path = path.to_string_lossy().into_owned();
        let text = summarize_aligned(&[path.as_str()]).unwrap();
        assert!(text.contains("no anchor"), "{text}");
        assert!(text.contains("cannot share a time axis"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quantile_approximation() {
        // 10 values in bucket 8, 10 in bucket 64.
        let buckets = vec![(8u64, 10u64), (64, 10)];
        assert_eq!(approx_quantile(&buckets, 20, 0.5), 8);
        assert_eq!(approx_quantile(&buckets, 20, 0.9), 64);
    }
}
