//! Trace events and spans.

use crate::json;

/// A field value on a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Pre-serialized JSON, embedded verbatim (for nested payloads
    /// like metric snapshots or experiment configs).
    Raw(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One structured trace event.
///
/// Serialized as a single JSON Lines record:
/// `{"event":"<name>","ts_us":<t>,<fields...>}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event type name (e.g. `"span"`, `"probe"`, `"manifest"`).
    pub name: &'static str,
    /// Microseconds since the recorder's epoch (set at emit time).
    pub ts_micros: u64,
    /// Ordered key/value fields.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// A new event with no fields (timestamp is set by the recorder).
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            ts_micros: 0,
            fields: Vec::new(),
        }
    }

    /// Builder-style field append.
    #[must_use]
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Looks up a field by key.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find_map(|(k, v)| (*k == key).then_some(v))
    }

    /// Serializes to one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        out.push_str("{\"event\":");
        json::write_escaped(&mut out, self.name);
        out.push_str(",\"ts_us\":");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.ts_micros));
        for (key, value) in &self.fields {
            out.push(',');
            json::write_escaped(&mut out, key);
            out.push(':');
            match value {
                Value::U64(v) => {
                    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{v}"));
                }
                Value::I64(v) => {
                    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{v}"));
                }
                Value::F64(v) => json::write_f64(&mut out, *v),
                Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                Value::Str(s) => json::write_escaped(&mut out, s),
                Value::Raw(raw) => out.push_str(raw),
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn event_serializes_to_parseable_json() {
        let e = Event {
            ts_micros: 17,
            ..Event::new("probe")
        }
        .with("value", 64u64)
        .with("sufficient", true)
        .with("rate", 0.625)
        .with("rule", "and")
        .with("cfg", Value::Raw("{\"n\":8}".into()));
        let line = e.to_json_line();
        let parsed = crate::json::parse(&line).unwrap();
        assert_eq!(parsed.get("event").and_then(Json::as_str), Some("probe"));
        assert_eq!(parsed.get("ts_us").and_then(Json::as_u64), Some(17));
        assert_eq!(parsed.get("value").and_then(Json::as_u64), Some(64));
        assert_eq!(parsed.get("sufficient"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("rate").and_then(Json::as_f64), Some(0.625));
        assert_eq!(
            parsed
                .get("cfg")
                .and_then(|c| c.get("n"))
                .and_then(Json::as_u64),
            Some(8)
        );
    }

    #[test]
    fn field_lookup() {
        let e = Event::new("x").with("a", 1u64);
        assert_eq!(e.field("a"), Some(&Value::U64(1)));
        assert_eq!(e.field("b"), None);
    }
}
