//! Lock-free metrics: counters, gauges, and log-bucketed histograms.
//!
//! Metrics are the always-on half of the observability layer: every
//! well-known quantity (samples drawn, message bits, verdicts, search
//! probes, …) has a fixed slot in a global [`Registry`], updated with
//! relaxed atomics so the hot paths in `dut-simnet` and `dut-stats`
//! never contend on a lock. A [`snapshot`](Registry::snapshot) turns
//! the registry into plain data for trace sinks and `dut report`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Well-known counters, one fixed slot each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Protocol executions completed (`Network` and `FaultyNetwork`).
    NetRuns,
    /// Samples drawn across all players, summed over runs.
    SamplesDrawn,
    /// Message bits delivered to the referee.
    BitsSent,
    /// Referee accept verdicts.
    VerdictAccept,
    /// Referee reject verdicts.
    VerdictReject,
    /// Players that crashed before sending (fault injection).
    FaultsCrashed,
    /// Messages lost in transit (fault injection).
    FaultsMessagesLost,
    /// Redundant transmissions after the first attempt (recovery).
    FaultRetries,
    /// Delivered duplicate bits beyond each player's first copy; these
    /// are charged to the communication budget like first copies.
    FaultRedundantBits,
    /// Player bits corrupted by a Byzantine adversary.
    FaultByzantineFlips,
    /// Bits whose first transmission was lost but that a later
    /// redundant copy delivered (recovery successes).
    FaultRecoveredBits,
    /// Senders the referee never heard from after all retry attempts.
    FaultTimeouts,
    /// Monte-Carlo trials executed by `run_trials`/`run_measurements`.
    TrialsRun,
    /// Predicate evaluations spent inside `minimal_sufficient`.
    SearchProbes,
    /// Scaling-law fits computed by `dut-stats::sweep`.
    SweepFits,
    /// Occupancy histograms drawn via the conditional-binomial fast
    /// path (one per player per run under `SampleBackend::Histogram`).
    HistogramDraws,
    /// Calibration thresholds answered from the memoized cache.
    CalibrationCacheHits,
    /// Calibration thresholds computed fresh (cache misses).
    CalibrationCacheMisses,
    /// Verdict requests answered by `dut serve` (success or error).
    ServeRequests,
    /// Serve requests whose prepared tester came from the LRU cache.
    ServeCacheHits,
    /// Serve requests that had to prepare (calibrate) a fresh tester.
    ServeCacheMisses,
    /// Connections shed with an `overloaded` reply because the accept
    /// queue was at its bound.
    ServeShed,
    /// Request lines `dut serve` rejected as malformed before they
    /// reached the engine: unparseable JSON or over the per-line byte
    /// cap.
    ServeMalformed,
    /// Connections `dut serve` closed for failing to complete a
    /// request line within the idle timeout (idle-forever clients and
    /// slowloris writers alike).
    ServeReaped,
    /// Connections `dut serve` closed for exhausting their
    /// per-connection error budget (abusive clients looping on
    /// rejected requests).
    ServeErrorBudget,
    /// Request evaluations that panicked and were converted into a
    /// structured `internal` error reply instead of killing a worker.
    ServePanicsCaught,
    /// Served requests whose `Auto` backend resolved to the per-draw
    /// engine (cost model picked O(q log n) inversion).
    ServeBackendPerDraw,
    /// Served requests whose `Auto` backend resolved to the histogram
    /// engine (cost model picked O(n + q) stick-breaking).
    ServeBackendHistogram,
    /// Served requests answered as followers of a coalesced batch:
    /// they shared one prepared-tester resolution with the batch
    /// leader instead of taking the cache lock themselves.
    ServeCoalesced,
    /// Requests shed by per-tenant admission control (token-bucket
    /// quota exhausted) rather than by the global queue bound.
    ServeTenantShed,
    /// Hostile client actions injected by `dut loadgen --chaos`
    /// (slowloris writes, half-open connects, mid-frame disconnects,
    /// reconnect storms, garbage frames, …).
    ChaosInjected,
}

impl Counter {
    const COUNT: usize = 31;

    /// All counters, in slot order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::NetRuns,
        Counter::SamplesDrawn,
        Counter::BitsSent,
        Counter::VerdictAccept,
        Counter::VerdictReject,
        Counter::FaultsCrashed,
        Counter::FaultsMessagesLost,
        Counter::FaultRetries,
        Counter::FaultRedundantBits,
        Counter::FaultByzantineFlips,
        Counter::FaultRecoveredBits,
        Counter::FaultTimeouts,
        Counter::TrialsRun,
        Counter::SearchProbes,
        Counter::SweepFits,
        Counter::HistogramDraws,
        Counter::CalibrationCacheHits,
        Counter::CalibrationCacheMisses,
        Counter::ServeRequests,
        Counter::ServeCacheHits,
        Counter::ServeCacheMisses,
        Counter::ServeShed,
        Counter::ServeMalformed,
        Counter::ServeReaped,
        Counter::ServeErrorBudget,
        Counter::ServePanicsCaught,
        Counter::ServeBackendPerDraw,
        Counter::ServeBackendHistogram,
        Counter::ServeCoalesced,
        Counter::ServeTenantShed,
        Counter::ChaosInjected,
    ];

    /// The stable name used in trace snapshots.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::NetRuns => "net_runs",
            Counter::SamplesDrawn => "samples_drawn",
            Counter::BitsSent => "bits_sent",
            Counter::VerdictAccept => "verdict_accept",
            Counter::VerdictReject => "verdict_reject",
            Counter::FaultsCrashed => "faults_crashed",
            Counter::FaultsMessagesLost => "faults_messages_lost",
            Counter::FaultRetries => "fault_retries",
            Counter::FaultRedundantBits => "redundant_bits",
            Counter::FaultByzantineFlips => "byzantine_flips",
            Counter::FaultRecoveredBits => "recovered_bits",
            Counter::FaultTimeouts => "fault_timeouts",
            Counter::TrialsRun => "trials_run",
            Counter::SearchProbes => "search_probes",
            Counter::SweepFits => "sweep_fits",
            Counter::HistogramDraws => "histogram_draws",
            Counter::CalibrationCacheHits => "calibration_cache_hits",
            Counter::CalibrationCacheMisses => "calibration_cache_misses",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeCacheHits => "serve_cache_hits",
            Counter::ServeCacheMisses => "serve_cache_misses",
            Counter::ServeShed => "serve_shed",
            Counter::ServeMalformed => "serve_malformed",
            Counter::ServeReaped => "serve_reaped",
            Counter::ServeErrorBudget => "serve_error_budget",
            Counter::ServePanicsCaught => "serve_panics_caught",
            Counter::ServeBackendPerDraw => "serve_backend_per_draw",
            Counter::ServeBackendHistogram => "serve_backend_histogram",
            Counter::ServeCoalesced => "serve_coalesced",
            Counter::ServeTenantShed => "serve_tenant_shed",
            Counter::ChaosInjected => "chaos_injected",
        }
    }
}

/// Well-known gauges (last-written-wins values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Worker threads chosen by the most recent `run_trials` call.
    RunnerThreads,
    /// Sampling backend of the most recent count-based network run:
    /// 1 for `SampleBackend::PerDraw`, 2 for `SampleBackend::Histogram`
    /// (0 = no count-based run yet). Always the *resolved* engine —
    /// `Auto` (code 3) is resolved through the cost model before the
    /// run, so 3 appears only in configuration manifests.
    SamplingBackend,
    /// Requests waiting in the `dut serve` dispatch queue (sampled at
    /// each enqueue/dequeue). Written only while the queue lock is
    /// held, so the published depth always matches the queue it
    /// describes (the PR 6 gauge race).
    // dut-lint: guarded_by(queue)
    ServeQueueDepth,
    /// Persistent connections currently parked on the `dut serve`
    /// shard loops (accepted and not yet closed).
    ServeConnections,
}

impl Gauge {
    const COUNT: usize = 4;

    /// All gauges, in slot order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::RunnerThreads,
        Gauge::SamplingBackend,
        Gauge::ServeQueueDepth,
        Gauge::ServeConnections,
    ];

    /// The stable name used in trace snapshots.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gauge::RunnerThreads => "runner_threads",
            Gauge::SamplingBackend => "sampling_backend",
            Gauge::ServeQueueDepth => "serve_queue_depth",
            Gauge::ServeConnections => "serve_connections",
        }
    }
}

/// Well-known histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistogramId {
    /// Wall-clock microseconds of each `run_trials` worker batch.
    TrialBatchMicros,
    /// Wall-clock microseconds of each search probe.
    ProbeMicros,
    /// Samples drawn per protocol execution.
    RunSamples,
    /// Wall-clock microseconds per `dut serve` request (parse through
    /// reply write).
    RequestMicros,
    /// Microseconds a *request* waited in the `dut serve` dispatch
    /// queue between parse and worker pickup (the queue phase). Before
    /// the request-level scheduler this recorded whole-connection
    /// queueing, which inflated the p99 by the connection's lifetime.
    QueueWaitMicros,
    /// Microseconds spent preparing (calibrating) a tester on a
    /// `dut serve` cache miss (the calibrate phase).
    CalibrateMicros,
    /// Microseconds spent running a served request's trials against a
    /// resolved tester (the compute phase).
    ComputeMicros,
}

impl HistogramId {
    const COUNT: usize = 7;

    /// All histograms, in slot order.
    pub const ALL: [HistogramId; HistogramId::COUNT] = [
        HistogramId::TrialBatchMicros,
        HistogramId::ProbeMicros,
        HistogramId::RunSamples,
        HistogramId::RequestMicros,
        HistogramId::QueueWaitMicros,
        HistogramId::CalibrateMicros,
        HistogramId::ComputeMicros,
    ];

    /// The stable name used in trace snapshots.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HistogramId::TrialBatchMicros => "trial_batch_micros",
            HistogramId::ProbeMicros => "probe_micros",
            HistogramId::RunSamples => "run_samples",
            HistogramId::RequestMicros => "request_micros",
            HistogramId::QueueWaitMicros => "queue_wait_micros",
            HistogramId::CalibrateMicros => "calibrate_micros",
            HistogramId::ComputeMicros => "compute_micros",
        }
    }
}

/// Number of power-of-two buckets: bucket `b` holds values with
/// `bucket_index(v) == b`, i.e. `0`, then `[2^(b-1), 2^b)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index of a value: `0` for `0`, else `1 + floor(log2 v)`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The smallest value landing in bucket `index`.
#[must_use]
pub fn bucket_low(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

/// The largest value landing in bucket `index` (inclusive). Bucket 0
/// holds only the value 0, so its high edge equals its low edge.
#[must_use]
pub fn bucket_high(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// An interpolated quantile over `(bucket_low, count)` pairs from a
/// log-bucketed histogram (the shape [`Histogram::nonzero_buckets`]
/// and [`HistogramSnapshot::buckets`] produce).
///
/// The rank `ceil(p · count)` (clamped to `1..=count`) selects a
/// bucket; the estimate interpolates linearly across that bucket's
/// `[low, high]` span by the rank's position inside the bucket, so the
/// result is monotone in `p` and always bracketed by the bucket
/// bounds. When every observation landed in one bucket, `sum / count`
/// is the better estimator (exact whenever all observations share one
/// value), clamped to the bucket's bounds.
///
/// Returns 0.0 on an empty histogram.
#[must_use]
pub fn quantile_from_buckets(buckets: &[(u64, u64)], count: u64, sum: u64, p: f64) -> f64 {
    if count == 0 || buckets.is_empty() {
        return 0.0;
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_sign_loss,
        clippy::cast_possible_truncation
    )]
    let target = ((count as f64 * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64).min(count);
    if let [(low, n)] = buckets {
        if *n > 0 {
            // Single-bucket data: the mean is inside the bucket by
            // construction and exact when all observations are equal.
            #[allow(clippy::cast_precision_loss)]
            let mean = sum as f64 / *n as f64;
            let index = bucket_index(*low);
            #[allow(clippy::cast_precision_loss)]
            return mean.clamp(*low as f64, bucket_high(index) as f64);
        }
    }
    let mut seen = 0u64;
    for &(low, n) in buckets {
        if n == 0 {
            continue;
        }
        if seen + n >= target {
            let index = bucket_index(low);
            let (lo, hi) = (low, bucket_high(index));
            // Position of the target rank inside this bucket, mapped
            // to the bucket midpoints (rank r of n sits at fraction
            // (r - 1/2) / n), so the estimate never touches the next
            // bucket's low edge and stays monotone across buckets.
            #[allow(clippy::cast_precision_loss)]
            let frac = ((target - seen) as f64 - 0.5) / n as f64;
            #[allow(clippy::cast_precision_loss)]
            return lo as f64 + frac * (hi - lo) as f64;
        }
        seen += n;
    }
    #[allow(clippy::cast_precision_loss)]
    buckets.last().map_or(0.0, |&(low, _)| low as f64)
}

/// A log-bucketed histogram with atomic buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (all buckets zero).
    #[must_use]
    pub const fn new() -> Self {
        // `AtomicU64` is not Copy; build the array with a const block.
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Observation count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// An interpolated quantile of the recorded observations; see
    /// [`quantile_from_buckets`] for the estimator.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        quantile_from_buckets(&self.nonzero_buckets(), self.count(), self.sum(), p)
    }

    /// Non-empty buckets as `(bucket_low, count)` pairs.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_low(i), n))
            })
            .collect()
    }
}

/// The metrics registry: fixed atomic slots for every well-known
/// metric. All methods are `&self` and lock-free.
#[derive(Debug)]
pub struct Registry {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    histograms: [Histogram; HistogramId::COUNT],
}

impl Registry {
    /// An all-zero registry.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            counters: [const { AtomicU64::new(0) }; Counter::COUNT],
            gauges: [const { AtomicU64::new(0) }; Gauge::COUNT],
            histograms: [const { Histogram::new() }; HistogramId::COUNT],
        }
    }

    /// Adds `delta` to a counter.
    pub fn add(&self, counter: Counter, delta: u64) {
        self.counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Reads a counter.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, gauge: Gauge, value: u64) {
        self.gauges[gauge as usize].store(value, Ordering::Relaxed);
    }

    /// Reads a gauge.
    #[must_use]
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge as usize].load(Ordering::Relaxed)
    }

    /// Records a histogram observation.
    pub fn observe(&self, histogram: HistogramId, value: u64) {
        self.histograms[histogram as usize].record(value);
    }

    /// Access to a histogram's current state.
    #[must_use]
    pub fn histogram(&self, histogram: HistogramId) -> &Histogram {
        &self.histograms[histogram as usize]
    }

    /// A plain-data copy of every metric, for serialization.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: Counter::ALL
                .iter()
                .map(|&c| (c.name(), self.counter(c)))
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|&g| (g.name(), self.gauge(g)))
                .collect(),
            histograms: HistogramId::ALL
                .iter()
                .map(|&h| {
                    let hist = self.histogram(h);
                    HistogramSnapshot {
                        name: h.name(),
                        count: hist.count(),
                        sum: hist.sum(),
                        buckets: hist.nonzero_buckets(),
                    }
                })
                .collect(),
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain-data view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Stable metric name.
    pub name: &'static str,
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// `(bucket_low, count)` pairs for non-empty buckets.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// An interpolated quantile of the captured observations; see
    /// [`quantile_from_buckets`] for the estimator.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        quantile_from_buckets(&self.buckets, self.count, self.sum, p)
    }

    /// The observations this snapshot has beyond `earlier` (bucket-wise
    /// saturating subtraction). With `earlier` a prefix of the same
    /// metric's history, the delta is exactly the observations recorded
    /// between the two snapshots.
    #[must_use]
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let base: std::collections::BTreeMap<u64, u64> = earlier.buckets.iter().copied().collect();
        HistogramSnapshot {
            name: self.name,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: self
                .buckets
                .iter()
                .filter_map(|&(low, n)| {
                    let left = n.saturating_sub(base.get(&low).copied().unwrap_or(0));
                    (left > 0).then_some((low, left))
                })
                .collect(),
        }
    }
}

/// Plain-data view of the whole registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(&'static str, u64)>,
    /// Histogram summaries.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// An all-zero snapshot with every well-known metric name present
    /// (the identity element of [`Snapshot::delta`]).
    #[must_use]
    pub fn zero() -> Snapshot {
        Registry::new().snapshot()
    }

    /// A named counter's value (0 when absent).
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        let name = counter.name();
        self.counters
            .iter()
            .find_map(|&(n, v)| (n == name).then_some(v))
            .unwrap_or(0)
    }

    /// A named gauge's value (0 when absent).
    #[must_use]
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        let name = gauge.name();
        self.gauges
            .iter()
            .find_map(|&(n, v)| (n == name).then_some(v))
            .unwrap_or(0)
    }

    /// A named histogram's summary, if present.
    #[must_use]
    pub fn histogram(&self, histogram: HistogramId) -> Option<&HistogramSnapshot> {
        let name = histogram.name();
        self.histograms.iter().find(|h| h.name == name)
    }

    /// What this snapshot accumulated beyond `earlier`: counters and
    /// histograms subtract (saturating, element-wise), gauges keep this
    /// snapshot's (latest) value — a gauge is a level, not a flow.
    ///
    /// With `earlier` captured before `self` on the same registry, the
    /// delta is exactly the activity between the two captures; this is
    /// what the windowed-metrics ring serves.
    #[must_use]
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let base_counter = |name: &str| -> u64 {
            earlier
                .counters
                .iter()
                .find_map(|&(n, v)| (n == name).then_some(v))
                .unwrap_or(0)
        };
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|&(name, v)| (name, v.saturating_sub(base_counter(name))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|h| {
                    earlier
                        .histograms
                        .iter()
                        .find(|e| e.name == h.name)
                        .map_or_else(|| h.clone(), |e| h.delta(e))
                })
                .collect(),
        }
    }
}

static GLOBAL: Registry = Registry::new();

/// The process-wide registry used by instrumented crates.
#[must_use]
pub fn global() -> &'static Registry {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..HISTOGRAM_BUCKETS {
            // Every bucket's low edge maps back to that bucket.
            assert_eq!(bucket_index(bucket_low(i)), i, "bucket {i}");
            // One below the low edge lands strictly lower.
            assert!(bucket_index(bucket_low(i) - 1) < i, "bucket {i}");
        }
    }

    #[test]
    fn histogram_accumulates() {
        let h = Histogram::new();
        for v in [0, 1, 1, 3, 8, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 22);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 2), (2, 1), (8, 2)]);
    }

    #[test]
    fn registry_counters_and_gauges() {
        let r = Registry::new();
        r.incr(Counter::NetRuns);
        r.add(Counter::SamplesDrawn, 40);
        assert_eq!(r.counter(Counter::NetRuns), 1);
        assert_eq!(r.counter(Counter::SamplesDrawn), 40);
        r.set_gauge(Gauge::RunnerThreads, 8);
        assert_eq!(r.gauge(Gauge::RunnerThreads), 8);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let r = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        r.incr(Counter::TrialsRun);
                        r.observe(HistogramId::RunSamples, 5);
                    }
                });
            }
        });
        assert_eq!(r.counter(Counter::TrialsRun), 80_000);
        assert_eq!(r.histogram(HistogramId::RunSamples).count(), 80_000);
        assert_eq!(r.histogram(HistogramId::RunSamples).sum(), 400_000);
    }

    #[test]
    fn bucket_high_meets_next_low() {
        assert_eq!(bucket_high(0), 0);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_high(i) + 1, bucket_low(i + 1), "bucket {i}");
            assert_eq!(bucket_index(bucket_high(i)), i, "bucket {i}");
        }
        assert_eq!(bucket_high(64), u64::MAX);
    }

    #[test]
    fn quantile_is_exact_on_constant_data() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(37);
        }
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert!((h.quantile(p) - 37.0).abs() < 1e-9, "p={p}");
        }
        let zeros = Histogram::new();
        zeros.record(0);
        zeros.record(0);
        assert!(zeros.quantile(0.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_monotone_and_bracketed() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 10, 20, 100, 1000, 5000] {
            h.record(v);
        }
        let mut last = f64::MIN;
        for i in 0..=20 {
            let p = f64::from(i) / 20.0;
            let q = h.quantile(p);
            assert!(q >= last, "quantile not monotone at p={p}: {q} < {last}");
            assert!((0.0..=8192.0).contains(&q), "out of range at p={p}: {q}");
            last = q;
        }
        // The 4th of 8 sorted values is 10, inside the [8,15] bucket.
        let p50 = h.quantile(0.5);
        assert!((8.0..=15.0).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn empty_quantile_is_zero() {
        let h = Histogram::new();
        assert!(h.quantile(0.5).abs() < 1e-9);
        assert!(quantile_from_buckets(&[], 0, 0, 0.5).abs() < 1e-9);
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_histograms() {
        let r = Registry::new();
        r.add(Counter::ServeRequests, 5);
        r.observe(HistogramId::RequestMicros, 10);
        r.set_gauge(Gauge::ServeQueueDepth, 2);
        let earlier = r.snapshot();
        r.add(Counter::ServeRequests, 7);
        r.observe(HistogramId::RequestMicros, 10);
        r.observe(HistogramId::RequestMicros, 500);
        r.set_gauge(Gauge::ServeQueueDepth, 9);
        let delta = r.snapshot().delta(&earlier);
        assert_eq!(delta.counter(Counter::ServeRequests), 7);
        // Gauges are levels: the delta keeps the latest value.
        assert_eq!(delta.gauge(Gauge::ServeQueueDepth), 9);
        let hist = delta.histogram(HistogramId::RequestMicros).unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 510);
        assert_eq!(hist.buckets, vec![(8, 1), (256, 1)]);
        // Delta against itself is empty.
        let snap = r.snapshot();
        let none = snap.delta(&snap);
        assert_eq!(none.counter(Counter::ServeRequests), 0);
        assert_eq!(none.histogram(HistogramId::RequestMicros).unwrap().count, 0);
    }

    #[test]
    fn snapshot_carries_all_names() {
        let r = Registry::new();
        r.add(Counter::BitsSent, 3);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), Counter::ALL.len());
        assert!(snap.counters.contains(&("bits_sent", 3)));
        assert_eq!(snap.histograms.len(), HistogramId::ALL.len());
    }
}
