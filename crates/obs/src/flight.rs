//! Flight recorder: a fixed-capacity ring of the most recent trace
//! events, kept in memory so the moments *before* an incident are
//! recoverable after the fact.
//!
//! JSONL sinks answer "what happened over the whole run"; the flight
//! recorder answers "what happened in the last few hundred events
//! before the queue started shedding". It is a [`Sink`] like any
//! other — installed alongside the file sink, it sees every event the
//! recorder emits — but it retains only the newest `capacity` events
//! in a mutex-guarded deque (events arrive already rate-limited by
//! trace sampling, so a short lock is cheap relative to emit cost).
//!
//! Two read paths:
//!
//! * [`FlightRecorder::dump_json`] — on-demand, serving the serve
//!   protocol's `{"cmd":"flight"}`.
//! * [`FlightRecorder::dump_event`] — packages the ring as a single
//!   `flight_dump` trace event for automatic dumps (e.g. on a shed
//!   burst), so the incident context lands in the offline trace too.
//!
//! The recorder never records `flight_dump` events into its own ring:
//! a dump embedding a dump embedding a dump would otherwise grow
//! quadratically on repeated bursts.

use crate::sink::Sink;
use crate::trace::{Event, Value};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

/// Default ring capacity.
pub const DEFAULT_CAPACITY: usize = 256;

/// Name of the synthetic event produced by [`FlightRecorder::dump_event`].
pub const DUMP_EVENT: &str = "flight_dump";

/// A fixed-capacity in-memory ring of recent trace events.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<Event>>,
}

impl FlightRecorder {
    /// A ring holding at most `capacity` events (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.ring.lock().iter().cloned().collect()
    }

    /// The ring serialized as one JSON array of event objects,
    /// oldest first.
    #[must_use]
    pub fn dump_json(&self) -> String {
        let ring = self.ring.lock();
        let mut out = String::with_capacity(ring.len() * 96 + 2);
        out.push('[');
        for (i, event) in ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event.to_json_line());
        }
        out.push(']');
        out
    }

    /// Packages the current ring as a single `flight_dump` event,
    /// tagged with `reason`, embedding the events as raw JSON. The
    /// caller emits it through the recorder so it reaches file sinks.
    #[must_use]
    pub fn dump_event(&self, reason: &'static str) -> Event {
        let payload = self.dump_json();
        Event::new(DUMP_EVENT)
            .with("reason", reason)
            .with("retained", self.len())
            .with("events", Value::Raw(payload))
    }
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl Sink for FlightRecorder {
    fn record(&self, event: &Event) {
        // Never retain our own dumps: each embeds the whole ring.
        if event.name == DUMP_EVENT {
            return;
        }
        let mut ring = self.ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(event.clone());
    }
}

/// The process-wide flight recorder, created on first use. `dut
/// serve` installs this as a sink at startup; the stats plane reads
/// it back for `{"cmd":"flight"}`.
pub fn global() -> &'static Arc<FlightRecorder> {
    static GLOBAL: OnceLock<Arc<FlightRecorder>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(FlightRecorder::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};

    #[test]
    fn ring_keeps_newest_events() {
        let flight = FlightRecorder::new(3);
        for i in 0..5u64 {
            flight.record(&Event::new("tick").with("i", i));
        }
        assert_eq!(flight.len(), 3);
        let events = flight.events();
        assert_eq!(events[0].field("i"), Some(&Value::U64(2)));
        assert_eq!(events[2].field("i"), Some(&Value::U64(4)));
    }

    #[test]
    fn dump_json_is_a_parseable_array() {
        let flight = FlightRecorder::new(8);
        flight.record(&Event::new("a").with("x", 1u64));
        flight.record(&Event::new("b").with("y", "two"));
        let parsed = json::parse(&flight.dump_json()).unwrap();
        let Json::Arr(items) = parsed else {
            panic!("expected array");
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("event").and_then(Json::as_str), Some("a"));
        assert_eq!(items[1].get("y").and_then(Json::as_str), Some("two"));
    }

    #[test]
    fn empty_dump_is_empty_array() {
        let flight = FlightRecorder::new(4);
        assert_eq!(flight.dump_json(), "[]");
        assert!(flight.is_empty());
    }

    #[test]
    fn own_dumps_are_not_retained() {
        let flight = FlightRecorder::new(4);
        flight.record(&Event::new("real"));
        let dump = flight.dump_event("test");
        flight.record(&dump);
        assert_eq!(flight.len(), 1, "flight_dump must not re-enter the ring");
        // The dump itself is a valid event embedding the ring.
        assert_eq!(dump.field("reason"), Some(&Value::Str("test".into())));
        assert_eq!(dump.field("retained"), Some(&Value::U64(1)));
        let line = dump.to_json_line();
        let parsed = json::parse(&line).unwrap();
        let events = parsed.get("events").unwrap();
        let Json::Arr(items) = events else {
            panic!("expected embedded array");
        };
        assert_eq!(items[0].get("event").and_then(Json::as_str), Some("real"));
    }

    #[test]
    fn capacity_is_clamped() {
        let flight = FlightRecorder::new(0);
        flight.record(&Event::new("only"));
        flight.record(&Event::new("newer"));
        assert_eq!(flight.len(), 1);
        assert_eq!(flight.events()[0].name, "newer");
        assert_eq!(flight.capacity(), 1);
    }
}
