//! Pluggable trace sinks.

use crate::trace::Event;
use parking_lot::Mutex;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;

/// Receives every emitted trace event.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output.
    fn flush(&self) {}
}

/// In-memory sink for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of all recorded events.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Drains and returns all recorded events.
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock())
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

/// Writes events as JSON Lines to a file (one object per line).
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file, making parent directories
    /// as needed.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory or file creation.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Self {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = event.to_json_line();
        let mut writer = self.writer.lock();
        // Trace output is best-effort; losing a line must never panic
        // the instrumented experiment.
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.lock().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_stores_events() {
        let sink = MemorySink::new();
        sink.record(&Event::new("a").with("x", 1u64));
        sink.record(&Event::new("b"));
        assert_eq!(sink.len(), 2);
        let events = sink.take();
        assert_eq!(events[0].name, "a");
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let dir = std::env::temp_dir().join("dut_obs_sink_test");
        let path = dir.join("trace.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&Event::new("one").with("v", 1u64));
        sink.record(&Event::new("two").with("v", 2u64));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"one\""));
        crate::json::parse(lines[1]).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
