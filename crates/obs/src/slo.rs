//! SLO tracking with multi-window burn rates.
//!
//! An SLO here is two targets on the serve plane: a p99 latency bound
//! ("99% of requests complete under T µs") and a shed-rate bound
//! ("at most a fraction S of arrivals are shed"). Each implies an
//! error budget — 1% of requests may exceed T, a fraction S may be
//! shed — and the *burn rate* is how fast that budget is being spent:
//! burn 1.0 consumes exactly the budget, burn 10.0 consumes it ten
//! times too fast.
//!
//! Alerting on a single window is either noisy (short window: one
//! slow request trips it) or sluggish (long window: a real incident
//! takes minutes to surface). The standard fix is to require the burn
//! to exceed the threshold over a **short and a long window
//! simultaneously**: the long window proves the problem is sustained,
//! the short window proves it is still happening. [`evaluate`] takes
//! one windowed [`Snapshot`] delta per window (produced by
//! [`window::SnapshotRing::window`](crate::window::SnapshotRing::window))
//! and applies exactly that rule.

use crate::metrics::{
    bucket_high, bucket_index, Counter, HistogramId, HistogramSnapshot, Snapshot,
};

/// Configured service-level objectives for the serve plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// p99 latency target in microseconds: 99% of requests should
    /// complete faster than this.
    pub p99_target_micros: u64,
    /// Maximum acceptable fraction of arrivals shed for overload.
    pub max_shed_rate: f64,
    /// Burn-rate multiple above which a window is considered burning
    /// (1.0 = spending budget exactly at the sustainable rate).
    pub burn_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            p99_target_micros: 250_000,
            max_shed_rate: 0.05,
            burn_threshold: 2.0,
        }
    }
}

/// Error-budget burn rates measured over one window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowBurn {
    /// Latency-budget burn: (fraction of requests above target) / 1%.
    pub latency_burn: f64,
    /// Shed-budget burn: (shed fraction of arrivals) / `max_shed_rate`.
    pub shed_burn: f64,
}

/// The SLO verdict across both windows.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloStatus {
    /// Burn rates over the short window.
    pub short: WindowBurn,
    /// Burn rates over the long window.
    pub long: WindowBurn,
    /// Latency burn exceeds the threshold in *both* windows.
    pub latency_breach: bool,
    /// Shed burn exceeds the threshold in *both* windows.
    pub shed_breach: bool,
}

impl SloStatus {
    /// Whether no objective is currently breached.
    #[must_use]
    pub fn healthy(&self) -> bool {
        !self.latency_breach && !self.shed_breach
    }
}

/// Estimated fraction of observations strictly above `threshold`,
/// from log-bucket occupancy. Buckets entirely above count in full;
/// the bucket straddling the threshold contributes linearly by how
/// much of its span lies above.
#[must_use]
pub fn fraction_above(hist: &HistogramSnapshot, threshold: u64) -> f64 {
    if hist.count == 0 {
        return 0.0;
    }
    let mut above = 0.0f64;
    for &(low, n) in &hist.buckets {
        if n == 0 {
            continue;
        }
        let high = bucket_high(bucket_index(low));
        #[allow(clippy::cast_precision_loss)]
        if low > threshold {
            above += n as f64;
        } else if high > threshold {
            let span = (high - low).max(1) as f64;
            let frac = (high - threshold) as f64 / span;
            above += n as f64 * frac;
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let count = hist.count as f64;
    (above / count).clamp(0.0, 1.0)
}

/// Burn rates for one windowed snapshot delta.
#[must_use]
pub fn window_burn(delta: &Snapshot, config: &SloConfig) -> WindowBurn {
    let latency_burn = delta
        .histogram(HistogramId::RequestMicros)
        .map_or(0.0, |hist| {
            // p99 objective → 1% error budget.
            fraction_above(hist, config.p99_target_micros) / 0.01
        });
    let served = delta.counter(Counter::ServeRequests);
    let shed = delta.counter(Counter::ServeShed);
    let arrivals = served + shed;
    let shed_burn = if arrivals == 0 || config.max_shed_rate <= 0.0 {
        0.0
    } else {
        #[allow(clippy::cast_precision_loss)]
        let shed_frac = shed as f64 / arrivals as f64;
        shed_frac / config.max_shed_rate
    };
    WindowBurn {
        latency_burn,
        shed_burn,
    }
}

/// Evaluates the SLO over a short and a long windowed delta. A
/// breach requires the burn threshold to be exceeded in both windows.
#[must_use]
pub fn evaluate(short: &Snapshot, long: &Snapshot, config: &SloConfig) -> SloStatus {
    let short = window_burn(short, config);
    let long = window_burn(long, config);
    let over = |burn: f64| burn > config.burn_threshold;
    SloStatus {
        short,
        long,
        latency_breach: over(short.latency_burn) && over(long.latency_burn),
        shed_breach: over(short.shed_burn) && over(long.shed_burn),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Gauge, HistogramId, Registry};

    fn snapshot_with(requests: u64, shed: u64, latencies: &[u64]) -> Snapshot {
        let reg = Registry::new();
        reg.add(Counter::ServeRequests, requests);
        reg.add(Counter::ServeShed, shed);
        for &v in latencies {
            reg.observe(HistogramId::RequestMicros, v);
        }
        reg.snapshot()
    }

    #[test]
    fn fraction_above_counts_high_buckets() {
        let snap = snapshot_with(4, 0, &[10, 10, 1_000_000, 1_000_000]);
        let hist = snap.histogram(HistogramId::RequestMicros).unwrap();
        let frac = fraction_above(hist, 250_000);
        assert!((frac - 0.5).abs() < 0.2, "roughly half above: {frac}");
        assert!(fraction_above(hist, u64::MAX - 1).abs() < 1e-9);
        assert!((fraction_above(hist, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn healthy_service_does_not_breach() {
        let config = SloConfig::default();
        let snap = snapshot_with(100, 0, &[1_000; 100]);
        let status = evaluate(&snap, &snap, &config);
        assert!(status.healthy());
        assert!(status.short.latency_burn.abs() < 1e-9);
        assert!(status.short.shed_burn.abs() < 1e-9);
    }

    #[test]
    fn sustained_slow_requests_breach_latency() {
        let config = SloConfig::default();
        // Every request blows the 250 ms target → burn 100×.
        let snap = snapshot_with(10, 0, &[2_000_000; 10]);
        let status = evaluate(&snap, &snap, &config);
        assert!(status.latency_breach);
        assert!(!status.shed_breach);
        assert!(status.short.latency_burn > 50.0);
    }

    #[test]
    fn breach_requires_both_windows() {
        let config = SloConfig::default();
        let bad = snapshot_with(10, 0, &[2_000_000; 10]);
        let good = snapshot_with(1000, 0, &[1_000; 100]);
        // Short spike, calm long window: no alert.
        assert!(evaluate(&bad, &good, &config).healthy());
        // Old incident, now recovered: no alert.
        assert!(evaluate(&good, &bad, &config).healthy());
    }

    #[test]
    fn shed_burst_breaches_shed_budget() {
        let config = SloConfig::default();
        // Half the arrivals shed against a 5% budget → burn 10×.
        let snap = snapshot_with(50, 50, &[1_000; 50]);
        let status = evaluate(&snap, &snap, &config);
        assert!(status.shed_breach);
        assert!((status.short.shed_burn - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_healthy() {
        let config = SloConfig::default();
        let empty = Registry::new().snapshot();
        let status = evaluate(&empty, &empty, &config);
        assert!(status.healthy());
        // A gauge-only snapshot is also quiet.
        let reg = Registry::new();
        reg.set_gauge(Gauge::ServeQueueDepth, 5);
        let status = evaluate(&reg.snapshot(), &empty, &config);
        assert!(status.healthy());
    }
}
