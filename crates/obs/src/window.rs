//! Windowed metrics: rates and quantiles over the last N seconds.
//!
//! The [`metrics::Registry`](crate::metrics::Registry) is cumulative
//! since boot, which is the right shape for the hot path (one relaxed
//! atomic per event) but useless for "what is the req/s *right now*".
//! A [`SnapshotRing`] closes the gap without touching the hot path:
//! once per epoch (default 1 s) some caller — the serve engine on a
//! request, or the stats command itself — invokes
//! [`SnapshotRing::maybe_capture`], which stores a full cumulative
//! [`Snapshot`] into a fixed ring. A windowed view is then just
//! `live − base` where `base` is the newest stored snapshot at or
//! before `now − window`, computed with [`Snapshot::delta`].
//!
//! This is the streaming-literature trade: bounded memory (`slots`
//! snapshots, a few KB each), one pass, and answers that are exact at
//! epoch granularity. Writers never see the ring; readers pay one
//! relaxed load on the fast path and a short mutex only when an epoch
//! boundary is actually crossed.

use crate::metrics::{Registry, Snapshot};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Default epoch width: one second.
pub const DEFAULT_EPOCH_MICROS: u64 = 1_000_000;
/// Default ring capacity: two minutes of one-second epochs.
pub const DEFAULT_SLOTS: usize = 128;

#[derive(Debug, Clone)]
struct EpochSnapshot {
    at_micros: u64,
    snapshot: Snapshot,
}

/// A fixed ring of cumulative snapshots, one per elapsed epoch.
#[derive(Debug)]
pub struct SnapshotRing {
    epoch_micros: u64,
    slots: usize,
    /// Epoch index of the most recent capture; the lock-free fast
    /// path of [`maybe_capture`](SnapshotRing::maybe_capture).
    last_epoch: AtomicU64,
    ring: Mutex<VecDeque<EpochSnapshot>>,
}

impl SnapshotRing {
    /// A ring of `slots` epochs, each `epoch_micros` wide. The ring
    /// is seeded with an all-zero snapshot at time 0 so early windows
    /// fall back to "since boot" rather than reporting nothing.
    #[must_use]
    pub fn new(epoch_micros: u64, slots: usize) -> SnapshotRing {
        let mut ring = VecDeque::with_capacity(slots.max(2));
        ring.push_back(EpochSnapshot {
            at_micros: 0,
            snapshot: Snapshot::zero(),
        });
        SnapshotRing {
            epoch_micros: epoch_micros.max(1),
            slots: slots.max(2),
            last_epoch: AtomicU64::new(0),
            ring: Mutex::new(ring),
        }
    }

    /// The configured epoch width in microseconds.
    #[must_use]
    pub fn epoch_micros(&self) -> u64 {
        self.epoch_micros
    }

    /// Captures a snapshot of `registry` if `now_micros` has crossed
    /// into a new epoch since the last capture. Returns whether a
    /// capture happened. Cheap to call on every request: the common
    /// case is one relaxed load and a compare.
    pub fn maybe_capture(&self, registry: &Registry, now_micros: u64) -> bool {
        let epoch = now_micros / self.epoch_micros;
        if epoch <= self.last_epoch.load(Ordering::Relaxed) {
            return false;
        }
        let mut ring = self.ring.lock();
        // Re-check under the lock: another thread may have captured
        // this epoch while we waited.
        if epoch <= self.last_epoch.load(Ordering::Relaxed) {
            return false;
        }
        ring.push_back(EpochSnapshot {
            at_micros: now_micros,
            snapshot: registry.snapshot(),
        });
        while ring.len() > self.slots {
            ring.pop_front();
        }
        self.last_epoch.store(epoch, Ordering::Relaxed);
        true
    }

    /// The delta over (at most) the trailing `window_micros`, ending
    /// now: a live snapshot of `registry` minus the newest stored
    /// snapshot at or before `now_micros − window_micros`. Returns
    /// the delta and the actual span it covers in microseconds (which
    /// is shorter than requested early in the process lifetime, and
    /// never longer than the ring's reach).
    #[must_use]
    pub fn window(
        &self,
        registry: &Registry,
        now_micros: u64,
        window_micros: u64,
    ) -> WindowedDelta {
        let cutoff = now_micros.saturating_sub(window_micros);
        let live = registry.snapshot();
        let ring = self.ring.lock();
        // Newest snapshot at or before the cutoff; if every stored
        // snapshot is newer than the cutoff (ring already trimmed),
        // fall back to the oldest one we still have.
        let base = ring
            .iter()
            .rev()
            .find(|s| s.at_micros <= cutoff)
            .or_else(|| ring.front())
            .cloned();
        drop(ring);
        match base {
            Some(base) => WindowedDelta {
                delta: live.delta(&base.snapshot),
                span_micros: now_micros.saturating_sub(base.at_micros),
            },
            None => WindowedDelta {
                delta: live,
                span_micros: now_micros,
            },
        }
    }

    /// Number of snapshots currently stored (including the zero seed).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether the ring holds no snapshots (never true in practice:
    /// the constructor seeds one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SnapshotRing {
    fn default() -> SnapshotRing {
        SnapshotRing::new(DEFAULT_EPOCH_MICROS, DEFAULT_SLOTS)
    }
}

/// A windowed metrics view: the counter/histogram delta over the
/// span, plus how long the span actually is.
#[derive(Debug, Clone)]
pub struct WindowedDelta {
    /// Metric deltas over the span (gauges keep their latest value).
    pub delta: Snapshot,
    /// The span the delta covers, in microseconds.
    pub span_micros: u64,
}

impl WindowedDelta {
    /// A counter's per-second rate over the span.
    #[must_use]
    pub fn rate_per_sec(&self, counter: crate::metrics::Counter) -> f64 {
        if self.span_micros == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let events = self.delta.counter(counter) as f64;
        #[allow(clippy::cast_precision_loss)]
        let secs = self.span_micros as f64 / 1e6;
        events / secs
    }
}

/// The process-wide ring used by `dut serve`, with default geometry.
pub fn global() -> &'static SnapshotRing {
    static GLOBAL: OnceLock<SnapshotRing> = OnceLock::new();
    GLOBAL.get_or_init(SnapshotRing::default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Gauge, HistogramId};

    const SEC: u64 = 1_000_000;

    #[test]
    fn capture_happens_once_per_epoch() {
        let ring = SnapshotRing::new(SEC, 8);
        let reg = Registry::new();
        assert!(ring.maybe_capture(&reg, SEC));
        assert!(!ring.maybe_capture(&reg, SEC + 1000));
        assert!(!ring.maybe_capture(&reg, SEC + 999_999));
        assert!(ring.maybe_capture(&reg, 2 * SEC));
        assert_eq!(ring.len(), 3); // zero seed + two captures
    }

    #[test]
    fn window_reports_only_recent_activity() {
        let ring = SnapshotRing::new(SEC, 8);
        let reg = Registry::new();
        reg.add(Counter::ServeRequests, 100);
        assert!(ring.maybe_capture(&reg, 10 * SEC));
        reg.add(Counter::ServeRequests, 7);
        reg.observe(HistogramId::RequestMicros, 40);
        let w = ring.window(&reg, 12 * SEC, 2 * SEC);
        // The 100 old requests sit behind the 10 s snapshot; only the
        // 7 recent ones are in the 2 s window.
        assert_eq!(w.delta.counter(Counter::ServeRequests), 7);
        assert_eq!(w.span_micros, 2 * SEC);
        assert!((w.rate_per_sec(Counter::ServeRequests) - 3.5).abs() < 1e-9);
        let hist = w.delta.histogram(HistogramId::RequestMicros).unwrap();
        assert_eq!(hist.count, 1);
    }

    #[test]
    fn expired_epochs_stop_contributing() {
        let ring = SnapshotRing::new(SEC, 8);
        let reg = Registry::new();
        // A burst at t=1s…3s, then silence.
        reg.add(Counter::ServeShed, 50);
        assert!(ring.maybe_capture(&reg, SEC));
        reg.add(Counter::ServeShed, 5);
        assert!(ring.maybe_capture(&reg, 3 * SEC));
        // At t=20s a 5-second window no longer covers the burst.
        let w = ring.window(&reg, 20 * SEC, 5 * SEC);
        assert_eq!(w.delta.counter(Counter::ServeShed), 0);
        // Whereas a since-boot-sized window still sees everything.
        let all = ring.window(&reg, 20 * SEC, 60 * SEC);
        assert_eq!(all.delta.counter(Counter::ServeShed), 55);
    }

    #[test]
    fn ring_is_bounded_and_falls_back_to_oldest() {
        let ring = SnapshotRing::new(SEC, 4);
        let reg = Registry::new();
        for t in 1..=10u64 {
            reg.add(Counter::ServeRequests, 1);
            assert!(ring.maybe_capture(&reg, t * SEC));
        }
        assert_eq!(ring.len(), 4);
        // Asking for a window wider than the ring's reach clamps to
        // the oldest retained snapshot (t=7s, 7 requests seen).
        let w = ring.window(&reg, 10 * SEC, 60 * SEC);
        assert_eq!(w.delta.counter(Counter::ServeRequests), 3);
        assert_eq!(w.span_micros, 3 * SEC);
    }

    #[test]
    fn gauges_pass_through_latest_value() {
        let ring = SnapshotRing::new(SEC, 8);
        let reg = Registry::new();
        reg.set_gauge(Gauge::ServeQueueDepth, 3);
        assert!(ring.maybe_capture(&reg, SEC));
        reg.set_gauge(Gauge::ServeQueueDepth, 9);
        let w = ring.window(&reg, 2 * SEC, 10 * SEC);
        assert_eq!(w.delta.gauge(Gauge::ServeQueueDepth), 9);
    }

    #[test]
    fn concurrent_capture_is_single_flight() {
        let ring = SnapshotRing::new(SEC, 8);
        let reg = Registry::new();
        let captures = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    if ring.maybe_capture(&reg, 5 * SEC) {
                        captures.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(captures.load(Ordering::Relaxed), 1);
        assert_eq!(ring.len(), 2);
    }
}
