//! The recorder: routes events to sinks, tracks spans, and owns the
//! enabled/verbosity fast-path flags.

use crate::metrics;
use crate::sink::{JsonlSink, Sink};
use crate::trace::{Event, Value};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A cheap, cloneable handle to the tracing pipeline.
///
/// With no sinks installed every `emit_with` / `span` call reduces to
/// one relaxed atomic load (plus an `Instant::now` for spans), so
/// instrumented hot paths cost near-zero when tracing is off.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    enabled: AtomicBool,
    verbose: AtomicBool,
    sinks: RwLock<Vec<Arc<dyn Sink>>>,
    epoch: Instant,
}

impl std::fmt::Debug for dyn Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sink")
    }
}

impl Recorder {
    /// A disabled recorder with no sinks.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(false),
                verbose: AtomicBool::new(false),
                sinks: RwLock::new(Vec::new()),
                epoch: Instant::now(),
            }),
        }
    }

    /// Whether any sink is installed (the fast-path check).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Whether per-execution (high-volume) events should be emitted.
    #[must_use]
    pub fn is_verbose(&self) -> bool {
        self.inner.verbose.load(Ordering::Relaxed)
    }

    /// Enables or disables per-execution events.
    pub fn set_verbose(&self, verbose: bool) {
        self.inner.verbose.store(verbose, Ordering::Relaxed);
    }

    /// Installs a sink and enables the recorder.
    pub fn install_sink(&self, sink: Arc<dyn Sink>) {
        self.inner.sinks.write().push(sink);
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Removes all sinks and disables the recorder (mainly for tests).
    pub fn clear_sinks(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
        self.inner.sinks.write().clear();
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        for sink in self.inner.sinks.read().iter() {
            sink.flush();
        }
    }

    /// Microseconds since this recorder was created.
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Emits an event (timestamping it) if any sink is installed.
    pub fn emit(&self, event: Event) {
        if !self.is_enabled() {
            return;
        }
        self.emit_now(event);
    }

    /// Emits lazily: `build` runs only when a sink is installed, so
    /// disabled tracing pays no field formatting.
    pub fn emit_with(&self, build: impl FnOnce() -> Event) {
        if !self.is_enabled() {
            return;
        }
        self.emit_now(build());
    }

    /// Like [`emit_with`](Self::emit_with), but only at verbose level
    /// (per-execution events).
    pub fn emit_verbose_with(&self, build: impl FnOnce() -> Event) {
        if !self.is_enabled() || !self.is_verbose() {
            return;
        }
        self.emit_now(build());
    }

    fn emit_now(&self, mut event: Event) {
        event.ts_micros = self.now_micros();
        for sink in self.inner.sinks.read().iter() {
            sink.record(&event);
        }
    }

    /// Starts a span; its wall time is recorded as a `"span"` event
    /// when the returned guard drops.
    #[must_use]
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            recorder: self.clone(),
            name,
            fields: Vec::new(),
            start: Instant::now(),
        }
    }

    /// Emits a `"metrics"` snapshot event of the global registry.
    pub fn emit_metrics_snapshot(&self) {
        self.emit_with(|| snapshot_event(&metrics::global().snapshot()));
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII guard measuring one span; see [`Recorder::span`].
#[derive(Debug)]
pub struct Span {
    recorder: Recorder,
    name: &'static str,
    fields: Vec<(&'static str, Value)>,
    start: Instant,
}

impl Span {
    /// Attaches a field to the span's closing event.
    #[must_use]
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.recorder.is_enabled() {
            return;
        }
        let elapsed = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut event = Event::new("span")
            .with("name", self.name)
            .with("elapsed_us", elapsed);
        event.fields.append(&mut self.fields);
        self.recorder.emit_now(event);
    }
}

/// Builds the `"metrics"` event from a registry snapshot.
#[must_use]
pub fn snapshot_event(snapshot: &metrics::Snapshot) -> Event {
    use std::fmt::Write as _;
    let mut counters = String::from("{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            counters.push(',');
        }
        let _ = write!(counters, "\"{name}\":{value}");
    }
    counters.push('}');

    let mut gauges = String::from("{");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            gauges.push(',');
        }
        let _ = write!(gauges, "\"{name}\":{value}");
    }
    gauges.push('}');

    let mut histograms = String::from("{");
    for (i, hist) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            histograms.push(',');
        }
        let _ = write!(
            histograms,
            "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
            hist.name, hist.count, hist.sum
        );
        for (j, (low, count)) in hist.buckets.iter().enumerate() {
            if j > 0 {
                histograms.push(',');
            }
            let _ = write!(histograms, "[{low},{count}]");
        }
        histograms.push_str("]}");
    }
    histograms.push('}');

    Event::new("metrics")
        .with("counters", Value::Raw(counters))
        .with("gauges", Value::Raw(gauges))
        .with("histograms", Value::Raw(histograms))
}

/// Builds the one-time `clock_anchor` event binding this process's
/// `Instant`-relative trace timestamps to the wall clock.
///
/// Recorder timestamps are microseconds since the recorder's own
/// creation, which makes traces from different processes (server and
/// loadgen, say) mutually unalignable. The anchor carries the wall
/// clock (`unix_micros`) observed at a known trace time (`ts_us`,
/// stamped at emit), so `dut report` can shift every trace onto the
/// shared wall-clock axis: `wall = ts_us + (unix_micros − anchor.ts_us)`.
#[must_use]
pub fn clock_anchor_event() -> Event {
    // dut-lint: allow(nondet-rng): the anchor's entire purpose is to record the wall clock — it binds deterministic trace time to real time for cross-process alignment and feeds no experiment logic
    let unix_micros = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    Event::new("clock_anchor")
        .with("unix_micros", unix_micros)
        .with("pid", u64::from(std::process::id()))
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();
static ENV_INIT: OnceLock<Option<String>> = OnceLock::new();

/// The process-wide recorder used by instrumented crates.
#[must_use]
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new)
}

/// Installs a JSONL sink on the global recorder if `DUT_TRACE` names a
/// path, and enables verbose per-execution events if
/// `DUT_TRACE_VERBOSE` is `1`/`true`. Idempotent: only the first call
/// acts. Returns the trace path if one was installed.
pub fn init_from_env() -> Option<String> {
    ENV_INIT
        .get_or_init(|| {
            let path = std::env::var("DUT_TRACE").ok().filter(|p| !p.is_empty())?;
            match JsonlSink::create(&path) {
                Ok(sink) => {
                    let recorder = global();
                    recorder.install_sink(Arc::new(sink));
                    if matches!(
                        std::env::var("DUT_TRACE_VERBOSE").as_deref(),
                        Ok("1" | "true")
                    ) {
                        recorder.set_verbose(true);
                    }
                    // One-time wall-clock anchor so multi-process
                    // traces can be aligned by `dut report`.
                    recorder.emit(clock_anchor_event());
                    Some(path)
                }
                Err(error) => {
                    // dut-lint: allow(println): the trace sink itself failed to open, so no obs channel exists to carry this diagnostic — stderr is the fallback of last resort
                    eprintln!("warning: cannot open DUT_TRACE file `{path}`: {error}");
                    None
                }
            }
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_recorder_drops_events() {
        let r = Recorder::new();
        r.emit(Event::new("x"));
        r.emit_with(|| panic!("must not build when disabled"));
        assert!(!r.is_enabled());
    }

    #[test]
    fn events_reach_installed_sink_with_timestamps() {
        let r = Recorder::new();
        let sink = Arc::new(MemorySink::new());
        r.install_sink(sink.clone());
        r.emit(Event::new("first"));
        std::thread::sleep(std::time::Duration::from_millis(1));
        r.emit(Event::new("second"));
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert!(events[1].ts_micros > events[0].ts_micros);
    }

    #[test]
    fn verbose_gating() {
        let r = Recorder::new();
        let sink = Arc::new(MemorySink::new());
        r.install_sink(sink.clone());
        r.emit_verbose_with(|| Event::new("hot"));
        assert!(sink.is_empty(), "verbose events suppressed by default");
        r.set_verbose(true);
        r.emit_verbose_with(|| Event::new("hot"));
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn span_records_elapsed() {
        let r = Recorder::new();
        let sink = Arc::new(MemorySink::new());
        r.install_sink(sink.clone());
        {
            let _span = r.span("unit.work").with("k", 4u64);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let events = sink.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "span");
        assert_eq!(
            events[0].field("name"),
            Some(&Value::Str("unit.work".into()))
        );
        let Some(Value::U64(us)) = events[0].field("elapsed_us") else {
            panic!("missing elapsed_us");
        };
        assert!(*us >= 1_000, "elapsed {us}us");
        assert_eq!(events[0].field("k"), Some(&Value::U64(4)));
    }

    #[test]
    fn snapshot_event_is_valid_json() {
        let registry = metrics::Registry::new();
        registry.add(metrics::Counter::SamplesDrawn, 7);
        registry.observe(metrics::HistogramId::RunSamples, 7);
        let event = snapshot_event(&registry.snapshot());
        let parsed = crate::json::parse(&event.to_json_line()).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("samples_drawn"))
                .and_then(crate::json::Json::as_u64),
            Some(7)
        );
        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("run_samples"))
            .unwrap();
        assert_eq!(
            hist.get("count").and_then(crate::json::Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn clock_anchor_carries_wall_clock() {
        let event = clock_anchor_event();
        assert_eq!(event.name, "clock_anchor");
        let Some(Value::U64(unix)) = event.field("unix_micros") else {
            panic!("missing unix_micros");
        };
        // Sanity: after 2020-01-01 in microseconds.
        assert!(*unix > 1_577_836_800_000_000, "unix_micros {unix}");
        assert!(event.field("pid").is_some());
    }

    #[test]
    fn clear_sinks_disables() {
        let r = Recorder::new();
        r.install_sink(Arc::new(MemorySink::new()));
        assert!(r.is_enabled());
        r.clear_sinks();
        assert!(!r.is_enabled());
    }
}
