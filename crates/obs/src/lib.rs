//! `dut-obs`: metrics + tracing for the distributed uniformity
//! testing workspace.
//!
//! Two complementary pieces:
//!
//! * **Metrics** — a process-wide [`metrics::Registry`] of atomic
//!   counters, gauges, and log-bucketed histograms. Always on;
//!   recording is a single relaxed atomic add, so the Monte-Carlo hot
//!   paths in `dut-stats` and `dut-simnet` can count samples, bits,
//!   and verdicts without contention.
//! * **Tracing** — span-style structured events routed through a
//!   [`Recorder`] to pluggable [`Sink`]s: a JSONL file sink
//!   ([`JsonlSink`], enabled via the `DUT_TRACE` env var), an
//!   in-memory sink for tests ([`MemorySink`]), and a no-op default
//!   that reduces every instrumentation site to one relaxed atomic
//!   load.
//!
//! Traces are analyzed offline by [`report`] (the `dut report`
//! subcommand).
//!
//! ```
//! let _guard = dut_obs::span!("e1.sweep_k", k = 64u64);
//! dut_obs::metrics::global().add(dut_obs::metrics::Counter::SamplesDrawn, 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Tests assert exact constructed values and index with small literals.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod sink;
pub mod slo;
pub mod trace;
pub mod window;

pub use flight::FlightRecorder;
pub use recorder::{global, init_from_env, snapshot_event, Recorder, Span};
pub use report::Report;
pub use sink::{JsonlSink, MemorySink, Sink};
pub use slo::{SloConfig, SloStatus};
pub use trace::{Event, Value};
pub use window::SnapshotRing;

/// Opens a span on the global recorder; the returned guard emits a
/// `"span"` event (with `elapsed_us`) when dropped.
///
/// ```
/// let _guard = dut_obs::span!("e1.sweep_k", k = 64u64, rule = "and");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::global().span($name)$(.with(stringify!($key), $value))*
    };
}

#[cfg(test)]
mod tests {
    use crate::sink::MemorySink;
    use crate::trace::Value;
    use std::sync::Arc;

    #[test]
    fn span_macro_names_and_fields() {
        let recorder = crate::Recorder::new();
        let sink = Arc::new(MemorySink::new());
        recorder.install_sink(sink.clone());
        // The macro targets the global recorder; exercise the same
        // expansion shape against a local one.
        {
            let _guard = recorder
                .span("unit.phase")
                .with("k", 8u64)
                .with("rule", "or");
        }
        let events = sink.take();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].field("name"),
            Some(&Value::Str("unit.phase".into()))
        );
        assert_eq!(events[0].field("k"), Some(&Value::U64(8)));
        assert_eq!(events[0].field("rule"), Some(&Value::Str("or".into())));
    }

    #[test]
    fn span_macro_compiles_against_global() {
        // Global recorder has no sinks in tests → guard is a no-op,
        // but the macro expansion must type-check with mixed fields.
        let _guard = crate::span!("lib.smoke", k = 4u64, eps = 0.25, rule = "and");
    }
}
