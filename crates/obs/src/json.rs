//! Minimal JSON reading and writing.
//!
//! The trace format is JSON Lines, but the workspace has no serde;
//! this module provides the small subset needed: escaping writers for
//! the event serializer and a recursive-descent parser for `dut
//! report`. It parses exactly the JSON this crate writes (objects,
//! arrays, strings, finite numbers, bools, null) and rejects anything
//! malformed with a positioned error.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-fractional, non-negative numeric literal (no `-`, `.`,
    /// or exponent) that fits `u64`, kept exact. `f64` alone loses
    /// integer precision above 2^53, which silently corrupted large
    /// RNG seeds crossing the serve wire (found by `dut fuzz`'s
    /// differential plane).
    Uint(u64),
    /// Any other number (stored as `f64`; exact for integers below
    /// 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as `f64`, if numeric. `Uint` values above 2^53
    /// round to the nearest representable `f64` — callers that need
    /// exact large integers use [`Self::as_u64`].
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            #[allow(clippy::cast_precision_loss)]
            Json::Uint(x) => Some(*x as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integer. Plain integer
    /// literals arrive as `Uint` and return exactly; a `Num` that
    /// happens to be integral (e.g. `1e3`) is accepted too.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(x) => Some(*x),
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss,
                clippy::float_cmp
            )]
            // dut-lint: allow(float-eq): fract() of an integral f64 is exactly +0.0 — this is an exact integrality test, an epsilon would accept non-integers
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number to `out` (non-finite values become `null`).
pub fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

/// Appends the canonical serialization of a parsed value to `out`
/// (object keys in `BTreeMap` order, shortest-round-trip numbers).
/// `parse(write(x)) == x` for every finite-numbered value.
pub fn write(out: &mut String, node: &Json) {
    match node {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Uint(x) => {
            let _ = write!(out, "{x}");
        }
        Json::Num(x) => write_f64(out, *x),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write(out, item);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (key, value)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write(out, value);
            }
            out.push('}');
        }
    }
}

/// Deepest container nesting [`parse`] accepts. The parser is
/// recursive-descent, so without a bound a hostile line of `[[[[…`
/// converts input length into call-stack depth and aborts the whole
/// process with a stack overflow — a fuzzer-found crash, not a
/// hypothetical. 64 levels is far beyond anything the workspace
/// writes (traces nest 2–3 deep).
pub const MAX_DEPTH: usize = 64;

/// Parses one JSON document from `input`.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error,
/// if trailing non-whitespace follows the document, or if containers
/// nest deeper than [`MAX_DEPTH`].
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid utf8 in number at byte {start}"))?;
        // Plain digit runs stay exact: `f64` cannot represent every
        // u64 above 2^53, and seeds ride this wire.
        if text.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Uint(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (1–4 bytes).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid utf8 at byte {}", self.pos))?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escapes() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te\u{1}f");
        let parsed = parse(&out).unwrap();
        assert_eq!(parsed, Json::Str("a\"b\\c\nd\te\u{1}f".into()));
    }

    #[test]
    fn parses_nested_document() {
        let doc =
            r#"{"event":"manifest","seed":42,"cfg":{"n":[1,2,3],"ok":true,"x":null},"rate":0.5}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("rate").and_then(Json::as_f64), Some(0.5));
        assert_eq!(
            v.get("cfg").and_then(|c| c.get("ok")),
            Some(&Json::Bool(true))
        );
        assert_eq!(
            v.get("cfg").and_then(|c| c.get("n")),
            Some(&Json::Arr(vec![
                Json::Uint(1),
                Json::Uint(2),
                Json::Uint(3)
            ]))
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1}x"#).is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        // One past the cap fails with a structured error…
        let mut hostile = "[".repeat(MAX_DEPTH + 1);
        hostile.push_str(&"]".repeat(MAX_DEPTH + 1));
        assert!(parse(&hostile).unwrap_err().contains("nesting"));
        // …and far past the cap must not overflow the stack (this is
        // the fuzzer's original crashing input shape).
        let bomb = "[".repeat(200_000);
        assert!(parse(&bomb).is_err());
        // Exactly at the cap still parses.
        let mut legal = "[".repeat(MAX_DEPTH);
        legal.push_str(&"]".repeat(MAX_DEPTH));
        assert!(parse(&legal).is_ok());
        // Depth is nesting, not total container count: siblings at the
        // same level don't accumulate.
        let wide = format!("[{}]", vec!["[1]"; 100].join(","));
        assert!(parse(&wide).is_ok());
    }

    #[test]
    fn number_forms() {
        assert_eq!(parse("-3.25e2").unwrap().as_f64(), Some(-325.0));
        assert_eq!(
            parse("18446744073709").unwrap().as_u64(),
            Some(18_446_744_073_709)
        );
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn large_integers_survive_exactly() {
        // Above 2^53, f64 cannot hold every integer; seeds this large
        // cross the serve wire and must round-trip bit-exactly (found
        // by the differential fuzz plane).
        let seed = 13_827_855_532_095_422_826_u64;
        let text = seed.to_string();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, Json::Uint(seed));
        assert_eq!(parsed.as_u64(), Some(seed));
        let mut out = String::new();
        write(&mut out, &parsed);
        assert_eq!(out, text);
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        // One past u64::MAX falls back to f64 rather than erroring.
        assert!(parse("18446744073709551616").unwrap().as_f64().is_some());
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"héllo ☃\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ☃"));
    }

    #[test]
    fn write_round_trips() {
        let source = r#"{"a":[1,2.5,null,true],"b":{"nested":"va\"lue"},"c":-3}"#;
        let doc = parse(source).unwrap();
        let mut out = String::new();
        write(&mut out, &doc);
        assert_eq!(parse(&out).unwrap(), doc);
        // Canonical form is stable under re-serialization.
        let mut again = String::new();
        write(&mut again, &parse(&out).unwrap());
        assert_eq!(out, again);
    }
}
