//! Property-based tests for the windowed-metrics plane: histogram
//! quantiles, snapshot deltas, and epoch-window expiry.

#![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // test code asserts exact values
use dut_obs::metrics::{
    bucket_high, bucket_index, bucket_low, Counter, Histogram, HistogramId, Registry,
};
use dut_obs::window::SnapshotRing;
use proptest::prelude::*;

/// Strategy: a non-empty batch of histogram observations spanning
/// many log buckets.
fn arb_observations() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..2_000_000, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantile_is_monotone_in_p(values in arb_observations()) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = f64::MIN;
        for i in 0..=20u32 {
            let q = h.quantile(f64::from(i) / 20.0);
            prop_assert!(q >= last, "p={} gave {q} < {last}", f64::from(i) / 20.0);
            last = q;
        }
    }

    #[test]
    fn quantile_is_bracketed_by_bucket_bounds(values in arb_observations(), p in 0.0f64..=1.0) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let q = h.quantile(p);
        // The estimate must lie within the span of the occupied
        // buckets: [low of smallest, high of largest].
        let min_low = values.iter().map(|&v| bucket_low(bucket_index(v))).min().unwrap();
        let max_high = values.iter().map(|&v| bucket_high(bucket_index(v))).max().unwrap();
        #[allow(clippy::cast_precision_loss)]
        {
            prop_assert!(q >= min_low as f64 - 1e-9, "q={q} below {min_low}");
            prop_assert!(q <= max_high as f64 + 1e-9, "q={q} above {max_high}");
        }
        // And it must never undershoot the true minimum or overshoot
        // the bucket ceiling of the true maximum.
        let true_min = *values.iter().min().unwrap();
        prop_assert!(q + 1e-9 >= bucket_low(bucket_index(true_min)) as f64);
    }

    #[test]
    fn quantile_is_exact_on_single_bucket_data(value in 0u64..2_000_000, copies in 1usize..100, p in 0.0f64..=1.0) {
        // All observations equal → every quantile is that value.
        let h = Histogram::new();
        for _ in 0..copies {
            h.record(value);
        }
        let q = h.quantile(p);
        #[allow(clippy::cast_precision_loss)]
        let expected = value as f64;
        prop_assert!((q - expected).abs() < 1e-6, "q={q} expected={expected}");
    }

    #[test]
    fn snapshot_delta_matches_recorded_difference(
        before in prop::collection::vec(0u64..5_000, 0..40),
        after in prop::collection::vec(0u64..5_000, 0..40),
    ) {
        let reg = Registry::new();
        for &v in &before {
            reg.observe(HistogramId::RequestMicros, v);
            reg.add(Counter::ServeRequests, 1);
        }
        let base = reg.snapshot();
        for &v in &after {
            reg.observe(HistogramId::RequestMicros, v);
            reg.add(Counter::ServeRequests, 1);
        }
        let delta = reg.snapshot().delta(&base);
        prop_assert_eq!(delta.counter(Counter::ServeRequests), after.len() as u64);
        let hist = delta.histogram(HistogramId::RequestMicros).unwrap();
        prop_assert_eq!(hist.count, after.len() as u64);
        prop_assert_eq!(hist.sum, after.iter().sum::<u64>());
        // Bucket-wise, the delta is exactly the histogram of `after`.
        let expected = Histogram::new();
        for &v in &after {
            expected.record(v);
        }
        prop_assert_eq!(&hist.buckets, &expected.nonzero_buckets());
    }

    #[test]
    fn expired_epochs_stop_contributing(
        old_burst in 1u64..1_000,
        recent in 0u64..1_000,
        gap_secs in 10u64..100,
    ) {
        const SEC: u64 = 1_000_000;
        let ring = SnapshotRing::new(SEC, 256);
        let reg = Registry::new();
        reg.add(Counter::ServeShed, old_burst);
        prop_assert!(ring.maybe_capture(&reg, SEC));
        let now = (1 + gap_secs) * SEC;
        prop_assert!(ring.maybe_capture(&reg, now - SEC));
        reg.add(Counter::ServeRequests, recent);
        // A window shorter than the gap excludes the old burst...
        let w = ring.window(&reg, now, SEC);
        prop_assert_eq!(w.delta.counter(Counter::ServeShed), 0);
        prop_assert_eq!(w.delta.counter(Counter::ServeRequests), recent);
        // ...and a window spanning everything still includes it.
        let all = ring.window(&reg, now, now + SEC);
        prop_assert_eq!(all.delta.counter(Counter::ServeShed), old_burst);
    }
}
