//! Failure injection for the simultaneous-message model.
//!
//! The paper's AND rule is prized for locality — any node can raise
//! the alarm alone. Fault injection exposes the flip side: a single
//! *lost* alarm message silently converts a reject into an accept,
//! while counting rules degrade gracefully. [`FaultyNetwork`] runs the
//! one-bit protocol with iid message loss and node crashes so that
//! trade-off can be measured (see the root integration tests).
//!
//! This is the stable, simple front door; it delegates to the general
//! [`resilience`](crate::resilience) machinery ([`ResilientNetwork`]
//! with an [`IidFaults`] plan and no recovery), which also offers
//! bursty channels, adversaries, and recovery protocols.

use crate::network::{Network, RunOutcome};
use crate::resilience::{IidFaults, ResilientNetwork};
use crate::rule::DecisionRule;
use dut_probability::Sampler;
use rand::Rng;

use crate::player::Player;

/// Independent fault probabilities applied to each player/message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability a player crashes before sending (sends nothing).
    pub crash_probability: f64,
    /// Probability a sent message is lost in transit.
    pub message_loss_probability: f64,
}

impl FaultModel {
    /// A fault-free model.
    #[must_use]
    pub fn none() -> Self {
        Self {
            crash_probability: 0.0,
            message_loss_probability: 0.0,
        }
    }

    /// Validates probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(crash_probability: f64, message_loss_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&crash_probability),
            "crash probability out of range"
        );
        assert!(
            (0.0..=1.0).contains(&message_loss_probability),
            "loss probability out of range"
        );
        Self {
            crash_probability,
            message_loss_probability,
        }
    }
}

/// How the referee treats players it did not hear from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissingPolicy {
    /// Treat silence as an accept bit (the deployed default for alarm
    /// systems: no alarm heard ⇒ assume fine). This is what makes the
    /// AND rule fragile.
    AssumeAccept,
    /// Treat silence as a reject bit (fail-safe, but false alarms rise
    /// with the fault rate).
    AssumeReject,
    /// Drop silent players from the vote (the rule sees fewer bits).
    Exclude,
}

/// A network whose players may crash and whose messages may be lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultyNetwork {
    inner: Network,
    faults: FaultModel,
    missing_policy: MissingPolicy,
}

impl FaultyNetwork {
    /// Creates a faulty network of `num_players` players.
    ///
    /// # Panics
    ///
    /// Panics if `num_players == 0`.
    #[must_use]
    pub fn new(num_players: usize, faults: FaultModel, missing_policy: MissingPolicy) -> Self {
        Self {
            inner: Network::new(num_players),
            faults,
            missing_policy,
        }
    }

    /// Runs one faulty execution of the one-bit protocol.
    ///
    /// Crashed players draw no samples; lost messages consume their
    /// samples but never reach the referee. If *every* bit is missing
    /// under [`MissingPolicy::Exclude`], the referee accepts (it has no
    /// evidence to act on).
    ///
    /// Communication accounting charges only *delivered* bits: a run
    /// with losses or crashes adds fewer than `k` to the `bits_sent`
    /// budget even when the missing policy pads the vote back to `k`
    /// bits. Fault randomness is drawn from a stream separate from the
    /// sampling stream (see [`ResilientNetwork::run`]), so the same
    /// caller RNG state yields paired runs across fault rates.
    pub fn run<S, P, R>(
        &self,
        sampler: &S,
        samples_per_player: usize,
        player: &P,
        rule: &DecisionRule,
        rng: &mut R,
    ) -> RunOutcome
    where
        S: Sampler,
        P: Player + ?Sized,
        R: Rng + ?Sized,
    {
        let network = ResilientNetwork::new(self.inner.num_players(), self.missing_policy);
        let mut plan = IidFaults::new(
            self.faults.crash_probability,
            self.faults.message_loss_probability,
        );
        let out = network.run(sampler, samples_per_player, player, rule, &mut plan, rng);
        RunOutcome {
            verdict: out.verdict,
            transcript: out.transcript,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::player::PlayerContext;
    use dut_probability::families;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    struct AlwaysReject;
    impl Player for AlwaysReject {
        fn accepts(&self, _: &PlayerContext, _: &[usize]) -> bool {
            false
        }
    }

    struct AlwaysAccept;
    impl Player for AlwaysAccept {
        fn accepts(&self, _: &PlayerContext, _: &[usize]) -> bool {
            true
        }
    }

    #[test]
    fn fault_free_matches_reliable_network() {
        let net = FaultyNetwork::new(8, FaultModel::none(), MissingPolicy::AssumeAccept);
        let sampler = families::uniform(16).alias_sampler();
        let out = net.run(&sampler, 2, &AlwaysReject, &DecisionRule::And, &mut rng(1));
        assert!(out.verdict.is_reject());
        assert_eq!(out.transcript.messages.len(), 8);
    }

    #[test]
    fn and_rule_fragile_under_loss_with_assume_accept() {
        // One rejecting player among 8 accepting ones; 50% loss.
        // Whenever ITS message is lost, the alarm vanishes.
        let net = FaultyNetwork::new(8, FaultModel::new(0.0, 0.5), MissingPolicy::AssumeAccept);
        let sampler = families::uniform(16).alias_sampler();
        let one_rejector = |ctx: &PlayerContext, _: &[usize]| ctx.player_id != 3;
        let mut r = rng(2);
        let trials = 400;
        let rejected = (0..trials)
            .filter(|_| {
                net.run(&sampler, 1, &one_rejector, &DecisionRule::And, &mut r)
                    .verdict
                    .is_reject()
            })
            .count();
        // Alarm survives only when the message survives: ~50%.
        let rate = rejected as f64 / f64::from(trials);
        assert!((0.35..0.65).contains(&rate), "alarm survival rate {rate}");
    }

    #[test]
    fn assume_reject_is_fail_safe_but_noisy() {
        let net = FaultyNetwork::new(8, FaultModel::new(0.0, 0.5), MissingPolicy::AssumeReject);
        let sampler = families::uniform(16).alias_sampler();
        let mut r = rng(3);
        // All players accept, but losses turn into rejects: AND almost
        // always rejects — false alarms.
        let trials = 200;
        let rejected = (0..trials)
            .filter(|_| {
                net.run(&sampler, 1, &AlwaysAccept, &DecisionRule::And, &mut r)
                    .verdict
                    .is_reject()
            })
            .count();
        assert!(rejected > trials * 9 / 10, "rejected {rejected}/{trials}");
    }

    #[test]
    fn exclude_policy_shrinks_the_vote() {
        let net = FaultyNetwork::new(10, FaultModel::new(0.5, 0.0), MissingPolicy::Exclude);
        let sampler = families::uniform(16).alias_sampler();
        let mut r = rng(4);
        let out = net.run(&sampler, 1, &AlwaysAccept, &DecisionRule::Majority, &mut r);
        assert!(out.transcript.messages.len() < 10);
        assert!(out.verdict.is_accept());
    }

    #[test]
    fn total_silence_accepts_under_exclude() {
        let net = FaultyNetwork::new(4, FaultModel::new(1.0, 0.0), MissingPolicy::Exclude);
        let sampler = families::uniform(4).alias_sampler();
        let out = net.run(&sampler, 1, &AlwaysReject, &DecisionRule::And, &mut rng(5));
        assert!(out.verdict.is_accept());
        assert_eq!(out.transcript.messages.len(), 0);
        // Crashed players drew no samples.
        assert_eq!(out.transcript.total_samples(), 0);
    }

    #[test]
    fn combined_crash_and_loss_compound() {
        // Both fault modes at once: crashes suppress sampling entirely,
        // losses consume samples but drop the bit. Under AssumeReject
        // every fault of either kind turns into a reject vote.
        let net = FaultyNetwork::new(12, FaultModel::new(0.3, 0.3), MissingPolicy::AssumeReject);
        let sampler = families::uniform(16).alias_sampler();
        let mut r = rng(6);
        let trials = 300;
        let mut rejected = 0usize;
        let mut zero_sample_players = 0usize;
        let mut partial_sample_runs = 0usize;
        for _ in 0..trials {
            let out = net.run(&sampler, 2, &AlwaysAccept, &DecisionRule::And, &mut r);
            if out.verdict.is_reject() {
                rejected += 1;
            }
            let zeros = out
                .transcript
                .samples_drawn
                .iter()
                .filter(|&&q| q == 0)
                .count();
            zero_sample_players += zeros;
            // Lost messages consumed samples without being counted in
            // the vote: transcript shows fewer messages than sampling
            // players.
            if out.transcript.messages.len() < 12 - zeros {
                partial_sample_runs += 1;
            }
        }
        // P(all 12 players survive both faults) = (0.7 * 0.7)^12 ≈ 2e-4,
        // so AND under AssumeReject should essentially always reject.
        assert!(rejected > trials * 9 / 10, "rejected {rejected}/{trials}");
        // Crashes happened (~30% of 12 * 300 = 1080 expected).
        assert!(zero_sample_players > 500, "{zero_sample_players} crashes");
        // AssumeReject keeps every player in the vote, so messages are
        // never fewer than the number of non-crashed players.
        assert_eq!(partial_sample_runs, 0);
    }

    #[test]
    fn combined_faults_with_exclude_shrink_transcript() {
        let net = FaultyNetwork::new(12, FaultModel::new(0.4, 0.4), MissingPolicy::Exclude);
        let sampler = families::uniform(16).alias_sampler();
        let mut r = rng(7);
        let mut saw_shrunk_vote = false;
        for _ in 0..50 {
            let out = net.run(&sampler, 1, &AlwaysAccept, &DecisionRule::Majority, &mut r);
            let crashes = out
                .transcript
                .samples_drawn
                .iter()
                .filter(|&&q| q == 0)
                .count();
            assert!(out.transcript.messages.len() <= 12 - crashes);
            if out.transcript.messages.len() < 12 - crashes {
                saw_shrunk_vote = true; // a non-crashed player's message was lost
            }
        }
        assert!(
            saw_shrunk_vote,
            "40% loss never dropped a message in 50 runs"
        );
    }

    #[test]
    fn crash_probability_validated() {
        let m = FaultModel::new(0.1, 0.2);
        assert!((m.crash_probability - 0.1).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_probability() {
        let _ = FaultModel::new(1.5, 0.0);
    }
}
