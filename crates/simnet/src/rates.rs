/// Per-player sampling rates for the asymmetric-cost model of §6.2.
///
/// Each player `i` has a sampling rate `T_i > 0`; given a time budget
/// `τ`, it collects `q_i = ⌊T_i · τ⌋` samples (at least one). The paper
/// shows the optimal time budget is `τ = Θ(√n / (ε² · ‖T‖₂))` — the cost
/// is governed by the ℓ₂ norm of the rate vector, not its sum.
#[derive(Debug, Clone, PartialEq)]
pub struct RateVector {
    rates: Vec<f64>,
}

impl RateVector {
    /// Creates a rate vector.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty or contains a non-positive or
    /// non-finite rate.
    #[must_use]
    pub fn new(rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty(), "rate vector must be non-empty");
        for (i, &r) in rates.iter().enumerate() {
            assert!(
                r.is_finite() && r > 0.0,
                "rate {i} must be positive and finite, got {r}"
            );
        }
        Self { rates }
    }

    /// The symmetric model: `k` players at unit rate.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn unit(k: usize) -> Self {
        Self::new(vec![1.0; k])
    }

    /// Number of players.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Always false (constructor enforces non-emptiness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// The rates as a slice.
    #[must_use]
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// The ℓ₂ norm `‖T‖₂ = sqrt(Σ T_i²)` governing the optimal time.
    #[must_use]
    pub fn l2_norm(&self) -> f64 {
        self.rates.iter().map(|r| r * r).sum::<f64>().sqrt()
    }

    /// The ℓ₁ norm `Σ T_i` (total sampling throughput).
    #[must_use]
    pub fn l1_norm(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Sample counts for time budget `tau`: `max(1, ⌊T_i·τ⌋)` per player.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not positive and finite.
    #[must_use]
    pub fn samples_for_time(&self, tau: f64) -> Vec<usize> {
        assert!(tau.is_finite() && tau > 0.0, "time budget must be positive");
        self.rates
            .iter()
            .map(|&r| dut_stats::convert::floor_to_usize(r * tau).max(1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_rates_norm_is_sqrt_k() {
        let r = RateVector::unit(16);
        assert!((r.l2_norm() - 4.0).abs() < 1e-12);
        assert!((r.l1_norm() - 16.0).abs() < 1e-12);
        assert_eq!(r.len(), 16);
        assert!(!r.is_empty());
    }

    #[test]
    fn samples_scale_with_tau() {
        let r = RateVector::new(vec![1.0, 2.5, 0.2]);
        assert_eq!(r.samples_for_time(10.0), vec![10, 25, 2]);
    }

    #[test]
    fn slow_players_get_at_least_one_sample() {
        let r = RateVector::new(vec![0.01]);
        assert_eq!(r.samples_for_time(1.0), vec![1]);
    }

    #[test]
    fn skewed_vector_same_l2_different_shape() {
        // One fast player vs many slow ones with the same l2 norm.
        let concentrated = RateVector::new(vec![2.0]);
        let spread = RateVector::new(vec![1.0; 4]);
        assert!((concentrated.l2_norm() - spread.l2_norm()).abs() < 1e-12);
        assert!(concentrated.l1_norm() < spread.l1_norm());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rates_panic() {
        let _ = RateVector::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_rate_panics() {
        let _ = RateVector::new(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_tau_panics() {
        let _ = RateVector::unit(2).samples_for_time(-1.0);
    }
}
