//! Bit-packed referee transcripts: the players' accept bits stored as
//! `u64` words instead of one `bool` per byte.
//!
//! Every built-in decision rule only needs the *number* of rejecting
//! players, which a packed vector answers with a handful of `popcount`
//! instructions — so large-`k` sweeps stop paying an 8× memory tax and a
//! linear scan per run on the aggregation path.

/// A growable bit vector packed into `u64` words (`true` = accept).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedBits {
    words: Vec<u64>,
    len: usize,
}

impl PackedBits {
    /// An empty bit vector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty bit vector with room for `bits` bits.
    #[must_use]
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Packs a bool slice.
    #[must_use]
    pub fn from_bools(bits: &[bool]) -> Self {
        bits.iter().copied().collect()
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Number of bits stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bits are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits (accepting players), via `popcount` per word.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits (rejecting players).
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Iterates the bits in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Unpacks into a bool vector (for consumers that need a slice,
    /// e.g. [`crate::DecisionRule::Custom`]).
    #[must_use]
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// The underlying words; bits past `len` are zero.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl FromIterator<bool> for PackedBits {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut packed = Self::with_capacity(iter.size_hint().0);
        for bit in iter {
            packed.push(bit);
        }
        packed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_round_trip() {
        let mut p = PackedBits::new();
        assert!(p.is_empty());
        let pattern = [true, false, true, true, false];
        for &b in &pattern {
            p.push(b);
        }
        assert_eq!(p.len(), 5);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(p.get(i), b, "bit {i}");
        }
        assert_eq!(p.to_bools(), pattern);
    }

    #[test]
    fn counts_across_word_boundary() {
        // 130 bits: exercises three words and a partial tail.
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let p = PackedBits::from_bools(&bits);
        assert_eq!(p.len(), 130);
        assert_eq!(p.words().len(), 3);
        let expected_ones = bits.iter().filter(|&&b| b).count();
        assert_eq!(p.count_ones(), expected_ones);
        assert_eq!(p.count_zeros(), 130 - expected_ones);
        assert_eq!(p.to_bools(), bits);
    }

    #[test]
    fn word_boundary_bits_land_in_right_word() {
        let mut p = PackedBits::new();
        for i in 0..65 {
            p.push(i == 63 || i == 64);
        }
        assert!(p.get(63));
        assert!(p.get(64));
        assert!(!p.get(0));
        assert_eq!(p.words()[0], 1u64 << 63);
        assert_eq!(p.words()[1], 1u64);
    }

    #[test]
    fn from_iterator_collects() {
        let p: PackedBits = (0..10).map(|i| i % 2 == 0).collect();
        assert_eq!(p.len(), 10);
        assert_eq!(p.count_ones(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let p = PackedBits::from_bools(&[true]);
        let _ = p.get(1);
    }
}
