//! Network topologies for the round-based models.
//!
//! The paper's simultaneous-message model is the one-round star (all
//! players adjacent to the referee). The companion work \[7\] also
//! studies uniformity testing in the LOCAL and CONGEST models on
//! general graphs, reducing them to the simultaneous case over a
//! BFS spanning tree; this module provides the graphs those
//! simulations run on.

use rand::Rng;

/// An undirected graph on nodes `0..n`, stored as adjacency lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    adjacency: Vec<Vec<usize>>,
}

impl Topology {
    /// Builds a topology from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`, an endpoint is out of range, or an edge
    /// is a self-loop.
    #[must_use]
    pub fn from_edges(nodes: usize, edges: &[(usize, usize)]) -> Self {
        assert!(nodes > 0, "topology needs at least one node");
        let mut adjacency = vec![Vec::new(); nodes];
        for &(a, b) in edges {
            assert!(a < nodes && b < nodes, "edge ({a},{b}) out of range");
            assert_ne!(a, b, "self-loops are not allowed");
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        Self { adjacency }
    }

    /// The star: node 0 (the referee) adjacent to everyone else. One
    /// round on this graph is exactly the simultaneous-message model.
    #[must_use]
    pub fn star(nodes: usize) -> Self {
        assert!(nodes >= 1, "star needs at least one node");
        let edges: Vec<(usize, usize)> = (1..nodes).map(|i| (0, i)).collect();
        Self::from_edges(nodes, &edges)
    }

    /// The complete graph.
    #[must_use]
    pub fn clique(nodes: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                edges.push((a, b));
            }
        }
        Self::from_edges(nodes, &edges)
    }

    /// The path `0 - 1 - .. - (n-1)`: diameter `n − 1`, the worst case
    /// for aggregation depth.
    #[must_use]
    pub fn path(nodes: usize) -> Self {
        let edges: Vec<(usize, usize)> = (1..nodes).map(|i| (i - 1, i)).collect();
        Self::from_edges(nodes, &edges)
    }

    /// A complete binary tree rooted at node 0.
    #[must_use]
    pub fn binary_tree(nodes: usize) -> Self {
        let mut edges = Vec::new();
        for i in 1..nodes {
            edges.push(((i - 1) / 2, i));
        }
        Self::from_edges(nodes, &edges)
    }

    /// An Erdős–Rényi graph with edge probability `p`, re-drawn until
    /// connected (expected O(1) draws for `p` above the connectivity
    /// threshold).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0, 1]`, or connectivity is not reached within
    /// 1000 attempts (i.e. `p` is far below the threshold).
    pub fn random_connected<R: Rng + ?Sized>(nodes: usize, p: f64, rng: &mut R) -> Self {
        assert!(p > 0.0 && p <= 1.0, "edge probability must be in (0, 1]");
        for _ in 0..1000 {
            let mut edges = Vec::new();
            for a in 0..nodes {
                for b in (a + 1)..nodes {
                    if rng.random::<f64>() < p {
                        edges.push((a, b));
                    }
                }
            }
            let candidate = Self::from_edges(nodes, &edges);
            if candidate.is_connected() {
                return candidate;
            }
        }
        panic!("failed to draw a connected graph; edge probability too small");
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the graph has no nodes (never true: constructors forbid it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Neighbors of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.adjacency[node]
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// BFS distances from `source` (`usize::MAX` for unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    #[must_use]
    pub fn bfs_distances(&self, source: usize) -> Vec<usize> {
        assert!(source < self.len(), "source out of range");
        let mut dist = vec![usize::MAX; self.len()];
        dist[source] = 0;
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether every node is reachable from node 0.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.bfs_distances(0).iter().all(|&d| d != usize::MAX)
    }

    /// The graph diameter (longest shortest path).
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    #[must_use]
    pub fn diameter(&self) -> usize {
        // An empty graph has diameter 0; `max()` over no sources (or
        // no distances) needs no panic path.
        (0..self.len())
            .map(|s| self.bfs_distances(s).into_iter().max().unwrap_or(0))
            .max()
            .inspect(|&d| {
                assert!(d != usize::MAX, "graph is disconnected");
            })
            .unwrap_or(0)
    }

    /// A BFS spanning tree rooted at `root`: `parent[v]` is the parent
    /// of `v` (`parent[root] = root`).
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range or the graph is disconnected.
    #[must_use]
    pub fn bfs_tree(&self, root: usize) -> Vec<usize> {
        assert!(root < self.len(), "root out of range");
        let mut parent = vec![usize::MAX; self.len()];
        parent[root] = root;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if parent[v] == usize::MAX {
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        assert!(
            parent.iter().all(|&p| p != usize::MAX),
            "graph is disconnected"
        );
        parent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn star_structure() {
        let g = Topology::star(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0).len(), 4);
        assert_eq!(g.neighbors(3), &[0]);
        assert_eq!(g.diameter(), 2);
    }

    #[test]
    fn single_node_star() {
        let g = Topology::star(1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), 0);
    }

    #[test]
    fn clique_structure() {
        let g = Topology::clique(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.diameter(), 1);
    }

    #[test]
    fn path_diameter() {
        let g = Topology::path(10);
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.diameter(), 9);
        assert_eq!(g.bfs_distances(0)[9], 9);
    }

    #[test]
    fn binary_tree_depth() {
        let g = Topology::binary_tree(15); // perfect tree of depth 3
        assert_eq!(g.edge_count(), 14);
        let dist = g.bfs_distances(0);
        assert_eq!(*dist.iter().max().unwrap(), 3);
    }

    #[test]
    fn bfs_tree_parents_are_closer() {
        let g = Topology::clique(8);
        let parent = g.bfs_tree(0);
        let dist = g.bfs_distances(0);
        for v in 1..8 {
            assert_eq!(dist[parent[v]] + 1, dist[v]);
        }
        assert_eq!(parent[0], 0);
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = Topology::random_connected(20, 0.3, &mut rng);
        assert!(g.is_connected());
        assert_eq!(g.len(), 20);
    }

    #[test]
    fn deduplicates_parallel_edges() {
        let g = Topology::from_edges(3, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loops() {
        let _ = Topology::from_edges(3, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn bfs_tree_requires_connectivity() {
        let g = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        let _ = g.bfs_tree(0);
    }
}
