use crate::bits::PackedBits;
use crate::message::Message;
use crate::player::{CountPlayer, MessagePlayer, Player, PlayerContext};
use crate::rates::RateVector;
use crate::rule::{DecisionRule, MessageReferee, Verdict};
use dut_obs::metrics::{Counter, Gauge, HistogramId};
use dut_probability::{DualSampler, SampleBackend, Sampler};
use dut_stats::seed::derive_seed;
use rand::{Rng, SeedableRng};

/// Estimated sampling work (cost-model nanoseconds summed over all
/// players) below which [`Network::run_counts`] stays sequential even
/// when threads are available: spawning scoped threads costs tens of
/// microseconds, so tiny runs — the typical served request — must not
/// pay it.
const PARALLEL_MIN_WORK_NS: f64 = 200_000.0;

/// Records one finished execution in the global metrics registry and,
/// at verbose trace level, emits a per-run event. Pure observation:
/// never touches the RNG, so instrumented runs are bit-identical to
/// uninstrumented ones.
pub(crate) fn record_run(verdict: Verdict, samples: u64, bits: u64) {
    let registry = dut_obs::metrics::global();
    registry.incr(Counter::NetRuns);
    registry.add(Counter::SamplesDrawn, samples);
    registry.add(Counter::BitsSent, bits);
    registry.incr(if verdict.is_accept() {
        Counter::VerdictAccept
    } else {
        Counter::VerdictReject
    });
    registry.observe(HistogramId::RunSamples, samples);
    dut_obs::global().emit_verbose_with(|| {
        dut_obs::Event::new("net_run")
            .with("accept", verdict.is_accept())
            .with("samples", samples)
            .with("bits", bits)
    });
}

/// A simultaneous-message network of `k` sampling players and a referee.
///
/// One [`Network::run`] call simulates a single execution of a protocol:
/// every player draws its samples from the (common, unknown) input
/// distribution, computes its bit/message, and the referee decides.
///
/// The network itself is stateless and reusable; all randomness comes
/// from the caller-provided RNG (sample draws) and from
/// [`PlayerContext::shared_seed`] (shared randomness), which is drawn
/// fresh from the RNG on every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Network {
    num_players: usize,
}

/// The result of one protocol execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// The referee's verdict.
    pub verdict: Verdict,
    /// The execution transcript (player bits and sample counts).
    pub transcript: Transcript,
}

/// The observable record of one execution: what each player sent and how
/// many samples it consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transcript {
    /// Message sent by each player.
    pub messages: Vec<Message>,
    /// Number of samples each player drew.
    pub samples_drawn: Vec<usize>,
    /// The shared-randomness seed used in this execution.
    pub shared_seed: u64,
}

impl Transcript {
    /// The accept bits, when every message is one bit.
    ///
    /// # Panics
    ///
    /// Panics if any message is longer than one bit.
    #[must_use]
    pub fn accept_bits(&self) -> Vec<bool> {
        self.messages.iter().map(Message::as_accept_bit).collect()
    }

    /// Number of players that rejected (one-bit messages only).
    ///
    /// # Panics
    ///
    /// Panics if any message is longer than one bit.
    #[must_use]
    pub fn reject_count(&self) -> usize {
        self.accept_bits().iter().filter(|&&b| !b).count()
    }

    /// Total samples drawn across all players.
    #[must_use]
    pub fn total_samples(&self) -> usize {
        self.samples_drawn.iter().sum()
    }
}

impl Network {
    /// A network with `num_players` players.
    ///
    /// # Panics
    ///
    /// Panics if `num_players == 0`.
    #[must_use]
    pub fn new(num_players: usize) -> Self {
        assert!(num_players > 0, "network needs at least one player");
        Self { num_players }
    }

    /// Number of players `k`.
    #[must_use]
    pub fn num_players(&self) -> usize {
        self.num_players
    }

    /// Runs the one-bit protocol: every player draws `samples_per_player`
    /// samples, all players run the same (anonymous) decision function,
    /// and the referee applies `rule`.
    pub fn run<S, P, R>(
        &self,
        sampler: &S,
        samples_per_player: usize,
        player: &P,
        rule: &DecisionRule,
        rng: &mut R,
    ) -> RunOutcome
    where
        S: Sampler,
        P: Player + ?Sized,
        R: Rng + ?Sized,
    {
        let qs = vec![samples_per_player; self.num_players];
        self.run_with_sample_counts(sampler, &qs, player, rule, rng)
    }

    /// Runs the one-bit protocol with per-player sample counts (the
    /// asymmetric-cost model of §6.2).
    ///
    /// # Panics
    ///
    /// Panics if `sample_counts.len() != k`.
    pub fn run_with_sample_counts<S, P, R>(
        &self,
        sampler: &S,
        sample_counts: &[usize],
        player: &P,
        rule: &DecisionRule,
        rng: &mut R,
    ) -> RunOutcome
    where
        S: Sampler,
        P: Player + ?Sized,
        R: Rng + ?Sized,
    {
        assert_eq!(
            sample_counts.len(),
            self.num_players,
            "need one sample count per player"
        );
        let shared_seed: u64 = rng.random();
        let mut messages = Vec::with_capacity(self.num_players);
        let mut bits = PackedBits::with_capacity(self.num_players);
        for (player_id, &q) in sample_counts.iter().enumerate() {
            let ctx = PlayerContext {
                player_id,
                num_players: self.num_players,
                shared_seed,
            };
            let samples = sampler.sample_many(q, rng);
            let accept = player.accepts(&ctx, &samples);
            bits.push(accept);
            messages.push(Message::from_accept_bit(accept));
        }
        let verdict = rule.decide_packed(&bits);
        record_run(
            verdict,
            sample_counts.iter().map(|&q| q as u64).sum(),
            self.num_players as u64,
        );
        RunOutcome {
            verdict,
            transcript: Transcript {
                messages,
                samples_drawn: sample_counts.to_vec(),
                shared_seed,
            },
        }
    }

    /// Runs the asymmetric-rate model: player `i` draws
    /// `⌊rate_i · tau⌋` samples (at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `rates.len() != k` or `tau` is not positive and finite.
    pub fn run_with_rates<S, P, R>(
        &self,
        sampler: &S,
        rates: &RateVector,
        tau: f64,
        player: &P,
        rule: &DecisionRule,
        rng: &mut R,
    ) -> RunOutcome
    where
        S: Sampler,
        P: Player + ?Sized,
        R: Rng + ?Sized,
    {
        let counts = rates.samples_for_time(tau);
        self.run_with_sample_counts(sampler, &counts, player, rule, rng)
    }

    /// Runs the one-bit protocol for count-consuming players: every
    /// player receives its `q`-sample occupancy histogram, realized by
    /// the chosen [`SampleBackend`] — either by binning per-draw samples
    /// or through the O(n + q) conditional-binomial fast path
    /// (`Auto` resolves through the cost model first). Both backends
    /// produce Multinomial(q, p)-distributed histograms, so verdict
    /// distributions are identical in law.
    ///
    /// Each player draws from its own RNG stream derived from the
    /// caller's RNG (one seed per run, split per player with
    /// [`derive_seed`]), which makes runs independent of player
    /// execution order. Large runs exploit that: when the cost model
    /// estimates enough sampling work, players are drawn data-parallel
    /// on up to [`dut_stats::runner::available_threads`] scoped
    /// threads, with results bit-identical to the sequential path at
    /// any thread count.
    pub fn run_counts<P, R>(
        &self,
        sampler: &DualSampler,
        backend: SampleBackend,
        samples_per_player: usize,
        player: &P,
        rule: &DecisionRule,
        rng: &mut R,
    ) -> RunOutcome
    where
        P: CountPlayer + Sync + ?Sized,
        R: Rng + ?Sized,
    {
        self.run_counts_with_threads(
            sampler,
            backend,
            samples_per_player,
            player,
            rule,
            dut_stats::runner::available_threads(),
            rng,
        )
    }

    /// [`Network::run_counts`] with an explicit thread budget instead
    /// of the process-wide [`dut_stats::runner::available_threads`]
    /// (which memoizes `DUT_THREADS` once per process). Results are
    /// bit-identical for every `threads` value; tests use this to
    /// assert exactly that.
    #[allow(clippy::too_many_arguments)]
    pub fn run_counts_with_threads<P, R>(
        &self,
        sampler: &DualSampler,
        backend: SampleBackend,
        samples_per_player: usize,
        player: &P,
        rule: &DecisionRule,
        threads: usize,
        rng: &mut R,
    ) -> RunOutcome
    where
        P: CountPlayer + Sync + ?Sized,
        R: Rng + ?Sized,
    {
        let q = samples_per_player as u64;
        let backend = sampler.resolve(backend, q);
        let registry = dut_obs::metrics::global();
        registry.set_gauge(Gauge::SamplingBackend, backend.gauge_code());
        if backend == SampleBackend::Histogram {
            registry.add(Counter::HistogramDraws, self.num_players as u64);
        }
        let shared_seed: u64 = rng.random();
        // One master seed per run, split into per-player streams, so
        // the draw for player `i` does not depend on who drew before
        // it — the property that lets the chunked path below run
        // players in parallel without changing any histogram.
        let draw_base: u64 = rng.random();
        let draw_one = |player_id: usize| -> bool {
            let ctx = PlayerContext {
                player_id,
                num_players: self.num_players,
                shared_seed,
            };
            let mut player_rng =
                rand::rngs::StdRng::seed_from_u64(derive_seed(draw_base, player_id as u64));
            let histogram = sampler.draw(backend, q, &mut player_rng);
            player.accepts_counts(&ctx, &histogram)
        };
        let threads = threads.clamp(1, self.num_players);
        #[allow(clippy::cast_precision_loss)]
        let estimated_work_ns = self.num_players as f64
            * dut_probability::costmodel::predicted_draw_ns(backend, sampler.support_size(), q);
        let accepts: Vec<bool> = if threads > 1 && estimated_work_ns > PARALLEL_MIN_WORK_NS {
            let mut accepts = vec![false; self.num_players];
            let chunk = self.num_players.div_ceil(threads);
            let draw_one = &draw_one;
            std::thread::scope(|scope| {
                for (t, out) in accepts.chunks_mut(chunk).enumerate() {
                    let start = t * chunk;
                    scope.spawn(move || {
                        for (offset, slot) in out.iter_mut().enumerate() {
                            *slot = draw_one(start + offset);
                        }
                    });
                }
            });
            accepts
        } else {
            (0..self.num_players).map(draw_one).collect()
        };
        let mut messages = Vec::with_capacity(self.num_players);
        let mut bits = PackedBits::with_capacity(self.num_players);
        for &accept in &accepts {
            bits.push(accept);
            messages.push(Message::from_accept_bit(accept));
        }
        let verdict = rule.decide_packed(&bits);
        record_run(
            verdict,
            (samples_per_player * self.num_players) as u64,
            self.num_players as u64,
        );
        RunOutcome {
            verdict,
            transcript: Transcript {
                messages,
                samples_drawn: vec![samples_per_player; self.num_players],
                shared_seed,
            },
        }
    }

    /// Runs the `r`-bit message protocol with an arbitrary referee.
    pub fn run_messages<S, P, Ref, R>(
        &self,
        sampler: &S,
        samples_per_player: usize,
        player: &P,
        referee: &Ref,
        rng: &mut R,
    ) -> RunOutcome
    where
        S: Sampler,
        P: MessagePlayer + ?Sized,
        Ref: MessageReferee + ?Sized,
        R: Rng + ?Sized,
    {
        let shared_seed: u64 = rng.random();
        let mut messages = Vec::with_capacity(self.num_players);
        for player_id in 0..self.num_players {
            let ctx = PlayerContext {
                player_id,
                num_players: self.num_players,
                shared_seed,
            };
            let samples = sampler.sample_many(samples_per_player, rng);
            messages.push(player.message(&ctx, &samples));
        }
        let verdict = referee.decide(&messages);
        record_run(
            verdict,
            (samples_per_player * self.num_players) as u64,
            messages.iter().map(|m| u64::from(m.len())).sum(),
        );
        RunOutcome {
            verdict,
            transcript: Transcript {
                messages,
                samples_drawn: vec![samples_per_player; self.num_players],
                shared_seed,
            },
        }
    }

    /// Estimates the acceptance probability of a one-bit protocol by
    /// running it `trials` times. Convenience for tests and calibration.
    pub fn acceptance_rate<S, P, R>(
        &self,
        sampler: &S,
        samples_per_player: usize,
        player: &P,
        rule: &DecisionRule,
        trials: usize,
        rng: &mut R,
    ) -> f64
    where
        S: Sampler,
        P: Player + ?Sized,
        R: Rng + ?Sized,
    {
        assert!(trials > 0, "need at least one trial");
        let accepted = (0..trials)
            .filter(|_| {
                self.run(sampler, samples_per_player, player, rule, rng)
                    .verdict
                    .is_accept()
            })
            .count();
        accepted as f64 / trials as f64
    }

    /// Estimates the acceptance probability of a count-consuming
    /// protocol under the chosen backend, running it `trials` times.
    #[allow(clippy::too_many_arguments)]
    pub fn acceptance_rate_counts<P, R>(
        &self,
        sampler: &DualSampler,
        backend: SampleBackend,
        samples_per_player: usize,
        player: &P,
        rule: &DecisionRule,
        trials: usize,
        rng: &mut R,
    ) -> f64
    where
        P: CountPlayer + Sync + ?Sized,
        R: Rng + ?Sized,
    {
        assert!(trials > 0, "need at least one trial");
        let accepted = (0..trials)
            .filter(|_| {
                self.run_counts(sampler, backend, samples_per_player, player, rule, rng)
                    .verdict
                    .is_accept()
            })
            .count();
        accepted as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_probability::families;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    struct AcceptIfSmall;
    impl Player for AcceptIfSmall {
        fn accepts(&self, _ctx: &PlayerContext, samples: &[usize]) -> bool {
            samples.iter().all(|&s| s < 8)
        }
    }

    #[test]
    fn run_draws_right_sample_counts() {
        let net = Network::new(5);
        let sampler = families::uniform(16).alias_sampler();
        let out = net.run(&sampler, 3, &AcceptIfSmall, &DecisionRule::And, &mut rng());
        assert_eq!(out.transcript.samples_drawn, vec![3; 5]);
        assert_eq!(out.transcript.total_samples(), 15);
        assert_eq!(out.transcript.messages.len(), 5);
    }

    #[test]
    fn and_rule_end_to_end() {
        let net = Network::new(4);
        // All mass on small elements: every player accepts.
        let low = families::uniform_on_prefix(16, 4).unwrap().alias_sampler();
        let out = net.run(&low, 5, &AcceptIfSmall, &DecisionRule::And, &mut rng());
        assert_eq!(out.verdict, Verdict::Accept);
        assert_eq!(out.transcript.reject_count(), 0);

        // All mass on large elements: every player rejects.
        let hi = families::point_mass(16, 12).unwrap().alias_sampler();
        let out = net.run(&hi, 5, &AcceptIfSmall, &DecisionRule::And, &mut rng());
        assert_eq!(out.verdict, Verdict::Reject);
        assert_eq!(out.transcript.reject_count(), 4);
    }

    #[test]
    fn per_player_contexts_have_distinct_ids() {
        let net = Network::new(3);
        let sampler = families::uniform(4).alias_sampler();
        let seen = parking_lot::Mutex::new(Vec::new());
        let player = |ctx: &PlayerContext, _s: &[usize]| {
            seen.lock().push((ctx.player_id, ctx.shared_seed));
            true
        };
        net.run(&sampler, 1, &player, &DecisionRule::And, &mut rng());
        let seen = seen.into_inner();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[2].0, 2);
        // Shared seed identical across players.
        assert!(seen.iter().all(|&(_, s)| s == seen[0].1));
    }

    #[test]
    fn asymmetric_counts_respected() {
        let net = Network::new(3);
        let sampler = families::uniform(4).alias_sampler();
        let counts = [1usize, 5, 9];
        let lens = parking_lot::Mutex::new(Vec::new());
        let player = |_ctx: &PlayerContext, s: &[usize]| {
            lens.lock().push(s.len());
            true
        };
        net.run_with_sample_counts(&sampler, &counts, &player, &DecisionRule::And, &mut rng());
        assert_eq!(lens.into_inner(), vec![1, 5, 9]);
    }

    #[test]
    fn message_protocol_collects_payloads() {
        let net = Network::new(4);
        let sampler = families::uniform(8).alias_sampler();
        let player = |ctx: &PlayerContext, _s: &[usize]| Message::new(ctx.player_id as u32, 4);
        let referee = |messages: &[Message]| {
            Verdict::from_accept_bit(messages.iter().map(|m| m.bits()).sum::<u32>() == 6)
        };
        let out = net.run_messages(&sampler, 2, &player, &referee, &mut rng());
        assert_eq!(out.verdict, Verdict::Accept);
        assert_eq!(out.transcript.messages[3].bits(), 3);
    }

    #[test]
    fn acceptance_rate_extremes() {
        let net = Network::new(2);
        let sampler = families::uniform(4).alias_sampler();
        let always = |_: &PlayerContext, _: &[usize]| true;
        let never = |_: &PlayerContext, _: &[usize]| false;
        let mut r = rng();
        assert_eq!(
            net.acceptance_rate(&sampler, 1, &always, &DecisionRule::And, 50, &mut r),
            1.0
        );
        assert_eq!(
            net.acceptance_rate(&sampler, 1, &never, &DecisionRule::And, 50, &mut r),
            0.0
        );
    }

    #[test]
    fn run_counts_on_both_backends() {
        use dut_probability::{Histogram, SampleBackend};
        let net = Network::new(6);
        let dual = families::uniform(32).dual_sampler();
        // Reject when the local histogram shows any collision: on a
        // 32-element uniform domain with 2 samples collisions are rare,
        // so the AND rule accepts most runs under either backend.
        let player = |_ctx: &PlayerContext, h: &Histogram| h.collision_count() == 0;
        for backend in SampleBackend::ALL {
            let mut r = rng();
            let mut accepts = 0usize;
            for _ in 0..200 {
                let out = net.run_counts(&dual, backend, 2, &player, &DecisionRule::And, &mut r);
                assert_eq!(out.transcript.samples_drawn, vec![2; 6]);
                accepts += usize::from(out.verdict.is_accept());
            }
            assert!(accepts > 120, "{backend}: only {accepts}/200 accepted");
        }
    }

    #[test]
    fn run_counts_deterministic_per_seed() {
        use dut_probability::{Histogram, SampleBackend};
        let net = Network::new(4);
        let dual = families::uniform(16).dual_sampler();
        let player = |_ctx: &PlayerContext, h: &Histogram| h.collision_count() < 2;
        for backend in SampleBackend::ALL {
            let a = net.run_counts(
                &dual,
                backend,
                8,
                &player,
                &DecisionRule::Majority,
                &mut rng(),
            );
            let b = net.run_counts(
                &dual,
                backend,
                8,
                &player,
                &DecisionRule::Majority,
                &mut rng(),
            );
            assert_eq!(a, b, "{backend} not deterministic per seed");
        }
    }

    #[test]
    fn run_counts_identical_at_any_thread_count() {
        use dut_probability::{Histogram, SampleBackend};
        // Enough players × samples that the work estimate crosses the
        // parallel threshold and the threaded path actually runs.
        let net = Network::new(64);
        let dual = families::uniform(100).dual_sampler();
        let player = |_ctx: &PlayerContext, h: &Histogram| h.collision_count() < 200;
        for backend in [
            SampleBackend::PerDraw,
            SampleBackend::Histogram,
            SampleBackend::Auto,
        ] {
            let mut outcomes = (1usize..=8).map(|threads| {
                net.run_counts_with_threads(
                    &dual,
                    backend,
                    5_000,
                    &player,
                    &DecisionRule::Majority,
                    threads,
                    &mut rng(),
                )
            });
            let first = outcomes.next().unwrap();
            for (i, out) in outcomes.enumerate() {
                assert_eq!(first, out, "{backend}: threads=1 vs threads={}", i + 2);
            }
        }
    }

    #[test]
    fn run_counts_auto_matches_its_resolved_engine() {
        use dut_probability::{Histogram, SampleBackend};
        let net = Network::new(8);
        let dual = families::uniform(64).dual_sampler();
        let player = |_ctx: &PlayerContext, h: &Histogram| h.collision_count() == 0;
        let q = 4usize;
        let resolved = dual.resolve(SampleBackend::Auto, q as u64);
        let via_auto = net.run_counts(
            &dual,
            SampleBackend::Auto,
            q,
            &player,
            &DecisionRule::And,
            &mut rng(),
        );
        let direct = net.run_counts(&dual, resolved, q, &player, &DecisionRule::And, &mut rng());
        assert_eq!(via_auto, direct);
    }

    #[test]
    fn shared_seed_changes_between_runs() {
        let net = Network::new(1);
        let sampler = families::uniform(2).alias_sampler();
        let player = |_: &PlayerContext, _: &[usize]| true;
        let mut r = rng();
        let a = net.run(&sampler, 1, &player, &DecisionRule::And, &mut r);
        let b = net.run(&sampler, 1, &player, &DecisionRule::And, &mut r);
        assert_ne!(a.transcript.shared_seed, b.transcript.shared_seed);
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn zero_players_panics() {
        let _ = Network::new(0);
    }

    #[test]
    #[should_panic(expected = "one sample count per player")]
    fn mismatched_counts_panic() {
        let net = Network::new(2);
        let sampler = families::uniform(2).alias_sampler();
        let player = |_: &PlayerContext, _: &[usize]| true;
        net.run_with_sample_counts(&sampler, &[1], &player, &DecisionRule::And, &mut rng());
    }
}
