//! Referee-side recovery mechanisms.
//!
//! Both mechanisms trade communication for reliability, and both are
//! *charged*: every delivered copy — redundant or not — counts against
//! the protocol's bit budget (`bits_sent` in the metrics), so `dut
//! report` shows exactly what reliability costs.

use std::fmt;

/// How the referee and players fight message loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// No recovery: one transmission per player, silence is final.
    None,
    /// Blind repetition coding: every player transmits its bit
    /// `copies` times and the referee majority-decodes the copies it
    /// receives. Redundancy is spent whether or not it was needed.
    Repetition {
        /// Transmissions per player (`≥ 1`; `1` is equivalent to
        /// [`Recovery::None`]).
        copies: usize,
    },
    /// Acknowledgment/timeout semantics: the referee ACKs each copy it
    /// receives; a player retransmits only while unacknowledged, up to
    /// `max_attempts` total attempts, after which the referee records
    /// a timeout and falls back to its
    /// [`MissingPolicy`](crate::MissingPolicy). Spends redundancy only
    /// on actual losses.
    AckRetry {
        /// Maximum transmissions per player (`≥ 1`).
        max_attempts: usize,
    },
}

impl Recovery {
    /// Upper bound on transmission rounds this mechanism runs.
    #[must_use]
    pub(crate) fn rounds(self) -> usize {
        match self {
            Recovery::None => 1,
            Recovery::Repetition { copies } => copies,
            Recovery::AckRetry { max_attempts } => max_attempts,
        }
    }

    /// Whether retransmissions stop for a player once one copy got
    /// through.
    #[must_use]
    pub(crate) fn stops_after_ack(self) -> bool {
        matches!(self, Recovery::None | Recovery::AckRetry { .. })
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on a zero `copies`/`max_attempts`.
    pub(crate) fn validate(self) {
        match self {
            Recovery::None => {}
            Recovery::Repetition { copies } => {
                assert!(copies >= 1, "repetition needs at least one copy");
            }
            Recovery::AckRetry { max_attempts } => {
                assert!(max_attempts >= 1, "ack-retry needs at least one attempt");
            }
        }
    }
}

impl fmt::Display for Recovery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Recovery::None => write!(f, "none"),
            Recovery::Repetition { copies } => write!(f, "repeat({copies})"),
            Recovery::AckRetry { max_attempts } => write!(f, "ack({max_attempts})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_and_ack_semantics() {
        assert_eq!(Recovery::None.rounds(), 1);
        assert_eq!(Recovery::Repetition { copies: 3 }.rounds(), 3);
        assert_eq!(Recovery::AckRetry { max_attempts: 4 }.rounds(), 4);
        assert!(Recovery::None.stops_after_ack());
        assert!(Recovery::AckRetry { max_attempts: 4 }.stops_after_ack());
        assert!(!Recovery::Repetition { copies: 3 }.stops_after_ack());
    }

    #[test]
    fn display_labels() {
        assert_eq!(Recovery::None.to_string(), "none");
        assert_eq!(Recovery::Repetition { copies: 3 }.to_string(), "repeat(3)");
        assert_eq!(Recovery::AckRetry { max_attempts: 2 }.to_string(), "ack(2)");
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn zero_copies_rejected() {
        Recovery::Repetition { copies: 0 }.validate();
    }
}
