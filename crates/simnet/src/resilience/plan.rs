//! The [`FaultPlan`] abstraction and the stochastic baseline models.
//!
//! A fault plan owns every way an execution can deviate from the
//! reliable network: it decides, per player, how many samples are
//! drawn and whether the player survives to transmit
//! ([`FaultPlan::pre_sample`]), it may corrupt computed bits at the
//! source ([`FaultPlan::corrupt`]), and it adjudicates each
//! transmission round ([`FaultPlan::deliver_round`]). Plans are
//! stateful (`&mut self`) so correlated channels like
//! [`GilbertElliott`](super::GilbertElliott) can carry burst state
//! across players and retry rounds.
//!
//! # Coupling discipline
//!
//! Stochastic plans draw their randomness from a *dedicated fault RNG*
//! (see [`ResilientNetwork::run`](super::ResilientNetwork::run)) and
//! draw **unconditionally** — one uniform per decision point whether or
//! not the fault fires. Two consequences, both load-bearing for the
//! experiments:
//!
//! * turning faults on/off (or changing rates) never perturbs which
//!   samples players draw, so fault-free and faulty runs are *paired*;
//! * for a fixed seed the fault indicators are coupled across rates
//!   (`u < p` is monotone in `p`), so measured error-vs-fault-rate
//!   curves are exactly monotone per trial, not just in expectation —
//!   the graceful-degradation plots are noise-free by construction.

use rand::rngs::StdRng;
use rand::Rng;

/// What a fault plan decided about one player before transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreSample {
    /// How many of the player's `q` samples it actually draws (a crash
    /// mid-sampling consumes a prefix; these are still charged to the
    /// sample budget).
    pub samples: usize,
    /// Whether the player survives to transmit its bit.
    pub sends: bool,
}

impl PreSample {
    /// A healthy player: draws all `q` samples and transmits.
    #[must_use]
    pub fn healthy(q: usize) -> Self {
        Self {
            samples: q,
            sends: true,
        }
    }

    /// A player that crashed after drawing `samples` samples.
    #[must_use]
    pub fn crashed(samples: usize) -> Self {
        Self {
            samples,
            sends: false,
        }
    }
}

/// A pluggable fault model for [`ResilientNetwork`](super::ResilientNetwork).
///
/// Implementations range from iid loss ([`IidFaults`]) through bursty
/// channels ([`GilbertElliott`](super::GilbertElliott)) to adversaries
/// ([`ByzantinePlan`](super::ByzantinePlan),
/// [`TargetedLoss`](super::TargetedLoss)).
pub trait FaultPlan {
    /// Short identifier for tables, manifests, and CSV rows.
    fn label(&self) -> String;

    /// Called once at the start of every execution, before any player
    /// acts; stateful channels re-draw their initial state here.
    fn begin_run(&mut self, k: usize, rng: &mut StdRng) {
        let _ = (k, rng);
    }

    /// The fate of player `player_id` before transmission. The default
    /// is a healthy player.
    fn pre_sample(&mut self, player_id: usize, q: usize, rng: &mut StdRng) -> PreSample {
        let _ = (player_id, rng);
        PreSample::healthy(q)
    }

    /// Corrupts computed bits at the source (Byzantine players).
    /// `bits[i]` is `None` for crashed players. Returns how many bits
    /// were actually altered. The default corrupts nothing.
    fn corrupt(&mut self, bits: &mut [Option<bool>], rng: &mut StdRng) -> u64 {
        let _ = (bits, rng);
        0
    }

    /// Adjudicates one transmission round. `bits[i]` is the value
    /// player `i` transmits this round (`None`: crashed, or not
    /// retransmitting). Returns one entry per player: `Some(v)` — a
    /// copy carrying `v` reached the referee; `None` — lost (or
    /// nothing was sent). Must preserve length.
    fn deliver_round(&mut self, bits: &[Option<bool>], rng: &mut StdRng) -> Vec<Option<bool>>;
}

/// The fault-free plan: every player is healthy and every message is
/// delivered. Useful as the control arm of paired experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliablePlan;

impl FaultPlan for ReliablePlan {
    fn label(&self) -> String {
        "reliable".to_owned()
    }

    fn deliver_round(&mut self, bits: &[Option<bool>], _rng: &mut StdRng) -> Vec<Option<bool>> {
        bits.to_vec()
    }
}

fn assert_probability(p: f64, what: &str) {
    assert!((0.0..=1.0).contains(&p), "{what} probability out of range");
}

/// Independent faults: each player crashes before sampling with
/// probability `crash`, and each transmitted copy is lost with
/// probability `loss` — the model [`FaultyNetwork`](crate::FaultyNetwork)
/// has always exposed, now expressed as a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IidFaults {
    crash: f64,
    loss: f64,
}

impl IidFaults {
    /// Validates and builds the model.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(crash: f64, loss: f64) -> Self {
        assert_probability(crash, "crash");
        assert_probability(loss, "loss");
        Self { crash, loss }
    }

    /// Pure message loss at rate `loss`.
    #[must_use]
    pub fn loss_only(loss: f64) -> Self {
        Self::new(0.0, loss)
    }

    /// Crash probability.
    #[must_use]
    pub fn crash_probability(&self) -> f64 {
        self.crash
    }

    /// Per-copy loss probability.
    #[must_use]
    pub fn loss_probability(&self) -> f64 {
        self.loss
    }
}

impl FaultPlan for IidFaults {
    fn label(&self) -> String {
        format!("iid(crash={},loss={})", self.crash, self.loss)
    }

    fn pre_sample(&mut self, _player_id: usize, q: usize, rng: &mut StdRng) -> PreSample {
        // Unconditional draw: see the module docs on coupling.
        let u: f64 = rng.random();
        if u < self.crash {
            PreSample::crashed(0)
        } else {
            PreSample::healthy(q)
        }
    }

    fn deliver_round(&mut self, bits: &[Option<bool>], rng: &mut StdRng) -> Vec<Option<bool>> {
        bits.iter()
            .map(|&bit| {
                // One draw per slot even when nothing is sent, so the
                // fault stream is independent of crash outcomes.
                let u: f64 = rng.random();
                bit.filter(|_| u >= self.loss)
            })
            .collect()
    }
}

/// Crash-with-partial-samples: with probability `crash` a player dies
/// *mid-sampling* — it has already consumed a uniformly-random prefix
/// of its `q` samples (charged to the sample budget) but never
/// computes or sends a bit. Stresses the distinction between samples
/// drawn and bits delivered in the accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialCrash {
    crash: f64,
}

impl PartialCrash {
    /// Validates and builds the model.
    ///
    /// # Panics
    ///
    /// Panics if `crash` is outside `[0, 1]`.
    #[must_use]
    pub fn new(crash: f64) -> Self {
        assert_probability(crash, "crash");
        Self { crash }
    }

    /// Crash probability.
    #[must_use]
    pub fn crash_probability(&self) -> f64 {
        self.crash
    }
}

impl FaultPlan for PartialCrash {
    fn label(&self) -> String {
        format!("partial-crash({})", self.crash)
    }

    fn pre_sample(&mut self, _player_id: usize, q: usize, rng: &mut StdRng) -> PreSample {
        let u: f64 = rng.random();
        // Drawn unconditionally so the fault stream has a fixed shape.
        let prefix = if q == 0 { 0 } else { rng.random_range(0..q) };
        if u < self.crash {
            PreSample::crashed(prefix)
        } else {
            PreSample::healthy(q)
        }
    }

    fn deliver_round(&mut self, bits: &[Option<bool>], _rng: &mut StdRng) -> Vec<Option<bool>> {
        bits.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn reliable_plan_delivers_everything() {
        let mut plan = ReliablePlan;
        let bits = vec![Some(true), None, Some(false)];
        assert_eq!(plan.deliver_round(&bits, &mut rng(1)), bits);
        assert_eq!(plan.pre_sample(0, 7, &mut rng(1)), PreSample::healthy(7));
    }

    #[test]
    fn iid_loss_couples_across_rates() {
        // Same seed, higher rate: the lost set can only grow.
        let bits = vec![Some(true); 64];
        let lost_at = |loss: f64| -> Vec<bool> {
            let mut plan = IidFaults::loss_only(loss);
            plan.deliver_round(&bits, &mut rng(9))
                .iter()
                .map(Option::is_none)
                .collect()
        };
        let low = lost_at(0.2);
        let high = lost_at(0.6);
        for (i, (&l, &h)) in low.iter().zip(&high).enumerate() {
            assert!(!l || h, "slot {i} lost at 0.2 but delivered at 0.6");
        }
        assert!(high.iter().filter(|&&x| x).count() > low.iter().filter(|&&x| x).count());
    }

    #[test]
    fn iid_crash_rate_is_roughly_respected() {
        let mut plan = IidFaults::new(0.5, 0.0);
        let mut r = rng(4);
        let crashes = (0..1000)
            .filter(|_| !plan.pre_sample(0, 3, &mut r).sends)
            .count();
        assert!((380..=620).contains(&crashes), "{crashes} crashes");
    }

    #[test]
    fn partial_crash_consumes_a_strict_prefix() {
        let mut plan = PartialCrash::new(1.0);
        let mut r = rng(5);
        for _ in 0..50 {
            let pre = plan.pre_sample(0, 10, &mut r);
            assert!(!pre.sends);
            assert!(pre.samples < 10);
        }
        // q = 0 is safe.
        assert_eq!(plan.pre_sample(0, 0, &mut r).samples, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn iid_rejects_bad_probability() {
        let _ = IidFaults::new(0.1, 1.5);
    }
}
