//! The fault-aware network: [`ResilientNetwork`] runs the one-bit
//! protocol under an arbitrary [`FaultPlan`] with optional
//! [`Recovery`], and accounts honestly for everything that happened.

use super::plan::FaultPlan;
use super::recovery::Recovery;
use crate::message::Message;
use crate::network::{record_run, Transcript};
use crate::player::{Player, PlayerContext};
use crate::rule::{DecisionRule, Verdict};
use crate::MissingPolicy;
use dut_obs::metrics::Counter;
use dut_probability::Sampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything that went wrong (and was repaired) in one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Players that crashed before transmitting.
    pub crashed: u64,
    /// Copies lost in transit, summed over all transmission rounds.
    pub lost: u64,
    /// Bits corrupted at the source by Byzantine players.
    pub byzantine_flips: u64,
    /// Transmission attempts after each player's first (repetition
    /// copies and ack-triggered retransmissions alike).
    pub retries: u64,
    /// Delivered copies beyond the first per player — redundancy that
    /// reached the referee but carried no new bit.
    pub redundant_bits: u64,
    /// Players whose first copy was lost but who got a later copy
    /// through — losses that recovery actually repaired.
    pub recovered: u64,
    /// Players the referee gave up on after exhausting the recovery
    /// budget (only possible with [`Recovery::AckRetry`] /
    /// [`Recovery::Repetition`]; without recovery silence is immediate,
    /// not a timeout).
    pub timeouts: u64,
    /// Copies that reached the referee — what the communication budget
    /// is charged for.
    pub delivered_bits: u64,
}

impl FaultStats {
    fn record(&self) {
        let registry = dut_obs::metrics::global();
        registry.add(Counter::FaultsCrashed, self.crashed);
        registry.add(Counter::FaultsMessagesLost, self.lost);
        registry.add(Counter::FaultRetries, self.retries);
        registry.add(Counter::FaultRedundantBits, self.redundant_bits);
        registry.add(Counter::FaultByzantineFlips, self.byzantine_flips);
        registry.add(Counter::FaultRecoveredBits, self.recovered);
        registry.add(Counter::FaultTimeouts, self.timeouts);
    }
}

/// The result of one fault-injected execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilientOutcome {
    /// The referee's verdict.
    pub verdict: Verdict,
    /// The effective transcript the referee decided on (after missing
    /// policy and majority decoding).
    pub transcript: Transcript,
    /// Fault and recovery accounting for this execution.
    pub faults: FaultStats,
}

/// A simultaneous-message network whose executions pass through a
/// pluggable [`FaultPlan`], with referee-side [`Recovery`] and a
/// [`MissingPolicy`] for players it never hears from.
///
/// # Randomness
///
/// Each run derives three independent streams from the caller's RNG:
/// the shared-randomness seed, a *sampling* stream and a *fault*
/// stream. Sampling always draws `q` values per player from its own
/// stream (truncating for partial crashes), so the samples a player
/// would see are identical across fault models, rates and recovery
/// settings for a fixed caller RNG state — fault sweeps are paired
/// experiments by construction (see the [`plan`](super::plan) module
/// docs for the coupling discipline on the fault side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilientNetwork {
    num_players: usize,
    missing_policy: MissingPolicy,
    recovery: Recovery,
}

impl ResilientNetwork {
    /// A network of `num_players` players with no recovery.
    ///
    /// # Panics
    ///
    /// Panics if `num_players == 0`.
    #[must_use]
    pub fn new(num_players: usize, missing_policy: MissingPolicy) -> Self {
        assert!(num_players > 0, "network needs at least one player");
        Self {
            num_players,
            missing_policy,
            recovery: Recovery::None,
        }
    }

    /// Sets the recovery mechanism.
    ///
    /// # Panics
    ///
    /// Panics on zero-round recovery parameters.
    #[must_use]
    pub fn with_recovery(mut self, recovery: Recovery) -> Self {
        recovery.validate();
        self.recovery = recovery;
        self
    }

    /// Number of players `k`.
    #[must_use]
    pub fn num_players(&self) -> usize {
        self.num_players
    }

    /// The missing-bit policy.
    #[must_use]
    pub fn missing_policy(&self) -> MissingPolicy {
        self.missing_policy
    }

    /// The recovery mechanism.
    #[must_use]
    pub fn recovery(&self) -> Recovery {
        self.recovery
    }

    /// Runs one execution of the one-bit protocol under `plan`.
    ///
    /// Phases: `begin_run` → per-player `pre_sample` + sampling →
    /// bit computation → `corrupt` (Byzantine) → up to
    /// [`Recovery::rounds`] transmission rounds through
    /// `deliver_round` → majority decoding (ties decode to *reject*,
    /// the fail-safe direction) → missing policy → decision rule.
    ///
    /// If every bit is missing under [`MissingPolicy::Exclude`] the
    /// referee accepts (it has no evidence to act on), matching
    /// [`FaultyNetwork`](crate::FaultyNetwork).
    pub fn run<S, P, F, R>(
        &self,
        sampler: &S,
        samples_per_player: usize,
        player: &P,
        rule: &DecisionRule,
        plan: &mut F,
        rng: &mut R,
    ) -> ResilientOutcome
    where
        S: Sampler,
        P: Player + ?Sized,
        F: FaultPlan + ?Sized,
        R: Rng + ?Sized,
    {
        let k = self.num_players;
        let q = samples_per_player;
        let shared_seed: u64 = rng.random();
        let mut sample_rng = StdRng::seed_from_u64(rng.random());
        let mut fault_rng = StdRng::seed_from_u64(rng.random());
        let mut stats = FaultStats::default();

        plan.begin_run(k, &mut fault_rng);

        // Phase 1: sampling and bit computation. The sample stream
        // always advances by exactly q per player.
        let mut bits: Vec<Option<bool>> = Vec::with_capacity(k);
        let mut samples_drawn = Vec::with_capacity(k);
        for player_id in 0..k {
            let pre = plan.pre_sample(player_id, q, &mut fault_rng);
            let samples = sampler.sample_many(q, &mut sample_rng);
            if pre.sends {
                let ctx = PlayerContext {
                    player_id,
                    num_players: k,
                    shared_seed,
                };
                bits.push(Some(player.accepts(&ctx, &samples)));
                samples_drawn.push(q);
            } else {
                bits.push(None);
                samples_drawn.push(pre.samples.min(q));
                stats.crashed += 1;
            }
        }

        // Phase 2: source corruption.
        stats.byzantine_flips = plan.corrupt(&mut bits, &mut fault_rng);

        // Phase 3: transmission rounds.
        let mut copies: Vec<Vec<bool>> = vec![Vec::new(); k];
        let mut first_copy_lost = vec![false; k];
        for round in 0..self.recovery.rounds() {
            let sending: Vec<Option<bool>> = bits
                .iter()
                .enumerate()
                .map(|(i, &bit)| {
                    bit.filter(|_| !self.recovery.stops_after_ack() || copies[i].is_empty())
                })
                .collect();
            let senders = sending.iter().filter(|b| b.is_some()).count() as u64;
            if senders == 0 {
                break;
            }
            if round > 0 {
                stats.retries += senders;
            }
            let delivered = plan.deliver_round(&sending, &mut fault_rng);
            assert_eq!(delivered.len(), k, "fault plan changed the player count");
            for (i, (sent, got)) in sending.iter().zip(&delivered).enumerate() {
                match (sent, got) {
                    (Some(_), Some(v)) => copies[i].push(*v),
                    (Some(_), None) => {
                        stats.lost += 1;
                        if round == 0 {
                            first_copy_lost[i] = true;
                        }
                    }
                    (None, _) => {}
                }
            }
        }

        // Phase 4: referee-side decoding. Majority per player; ties
        // decode to reject — the fail-safe direction for a tester.
        let mut decoded: Vec<Option<bool>> = Vec::with_capacity(k);
        for (i, player_copies) in copies.iter().enumerate() {
            stats.delivered_bits += player_copies.len() as u64;
            stats.redundant_bits += player_copies.len().saturating_sub(1) as u64;
            if player_copies.is_empty() {
                decoded.push(None);
                if bits[i].is_some() && !matches!(self.recovery, Recovery::None) {
                    stats.timeouts += 1;
                }
            } else {
                if first_copy_lost[i] {
                    stats.recovered += 1;
                }
                let accepts = player_copies.iter().filter(|&&b| b).count();
                decoded.push(Some(2 * accepts > player_copies.len()));
            }
        }

        // Phase 5: missing policy and decision.
        let effective: Vec<bool> = match self.missing_policy {
            MissingPolicy::AssumeAccept => decoded.iter().map(|b| b.unwrap_or(true)).collect(),
            MissingPolicy::AssumeReject => decoded.iter().map(|b| b.unwrap_or(false)).collect(),
            MissingPolicy::Exclude => decoded.iter().filter_map(|&b| b).collect(),
        };
        let verdict = if effective.is_empty() {
            Verdict::Accept
        } else {
            rule.decide(&effective)
        };

        stats.record();
        record_run(
            verdict,
            samples_drawn.iter().map(|&s| s as u64).sum(),
            stats.delivered_bits,
        );

        let messages = effective
            .iter()
            .map(|&b| Message::from_accept_bit(b))
            .collect();
        ResilientOutcome {
            verdict,
            transcript: Transcript {
                messages,
                samples_drawn,
                shared_seed,
            },
            faults: stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::plan::{IidFaults, PartialCrash, ReliablePlan};
    use super::*;
    use dut_probability::families;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    struct AlwaysAccept;
    impl Player for AlwaysAccept {
        fn accepts(&self, _: &PlayerContext, _: &[usize]) -> bool {
            true
        }
    }

    struct AlwaysReject;
    impl Player for AlwaysReject {
        fn accepts(&self, _: &PlayerContext, _: &[usize]) -> bool {
            false
        }
    }

    #[test]
    fn reliable_plan_is_faithful() {
        let net = ResilientNetwork::new(6, MissingPolicy::Exclude);
        let sampler = families::uniform(8).alias_sampler();
        let out = net.run(
            &sampler,
            3,
            &AlwaysReject,
            &DecisionRule::And,
            &mut ReliablePlan,
            &mut rng(1),
        );
        assert!(out.verdict.is_reject());
        assert_eq!(out.transcript.messages.len(), 6);
        assert_eq!(out.transcript.total_samples(), 18);
        assert_eq!(
            out.faults,
            FaultStats {
                delivered_bits: 6,
                ..FaultStats::default()
            }
        );
    }

    #[test]
    fn total_loss_accepts_under_exclude() {
        let net = ResilientNetwork::new(4, MissingPolicy::Exclude);
        let sampler = families::uniform(8).alias_sampler();
        let mut plan = IidFaults::loss_only(1.0);
        let out = net.run(
            &sampler,
            2,
            &AlwaysReject,
            &DecisionRule::And,
            &mut plan,
            &mut rng(2),
        );
        assert!(out.verdict.is_accept());
        assert_eq!(out.transcript.messages.len(), 0);
        assert_eq!(out.faults.lost, 4);
        assert_eq!(out.faults.delivered_bits, 0);
        // Lost messages still consumed samples.
        assert_eq!(out.transcript.total_samples(), 8);
    }

    #[test]
    fn repetition_defeats_heavy_loss() {
        // 60% loss kills most single transmissions; 9 blind copies
        // essentially always get at least one through.
        let net = ResilientNetwork::new(8, MissingPolicy::AssumeAccept)
            .with_recovery(Recovery::Repetition { copies: 9 });
        let sampler = families::uniform(8).alias_sampler();
        let mut r = rng(3);
        for _ in 0..30 {
            let mut plan = IidFaults::loss_only(0.6);
            let out = net.run(
                &sampler,
                1,
                &AlwaysReject,
                &DecisionRule::And,
                &mut plan,
                &mut r,
            );
            assert!(out.verdict.is_reject());
            // Redundancy was delivered and charged.
            assert!(out.faults.redundant_bits > 0);
            assert!(out.faults.delivered_bits > 8 / 2);
            assert_eq!(out.faults.retries, 8 * 8);
        }
    }

    #[test]
    fn ack_retry_spends_only_on_losses() {
        let net = ResilientNetwork::new(8, MissingPolicy::AssumeAccept)
            .with_recovery(Recovery::AckRetry { max_attempts: 5 });
        let sampler = families::uniform(8).alias_sampler();
        // No faults: one attempt each, no retries, no redundancy.
        let out = net.run(
            &sampler,
            1,
            &AlwaysAccept,
            &DecisionRule::And,
            &mut ReliablePlan,
            &mut rng(4),
        );
        assert_eq!(out.faults.retries, 0);
        assert_eq!(out.faults.redundant_bits, 0);
        assert_eq!(out.faults.delivered_bits, 8);
    }

    #[test]
    fn ack_retry_recovers_lost_bits_and_counts_them() {
        let net = ResilientNetwork::new(16, MissingPolicy::AssumeAccept)
            .with_recovery(Recovery::AckRetry { max_attempts: 12 });
        let sampler = families::uniform(8).alias_sampler();
        let mut r = rng(5);
        let mut saw_recovery = false;
        for _ in 0..20 {
            let mut plan = IidFaults::loss_only(0.5);
            let out = net.run(
                &sampler,
                1,
                &AlwaysReject,
                &DecisionRule::And,
                &mut plan,
                &mut r,
            );
            assert!(out.verdict.is_reject());
            if out.faults.recovered > 0 {
                saw_recovery = true;
                assert!(out.faults.retries > 0);
            }
            // Ack-retry delivers at most one copy per player.
            assert_eq!(out.faults.redundant_bits, 0);
            assert!(out.faults.delivered_bits <= 16);
        }
        assert!(saw_recovery, "50% loss never needed recovery in 20 runs");
    }

    #[test]
    fn timeouts_fire_when_recovery_budget_exhausted() {
        let net = ResilientNetwork::new(4, MissingPolicy::AssumeAccept)
            .with_recovery(Recovery::AckRetry { max_attempts: 3 });
        let sampler = families::uniform(8).alias_sampler();
        let mut plan = IidFaults::loss_only(1.0);
        let out = net.run(
            &sampler,
            1,
            &AlwaysReject,
            &DecisionRule::And,
            &mut plan,
            &mut rng(6),
        );
        assert_eq!(out.faults.timeouts, 4);
        assert_eq!(out.faults.lost, 12);
        assert_eq!(out.faults.retries, 8);
        // AssumeAccept: every silent player reads as accept.
        assert!(out.verdict.is_accept());
    }

    #[test]
    fn partial_crash_charges_sample_prefix() {
        let net = ResilientNetwork::new(10, MissingPolicy::Exclude);
        let sampler = families::uniform(8).alias_sampler();
        let mut plan = PartialCrash::new(1.0);
        let out = net.run(
            &sampler,
            10,
            &AlwaysAccept,
            &DecisionRule::And,
            &mut plan,
            &mut rng(7),
        );
        assert_eq!(out.faults.crashed, 10);
        // Prefixes are strictly below q but the budget is still charged.
        assert!(out.transcript.samples_drawn.iter().all(|&s| s < 10));
        assert!(out.verdict.is_accept());
    }

    #[test]
    fn sample_stream_is_isolated_from_faults() {
        // Same caller RNG state, wildly different fault plans: the
        // shared seed and each player's sample budget positions must
        // coincide, so runs are paired.
        let sampler = families::uniform(64).alias_sampler();
        let reliable = ResilientNetwork::new(8, MissingPolicy::Exclude).run(
            &sampler,
            4,
            &AlwaysAccept,
            &DecisionRule::And,
            &mut ReliablePlan,
            &mut rng(8),
        );
        let mut lossy = IidFaults::loss_only(0.9);
        let faulty = ResilientNetwork::new(8, MissingPolicy::Exclude).run(
            &sampler,
            4,
            &AlwaysAccept,
            &DecisionRule::And,
            &mut lossy,
            &mut rng(8),
        );
        assert_eq!(
            reliable.transcript.shared_seed,
            faulty.transcript.shared_seed
        );
    }

    #[test]
    fn majority_decoding_breaks_ties_toward_reject() {
        // A plan that flips every second copy of player 0 produces a
        // 1–1 tie over two repetition rounds; the decoder must read it
        // as reject.
        struct AlternatingCorruption {
            round: usize,
        }
        impl FaultPlan for AlternatingCorruption {
            fn label(&self) -> String {
                "alternating".to_owned()
            }
            fn deliver_round(
                &mut self,
                bits: &[Option<bool>],
                _rng: &mut StdRng,
            ) -> Vec<Option<bool>> {
                self.round += 1;
                bits.iter()
                    .map(|&b| b.map(|v| if self.round.is_multiple_of(2) { !v } else { v }))
                    .collect()
            }
        }
        let net = ResilientNetwork::new(1, MissingPolicy::Exclude)
            .with_recovery(Recovery::Repetition { copies: 2 });
        let sampler = families::uniform(8).alias_sampler();
        let out = net.run(
            &sampler,
            1,
            &AlwaysAccept,
            &DecisionRule::And,
            &mut AlternatingCorruption { round: 0 },
            &mut rng(9),
        );
        assert!(out.verdict.is_reject());
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn zero_players_rejected() {
        let _ = ResilientNetwork::new(0, MissingPolicy::Exclude);
    }
}
