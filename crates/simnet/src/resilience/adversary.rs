//! Adversarial fault models: Byzantine players and targeted loss.
//!
//! The paper's locality trade-off is usually told with benign faults;
//! these plans tell the sharper version. A single Byzantine player
//! breaks the AND rule completely (it can raise a permanent false
//! alarm, or — flipped the other way — is one of the honest alarms an
//! adversary must merely outshout), while `Threshold { min_rejects: T }`
//! tolerates any `t < min(T, k − T + 1)` corruptions (see
//! [`byzantine_tolerance`](super::byzantine_tolerance)). A targeted
//! dropper that sees the transcript before choosing victims silences
//! the AND rule with a budget of **one** message per round.

use super::plan::FaultPlan;
use rand::rngs::StdRng;
use rand::Rng;

/// What a corrupted player does with its honest bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineBehavior {
    /// Send the negation of the honest bit.
    Flip,
    /// Send a fixed bit regardless of the samples (`true` silences
    /// alarms; `false` raises permanent ones).
    Fix(bool),
}

/// Up to `t` Byzantine players (ids `0..t`, the adversary's choice is
/// WLOG by symmetry of the protocol) corrupt their bit at the source;
/// optionally the surrounding channel also drops copies iid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ByzantinePlan {
    corrupted: usize,
    behavior: ByzantineBehavior,
    loss: f64,
}

impl ByzantinePlan {
    /// `t` bit-flipping players on an otherwise reliable channel.
    #[must_use]
    pub fn flippers(t: usize) -> Self {
        Self {
            corrupted: t,
            behavior: ByzantineBehavior::Flip,
            loss: 0.0,
        }
    }

    /// `t` players that always send `bit` on an otherwise reliable
    /// channel.
    #[must_use]
    pub fn fixers(t: usize, bit: bool) -> Self {
        Self {
            corrupted: t,
            behavior: ByzantineBehavior::Fix(bit),
            loss: 0.0,
        }
    }

    /// Adds iid per-copy loss at rate `loss` on top of the corruption.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]`.
    #[must_use]
    pub fn with_message_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss probability out of range");
        self.loss = loss;
        self
    }

    /// Number of corrupted players `t`.
    #[must_use]
    pub fn num_corrupted(&self) -> usize {
        self.corrupted
    }
}

impl FaultPlan for ByzantinePlan {
    fn label(&self) -> String {
        let kind = match self.behavior {
            ByzantineBehavior::Flip => "flip".to_owned(),
            ByzantineBehavior::Fix(bit) => format!("fix={}", u8::from(bit)),
        };
        format!("byzantine(t={},{kind},loss={})", self.corrupted, self.loss)
    }

    fn corrupt(&mut self, bits: &mut [Option<bool>], _rng: &mut StdRng) -> u64 {
        let mut flips = 0u64;
        for b in bits.iter_mut().take(self.corrupted).flatten() {
            let forced = match self.behavior {
                ByzantineBehavior::Flip => !*b,
                ByzantineBehavior::Fix(v) => v,
            };
            if forced != *b {
                *b = forced;
                flips += 1;
            }
        }
        flips
    }

    fn deliver_round(&mut self, bits: &[Option<bool>], rng: &mut StdRng) -> Vec<Option<bool>> {
        bits.iter()
            .map(|&bit| {
                let u: f64 = rng.random();
                bit.filter(|_| u >= self.loss)
            })
            .collect()
    }
}

/// A transcript-aware dropper: each round it inspects every bit in
/// flight and deletes up to `budget` copies carrying `suppressed_bit`.
/// With `suppressed_bit = false` (the alarm bit) and budget 1 it is
/// the minimal adversary that defeats the AND rule outright, while a
/// `Threshold { min_rejects: T }` referee forces it to spend `T`
/// deletions *per round* — the communication-side reading of the
/// paper's locality trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetedLoss {
    budget: usize,
    suppressed_bit: bool,
}

impl TargetedLoss {
    /// An adversary deleting up to `budget` copies of `suppressed_bit`
    /// per round.
    #[must_use]
    pub fn new(budget: usize, suppressed_bit: bool) -> Self {
        Self {
            budget,
            suppressed_bit,
        }
    }

    /// The alarm silencer: deletes up to `budget` *reject* bits per
    /// round, pushing every rule towards accept.
    #[must_use]
    pub fn alarm_silencer(budget: usize) -> Self {
        Self::new(budget, false)
    }

    /// Per-round deletion budget.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }
}

impl FaultPlan for TargetedLoss {
    fn label(&self) -> String {
        format!(
            "targeted(budget={},drop={})",
            self.budget,
            if self.suppressed_bit {
                "accepts"
            } else {
                "alarms"
            }
        )
    }

    fn deliver_round(&mut self, bits: &[Option<bool>], _rng: &mut StdRng) -> Vec<Option<bool>> {
        let mut remaining = self.budget;
        bits.iter()
            .map(|&bit| match bit {
                Some(v) if v == self.suppressed_bit && remaining > 0 => {
                    remaining -= 1;
                    None
                }
                other => other,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn flippers_negate_only_their_players() {
        let mut plan = ByzantinePlan::flippers(2);
        let mut bits = vec![Some(true), Some(false), Some(true), None];
        let flips = plan.corrupt(&mut bits, &mut rng(1));
        assert_eq!(flips, 2);
        assert_eq!(bits, vec![Some(false), Some(true), Some(true), None]);
    }

    #[test]
    fn fixers_count_only_real_changes() {
        let mut plan = ByzantinePlan::fixers(3, true);
        let mut bits = vec![Some(true), Some(false), None, Some(false)];
        let flips = plan.corrupt(&mut bits, &mut rng(2));
        // Player 0 already sent true; player 2 crashed.
        assert_eq!(flips, 1);
        assert_eq!(bits, vec![Some(true), Some(true), None, Some(false)]);
    }

    #[test]
    fn byzantine_channel_loss_applies() {
        let mut plan = ByzantinePlan::flippers(0).with_message_loss(1.0);
        let out = plan.deliver_round(&[Some(true), Some(false)], &mut rng(3));
        assert_eq!(out, vec![None, None]);
    }

    #[test]
    fn targeted_loss_spends_budget_on_matching_bits() {
        let mut plan = TargetedLoss::alarm_silencer(2);
        let bits = vec![Some(false), Some(true), Some(false), Some(false)];
        let out = plan.deliver_round(&bits, &mut rng(4));
        // The first two alarms die; the third survives (budget spent).
        assert_eq!(out, vec![None, Some(true), None, Some(false)]);
    }

    #[test]
    fn targeted_loss_budget_resets_each_round() {
        let mut plan = TargetedLoss::alarm_silencer(1);
        let bits = vec![Some(false)];
        for _ in 0..3 {
            assert_eq!(plan.deliver_round(&bits, &mut rng(5)), vec![None]);
        }
    }
}
