//! Fault-aware decision rules.
//!
//! Two questions, both answerable in closed form for threshold-type
//! rules:
//!
//! * **Byzantine tolerance.** `Threshold { min_rejects: T }` survives
//!   `t` corrupted players iff `t < min(T, k − T + 1)`: fewer than `T`
//!   fixed-reject players cannot force a reject on their own, and
//!   fewer than `k − T + 1` fixed-accept players cannot silence `T`
//!   honest alarms. The AND rule is `T = 1`, so its tolerance is
//!   **zero** — one Byzantine player decides every execution. This is
//!   the robustness price of the locality the paper buys with AND.
//!
//! * **Threshold recalibration.** Under benign faults at a known rate,
//!   the missing policy biases the reject count in a predictable
//!   direction; [`RobustRule`] shifts `T` to compensate and exposes the
//!   adjusted rule.

use crate::rule::DecisionRule;
use crate::MissingPolicy;
use dut_stats::convert::{ceil_to_usize, floor_to_usize, round_to_usize};

/// The reject threshold `T` equivalent to `rule` on `k` one-bit
/// players: the rule rejects iff at least `T` players reject. `None`
/// for [`DecisionRule::Custom`], which need not be a threshold
/// function.
#[must_use]
pub fn threshold_equivalent(rule: &DecisionRule, k: usize) -> Option<usize> {
    match rule {
        DecisionRule::And => Some(1),
        DecisionRule::Or => Some(k),
        DecisionRule::Threshold { min_rejects } => Some(*min_rejects),
        DecisionRule::Majority => Some(k / 2 + 1),
        DecisionRule::Custom(_) => None,
    }
}

/// The number of Byzantine players `rule` tolerates on `k` players:
/// the largest `t` such that *no* choice of `t` corrupted bits can
/// single-handedly decide the verdict, i.e. `min(T − 1, k − T)` for
/// the equivalent threshold `T`. `None` for custom rules.
///
/// The AND rule tolerates 0; `Majority` on `k` players tolerates
/// `⌈k/2⌉ − 1`, the maximum possible.
#[must_use]
pub fn byzantine_tolerance(rule: &DecisionRule, k: usize) -> Option<usize> {
    let t = threshold_equivalent(rule, k)?;
    Some(t.saturating_sub(1).min(k.saturating_sub(t)))
}

/// A threshold rule recalibrated for an estimated benign fault rate.
///
/// Given a base rule with equivalent threshold `T` and a per-player
/// probability `rate` of the referee not hearing an honest bit, the
/// wrapper shifts the threshold in the direction the missing policy
/// biases the vote:
///
/// * [`MissingPolicy::AssumeReject`] inflates the reject count by
///   about `rate · k` spurious rejects → `T' = T + ⌈rate · k⌉`
///   (capped at `k`);
/// * [`MissingPolicy::AssumeAccept`] erases about a `rate` fraction of
///   honest rejects → `T' = ⌊T · (1 − rate)⌋` (at least 1);
/// * [`MissingPolicy::Exclude`] shrinks the vote itself by a `rate`
///   fraction → `T' = round(T · (1 − rate))` (at least 1).
#[derive(Debug, Clone)]
pub struct RobustRule {
    base_threshold: usize,
    adjusted: DecisionRule,
    rate: f64,
    policy: MissingPolicy,
}

impl RobustRule {
    /// Recalibrates `rule` on `k` players for fault rate `rate` under
    /// `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `rule` is custom (no threshold structure to shift),
    /// if `rate` is outside `[0, 1)`, or if `k == 0`.
    #[must_use]
    pub fn calibrate(rule: &DecisionRule, k: usize, rate: f64, policy: MissingPolicy) -> Self {
        assert!(k > 0, "need at least one player");
        assert!(
            (0.0..1.0).contains(&rate),
            "fault rate must be in [0, 1), got {rate}"
        );
        let t = threshold_equivalent(rule, k)
            // dut-lint: allow(unwrap): documented `# Panics` contract — custom rules carry no threshold structure to shift
            .expect("cannot recalibrate a custom rule: no threshold structure");
        assert!(
            t >= 1 && t <= k,
            "base threshold {t} out of range for k={k}"
        );
        let adjusted_t = match policy {
            MissingPolicy::AssumeReject => (t + ceil_to_usize(rate * k as f64)).min(k),
            MissingPolicy::AssumeAccept => floor_to_usize(t as f64 * (1.0 - rate)).max(1),
            MissingPolicy::Exclude => round_to_usize(t as f64 * (1.0 - rate)).max(1),
        };
        Self {
            base_threshold: t,
            adjusted: DecisionRule::Threshold {
                min_rejects: adjusted_t,
            },
            rate,
            policy,
        }
    }

    /// The recalibrated rule to hand to the referee.
    #[must_use]
    pub fn rule(&self) -> &DecisionRule {
        &self.adjusted
    }

    /// The threshold before recalibration.
    #[must_use]
    pub fn base_threshold(&self) -> usize {
        self.base_threshold
    }

    /// The threshold after recalibration.
    ///
    /// # Panics
    ///
    /// Never: the adjusted rule is a threshold by construction.
    #[must_use]
    pub fn adjusted_threshold(&self) -> usize {
        match self.adjusted {
            DecisionRule::Threshold { min_rejects } => min_rejects,
            _ => unreachable!("adjusted rule is a threshold by construction"),
        }
    }

    /// The fault rate the rule was calibrated for.
    #[must_use]
    pub fn fault_rate(&self) -> f64 {
        self.rate
    }

    /// The missing policy the rule was calibrated for.
    #[must_use]
    pub fn policy(&self) -> MissingPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_equivalents() {
        assert_eq!(threshold_equivalent(&DecisionRule::And, 10), Some(1));
        assert_eq!(threshold_equivalent(&DecisionRule::Or, 10), Some(10));
        assert_eq!(
            threshold_equivalent(&DecisionRule::Threshold { min_rejects: 4 }, 10),
            Some(4)
        );
        assert_eq!(threshold_equivalent(&DecisionRule::Majority, 10), Some(6));
        assert_eq!(threshold_equivalent(&DecisionRule::Majority, 9), Some(5));
    }

    #[test]
    fn byzantine_tolerance_values() {
        // AND breaks at t = 1.
        assert_eq!(byzantine_tolerance(&DecisionRule::And, 16), Some(0));
        assert_eq!(byzantine_tolerance(&DecisionRule::Or, 16), Some(0));
        // Threshold{T} tolerates min(T-1, k-T).
        assert_eq!(
            byzantine_tolerance(&DecisionRule::Threshold { min_rejects: 4 }, 16),
            Some(3)
        );
        assert_eq!(
            byzantine_tolerance(&DecisionRule::Threshold { min_rejects: 14 }, 16),
            Some(2)
        );
        // Majority maximizes tolerance.
        assert_eq!(byzantine_tolerance(&DecisionRule::Majority, 16), Some(7));
        assert_eq!(byzantine_tolerance(&DecisionRule::Majority, 17), Some(8));
    }

    #[test]
    fn assume_reject_raises_threshold() {
        let r = RobustRule::calibrate(
            &DecisionRule::Threshold { min_rejects: 3 },
            16,
            0.2,
            MissingPolicy::AssumeReject,
        );
        // 3 + ceil(0.2 * 16) = 3 + 4 = 7.
        assert_eq!(r.adjusted_threshold(), 7);
        assert_eq!(r.base_threshold(), 3);
    }

    #[test]
    fn assume_accept_lowers_threshold() {
        let r = RobustRule::calibrate(
            &DecisionRule::Threshold { min_rejects: 8 },
            16,
            0.25,
            MissingPolicy::AssumeAccept,
        );
        // floor(8 * 0.75) = 6.
        assert_eq!(r.adjusted_threshold(), 6);
    }

    #[test]
    fn exclude_scales_threshold() {
        let r = RobustRule::calibrate(
            &DecisionRule::Threshold { min_rejects: 8 },
            16,
            0.25,
            MissingPolicy::Exclude,
        );
        assert_eq!(r.adjusted_threshold(), 6);
    }

    #[test]
    fn thresholds_stay_in_range() {
        // Never below 1...
        let low = RobustRule::calibrate(&DecisionRule::And, 8, 0.9, MissingPolicy::AssumeAccept);
        assert_eq!(low.adjusted_threshold(), 1);
        // ...never above k.
        let high = RobustRule::calibrate(&DecisionRule::Or, 8, 0.9, MissingPolicy::AssumeReject);
        assert_eq!(high.adjusted_threshold(), 8);
    }

    #[test]
    fn zero_rate_is_identity() {
        for policy in [
            MissingPolicy::AssumeAccept,
            MissingPolicy::AssumeReject,
            MissingPolicy::Exclude,
        ] {
            let r =
                RobustRule::calibrate(&DecisionRule::Threshold { min_rejects: 5 }, 12, 0.0, policy);
            assert_eq!(r.adjusted_threshold(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "custom rule")]
    fn custom_rules_rejected() {
        let custom = DecisionRule::Custom(std::sync::Arc::new(|bits: &[bool]| {
            let rejects = bits.iter().filter(|&&b| !b).count();
            crate::Verdict::from_accept_bit(rejects % 2 == 0)
        }));
        let _ = RobustRule::calibrate(&custom, 8, 0.1, MissingPolicy::Exclude);
    }
}
