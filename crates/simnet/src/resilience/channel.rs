//! Correlated (bursty) loss: the two-state Gilbert–Elliott channel.

use super::plan::FaultPlan;
use rand::rngs::StdRng;
use rand::Rng;

/// A two-state Markov loss channel: the channel is either *good* or
/// *bad*, losing each transmitted copy with a state-dependent
/// probability, and flips state with fixed transition probabilities as
/// it is traversed (player by player within a round, round by round).
/// Unlike iid loss, failures arrive in bursts, which is exactly the
/// regime where the AND rule's single-alarm fragility and a repetition
/// code's diminishing returns show up.
///
/// The traversal order is player `0..k` within each transmission
/// round, so a burst wipes out a *contiguous block* of players — the
/// worst case for rules that need several simultaneous alarms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    to_bad: f64,
    to_good: f64,
    loss_good: f64,
    loss_bad: f64,
    bad: bool,
}

/// Fixed burst structure used by [`GilbertElliott::bursty_with_mean_loss`]:
/// enter the bad state with probability 0.3, leave with 0.5, so the
/// stationary bad fraction is 0.3 / (0.3 + 0.5) = 0.375 and bursts
/// last 2 messages on average.
const BURSTY_TO_BAD: f64 = 0.3;
const BURSTY_TO_GOOD: f64 = 0.5;
const BURSTY_STATIONARY_BAD: f64 = BURSTY_TO_BAD / (BURSTY_TO_BAD + BURSTY_TO_GOOD);

impl GilbertElliott {
    /// Builds the channel from its four parameters.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`, or if both
    /// transition probabilities are zero (the chain would never mix).
    #[must_use]
    pub fn new(to_bad: f64, to_good: f64, loss_good: f64, loss_bad: f64) -> Self {
        for (p, what) in [
            (to_bad, "good→bad"),
            (to_good, "bad→good"),
            (loss_good, "good-state loss"),
            (loss_bad, "bad-state loss"),
        ] {
            assert!((0.0..=1.0).contains(&p), "{what} probability out of range");
        }
        assert!(
            to_bad > 0.0 || to_good > 0.0,
            "a Gilbert–Elliott channel needs at least one nonzero transition"
        );
        Self {
            to_bad,
            to_good,
            loss_good,
            loss_bad,
            bad: false,
        }
    }

    /// A bursty channel with a *fixed* burst structure (mean burst
    /// length 2, stationary bad fraction 0.375) whose long-run loss
    /// rate is `mean_loss`: the good state is lossless and the bad
    /// state loses with probability `mean_loss / 0.375`.
    ///
    /// Because only the bad-state loss probability varies with
    /// `mean_loss`, channels built at different rates share the same
    /// state trajectory for a fixed fault seed — sweeps over
    /// `mean_loss` are exactly coupled (see the module docs in
    /// [`plan`](super::plan)).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ mean_loss ≤ 0.375`.
    #[must_use]
    pub fn bursty_with_mean_loss(mean_loss: f64) -> Self {
        assert!(
            (0.0..=BURSTY_STATIONARY_BAD).contains(&mean_loss),
            "bursty mean loss must be in [0, {BURSTY_STATIONARY_BAD}], got {mean_loss}"
        );
        Self::new(
            BURSTY_TO_BAD,
            BURSTY_TO_GOOD,
            0.0,
            mean_loss / BURSTY_STATIONARY_BAD,
        )
    }

    /// The stationary probability of being in the bad state.
    #[must_use]
    pub fn stationary_bad(&self) -> f64 {
        self.to_bad / (self.to_bad + self.to_good)
    }

    /// The long-run per-copy loss rate.
    #[must_use]
    pub fn mean_loss(&self) -> f64 {
        let bad = self.stationary_bad();
        bad * self.loss_bad + (1.0 - bad) * self.loss_good
    }
}

impl FaultPlan for GilbertElliott {
    fn label(&self) -> String {
        format!("gilbert-elliott(mean-loss={:.3})", self.mean_loss())
    }

    fn begin_run(&mut self, _k: usize, rng: &mut StdRng) {
        // Start each run from the stationary distribution.
        let u: f64 = rng.random();
        self.bad = u < self.stationary_bad();
    }

    fn deliver_round(&mut self, bits: &[Option<bool>], rng: &mut StdRng) -> Vec<Option<bool>> {
        bits.iter()
            .map(|&bit| {
                // Two unconditional draws per slot: transition, then loss.
                let step: f64 = rng.random();
                if self.bad {
                    if step < self.to_good {
                        self.bad = false;
                    }
                } else if step < self.to_bad {
                    self.bad = true;
                }
                let u: f64 = rng.random();
                let loss = if self.bad {
                    self.loss_bad
                } else {
                    self.loss_good
                };
                bit.filter(|_| u >= loss)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mean_loss_matches_construction() {
        let ge = GilbertElliott::bursty_with_mean_loss(0.3);
        assert!((ge.mean_loss() - 0.3).abs() < 1e-12);
        assert!((ge.stationary_bad() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn long_run_loss_rate_is_close_to_nominal() {
        let mut ge = GilbertElliott::bursty_with_mean_loss(0.25);
        let mut rng = StdRng::seed_from_u64(11);
        let bits = vec![Some(true); 100];
        let mut lost = 0usize;
        let rounds = 200;
        ge.begin_run(bits.len(), &mut rng);
        for _ in 0..rounds {
            lost += ge
                .deliver_round(&bits, &mut rng)
                .iter()
                .filter(|d| d.is_none())
                .count();
        }
        let rate = lost as f64 / (100 * rounds) as f64;
        assert!((0.2..0.3).contains(&rate), "observed loss rate {rate}");
    }

    #[test]
    fn losses_are_bursty() {
        // Adjacent-slot loss correlation must exceed the iid baseline:
        // P(lost | previous lost) > P(lost).
        let mut ge = GilbertElliott::bursty_with_mean_loss(0.3);
        let mut rng = StdRng::seed_from_u64(12);
        let bits = vec![Some(true); 2000];
        ge.begin_run(bits.len(), &mut rng);
        let outcome = ge.deliver_round(&bits, &mut rng);
        let lost: Vec<bool> = outcome.iter().map(Option::is_none).collect();
        let total = lost.iter().filter(|&&x| x).count();
        let after_loss = lost.windows(2).filter(|w| w[0] && w[1]).count();
        let p_loss = total as f64 / lost.len() as f64;
        let p_loss_after_loss = after_loss as f64 / total.max(1) as f64;
        // Theory: p = 0.3, p_after = loss_bad · P(stay bad) = 0.8 · 0.5
        // = 0.4; ask for half the theoretical gap.
        assert!(
            p_loss_after_loss > p_loss + 0.05,
            "no burstiness: p={p_loss}, p_after={p_loss_after_loss}"
        );
    }

    #[test]
    fn rate_sweep_is_exactly_coupled() {
        // Same seed, higher mean loss: the lost set can only grow,
        // because the state trajectory is rate-independent.
        let bits = vec![Some(true); 256];
        let lost_at = |mean: f64| -> Vec<bool> {
            let mut ge = GilbertElliott::bursty_with_mean_loss(mean);
            let mut rng = StdRng::seed_from_u64(13);
            ge.begin_run(bits.len(), &mut rng);
            ge.deliver_round(&bits, &mut rng)
                .iter()
                .map(Option::is_none)
                .collect()
        };
        let low = lost_at(0.1);
        let high = lost_at(0.3);
        for (i, (&l, &h)) in low.iter().zip(&high).enumerate() {
            assert!(!l || h, "slot {i} lost at 0.1 but delivered at 0.3");
        }
    }

    #[test]
    #[should_panic(expected = "bursty mean loss")]
    fn bursty_mean_loss_bounded() {
        let _ = GilbertElliott::bursty_with_mean_loss(0.5);
    }
}
