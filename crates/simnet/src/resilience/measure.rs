//! Degradation measurement: estimate rejection/error rates of a
//! protocol under a fault plan, with per-trial seed derivation so that
//! sweeps over fault rates reuse identical trial randomness.

use super::network::ResilientNetwork;
use super::plan::FaultPlan;
use crate::player::Player;
use crate::rule::DecisionRule;
use dut_probability::Sampler;
use dut_stats::seed::derive_seed2;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measured verdict rates of one protocol arm over `trials` runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredRates {
    /// Fraction of runs the referee rejected.
    pub rejection_rate: f64,
    /// Number of runs.
    pub trials: usize,
    /// Mean copies delivered to the referee per run (the communication
    /// cost actually paid, including redundancy).
    pub mean_delivered_bits: f64,
    /// Mean retransmission attempts per run.
    pub mean_retries: f64,
}

impl MeasuredRates {
    /// Error rate against a uniform (should-accept) input: the
    /// false-alarm probability.
    #[must_use]
    pub fn error_on_uniform(&self) -> f64 {
        self.rejection_rate
    }

    /// Error rate against an ε-far (should-reject) input: the
    /// missed-detection probability.
    #[must_use]
    pub fn error_on_far(&self) -> f64 {
        1.0 - self.rejection_rate
    }
}

/// Runs `trials` independent executions of the protocol and measures
/// verdict and cost rates.
///
/// Trial `t` runs with an RNG seeded by
/// `derive_seed2(master_seed, plan_stream, t)`: for a fixed
/// `master_seed` and `plan_stream`, trial `t` sees the *same* caller
/// randomness across different fault plans and rates, so measured
/// curves over a rate sweep are paired (and, for plans honoring the
/// coupling discipline, pointwise monotone — see the
/// [`plan`](super::plan) module docs).
///
/// `plan_stream` selects the fault-randomness universe; use one value
/// per sweep so arms differ only in the plan parameters.
///
/// # Panics
///
/// Panics if `trials == 0`.
#[allow(clippy::too_many_arguments)]
pub fn rejection_rate<S, P, F>(
    network: &ResilientNetwork,
    sampler: &S,
    samples_per_player: usize,
    player: &P,
    rule: &DecisionRule,
    plan: &mut F,
    trials: usize,
    master_seed: u64,
    plan_stream: u64,
) -> MeasuredRates
where
    S: Sampler,
    P: Player + ?Sized,
    F: FaultPlan + ?Sized,
{
    assert!(trials > 0, "need at least one trial");
    let mut rejects = 0usize;
    let mut delivered = 0u64;
    let mut retries = 0u64;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(derive_seed2(master_seed, plan_stream, t as u64));
        let out = network.run(sampler, samples_per_player, player, rule, plan, &mut rng);
        if out.verdict.is_reject() {
            rejects += 1;
        }
        delivered += out.faults.delivered_bits;
        retries += out.faults.retries;
    }
    MeasuredRates {
        rejection_rate: rejects as f64 / trials as f64,
        trials,
        mean_delivered_bits: delivered as f64 / trials as f64,
        mean_retries: retries as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::super::plan::{IidFaults, ReliablePlan};
    use super::*;
    use crate::player::PlayerContext;
    use crate::MissingPolicy;
    use dut_probability::families;

    struct AlwaysReject;
    impl Player for AlwaysReject {
        fn accepts(&self, _: &PlayerContext, _: &[usize]) -> bool {
            false
        }
    }

    #[test]
    fn rates_on_extremes() {
        let net = ResilientNetwork::new(4, MissingPolicy::AssumeAccept);
        let sampler = families::uniform(8).alias_sampler();
        let m = rejection_rate(
            &net,
            &sampler,
            1,
            &AlwaysReject,
            &DecisionRule::And,
            &mut ReliablePlan,
            20,
            7,
            0,
        );
        assert!((m.rejection_rate - 1.0).abs() < f64::EPSILON);
        assert!((m.error_on_far() - 0.0).abs() < f64::EPSILON);
        assert!((m.mean_delivered_bits - 4.0).abs() < f64::EPSILON);
    }

    #[test]
    fn loss_sweep_is_monotone_per_trial() {
        // The coupling discipline end-to-end: And + AssumeAccept on an
        // always-rejecting player can only lose alarms as the rate
        // grows, so the measured rejection rate is nonincreasing.
        let net = ResilientNetwork::new(6, MissingPolicy::AssumeAccept);
        let sampler = families::uniform(8).alias_sampler();
        let mut last = f64::INFINITY;
        for step in 0..=5 {
            let mut plan = IidFaults::loss_only(f64::from(step) * 0.2);
            let m = rejection_rate(
                &net,
                &sampler,
                1,
                &AlwaysReject,
                &DecisionRule::And,
                &mut plan,
                40,
                99,
                3,
            );
            assert!(
                m.rejection_rate <= last + f64::EPSILON,
                "rate rose from {last} to {} at step {step}",
                m.rejection_rate
            );
            last = m.rejection_rate;
        }
        assert!(
            (last - 0.0).abs() < f64::EPSILON,
            "full loss must silence all alarms"
        );
    }
}
