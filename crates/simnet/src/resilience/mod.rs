//! Fault injection, fault-aware protocols, and graceful degradation.
//!
//! This module generalizes [`FaultyNetwork`](crate::FaultyNetwork)'s
//! hard-wired iid faults into a pluggable [`FaultPlan`] and asks the
//! robustness question behind the paper's locality trade-off: the AND
//! rule buys locality (any single player can raise the alarm) at the
//! price of *maximal fragility* — one lost or corrupted message
//! decides the verdict — while threshold rules degrade gracefully.
//!
//! Three layers:
//!
//! * **Fault models** ([`plan`], [`channel`], [`adversary`]): iid
//!   loss/crashes ([`IidFaults`]), crash-with-partial-samples
//!   ([`PartialCrash`]), bursty Gilbert–Elliott loss
//!   ([`GilbertElliott`]), Byzantine players ([`ByzantinePlan`]) and a
//!   transcript-aware targeted dropper ([`TargetedLoss`]).
//! * **Recovery** ([`recovery`], [`robust`]): repetition coding and
//!   ack/retry retransmission ([`Recovery`]) with referee-side
//!   majority decoding, plus closed-form threshold recalibration
//!   ([`RobustRule`]) and the Byzantine-tolerance bound
//!   ([`byzantine_tolerance`]).
//! * **Measurement** ([`network`], [`measure`]): [`ResilientNetwork`]
//!   runs the protocol under a plan with full fault accounting
//!   ([`FaultStats`], surfaced through `dut report`), and
//!   [`rejection_rate`] produces paired, per-trial-coupled degradation
//!   curves.
//!
//! Everything is deterministic given the caller's RNG; see the
//! [`plan`] module docs for the coupling discipline that makes
//! error-vs-fault-rate curves exactly monotone per seed.

pub mod adversary;
pub mod channel;
pub mod measure;
pub mod network;
pub mod plan;
pub mod recovery;
pub mod robust;

pub use adversary::{ByzantineBehavior, ByzantinePlan, TargetedLoss};
pub use channel::GilbertElliott;
pub use measure::{rejection_rate, MeasuredRates};
pub use network::{FaultStats, ResilientNetwork, ResilientOutcome};
pub use plan::{FaultPlan, IidFaults, PartialCrash, PreSample, ReliablePlan};
pub use recovery::Recovery;
pub use robust::{byzantine_tolerance, threshold_equivalent, RobustRule};
