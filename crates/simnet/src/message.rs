use std::fmt;

/// An `r`-bit message from a player to the referee, `1 ≤ r ≤ 32`.
///
/// The single-bit model of the paper corresponds to `r = 1`; Theorem 6.4
/// studies how the lower bound decays with `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Message {
    bits: u32,
    len: u8,
}

impl Message {
    /// Creates a message with the given payload and bit length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or exceeds 32, or `bits` has bits above `len`.
    #[must_use]
    pub fn new(bits: u32, len: u8) -> Self {
        assert!(
            (1..=32).contains(&len),
            "message length must be 1..=32 bits"
        );
        assert!(
            len == 32 || bits < (1u32 << len),
            "payload {bits:#x} does not fit in {len} bits"
        );
        Self { bits, len }
    }

    /// A one-bit message from an accept flag (`1` = accept, as in the
    /// paper's convention where the referee computes AND of the bits).
    #[must_use]
    pub fn from_accept_bit(accept: bool) -> Self {
        Self {
            bits: u32::from(accept),
            len: 1,
        }
    }

    /// The payload.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The message length in bits.
    #[must_use]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Messages always carry at least one bit.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Interprets a one-bit message as an accept flag.
    ///
    /// # Panics
    ///
    /// Panics if the message is longer than one bit.
    #[must_use]
    pub fn as_accept_bit(&self) -> bool {
        assert_eq!(self.len, 1, "not a one-bit message");
        self.bits == 1
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.bits, width = self.len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_accept_bit() {
        assert!(Message::from_accept_bit(true).as_accept_bit());
        assert!(!Message::from_accept_bit(false).as_accept_bit());
    }

    #[test]
    fn new_validates_payload() {
        let m = Message::new(0b101, 3);
        assert_eq!(m.bits(), 5);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn display_pads_to_length() {
        assert_eq!(Message::new(0b01, 4).to_string(), "0001");
        assert_eq!(Message::from_accept_bit(true).to_string(), "1");
    }

    #[test]
    fn full_width_message() {
        let m = Message::new(u32::MAX, 32);
        assert_eq!(m.bits(), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_payload_panics() {
        let _ = Message::new(0b100, 2);
    }

    #[test]
    #[should_panic(expected = "1..=32")]
    fn zero_length_panics() {
        let _ = Message::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "not a one-bit")]
    fn as_accept_bit_needs_one_bit() {
        let _ = Message::new(0, 2).as_accept_bit();
    }
}
