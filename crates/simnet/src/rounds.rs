//! Round-based synchronous message passing (LOCAL / CONGEST).
//!
//! The paper's simultaneous one-bit model is the communication-minimal
//! end of a spectrum; its companion upper-bound paper \[7\] also places
//! uniformity testing in the classic synchronous models:
//!
//! * **LOCAL** — unbounded message size per edge per round; complexity
//!   is the number of rounds (locality).
//! * **CONGEST** — `O(log n)` bits per edge per round.
//!
//! [`RoundNetwork`] runs a synchronous protocol over a [`Topology`]:
//! in every round each node reads the messages delivered in the
//! previous round, updates its state and emits messages to neighbors.
//! Message sizes are checked against the model's per-edge budget, so a
//! protocol that would violate CONGEST fails loudly.

use crate::topology::Topology;
use std::collections::BTreeMap;

/// The synchronous model: per-round, per-edge message budget in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundModel {
    /// Unbounded bandwidth; only round count matters.
    Local,
    /// At most `bits_per_edge` bits per edge per round.
    Congest {
        /// The per-edge budget (conventionally `O(log n)`).
        bits_per_edge: u32,
    },
}

impl RoundModel {
    /// The conventional CONGEST budget for an `n`-node network:
    /// `⌈log₂ n⌉ + 1` bits.
    #[must_use]
    pub fn congest_for(n: usize) -> Self {
        RoundModel::Congest {
            bits_per_edge: (usize::BITS - n.leading_zeros()).max(1) + 1,
        }
    }

    /// The budget, if bounded.
    #[must_use]
    pub fn budget(&self) -> Option<u32> {
        match self {
            RoundModel::Local => None,
            RoundModel::Congest { bits_per_edge } => Some(*bits_per_edge),
        }
    }
}

/// A message in a round-based protocol: a payload with a declared bit
/// size (payloads are `u64`; the declared size is what is checked
/// against the budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundMessage {
    /// The payload.
    pub payload: u64,
    /// Declared size in bits.
    pub bits: u32,
}

impl RoundMessage {
    /// A message whose declared size is the minimal width of the
    /// payload (at least 1 bit).
    #[must_use]
    pub fn sized(payload: u64) -> Self {
        Self {
            payload,
            bits: (64 - payload.leading_zeros()).max(1),
        }
    }
}

/// A node algorithm in the round-based model.
pub trait RoundAlgorithm {
    /// Per-node state.
    type State;

    /// Initializes node `id` of `n`.
    fn init(&self, id: usize, topology: &Topology) -> Self::State;

    /// One round: reads messages delivered this round (sender →
    /// message) and returns messages to send (neighbor → message).
    /// Returning an empty map is allowed.
    ///
    /// Inboxes and outboxes are `BTreeMap`s so that message delivery
    /// and accounting iterate in node order: a run is a pure function
    /// of the seed, never of hasher state.
    fn round(
        &self,
        state: &mut Self::State,
        round: usize,
        inbox: &BTreeMap<usize, RoundMessage>,
    ) -> BTreeMap<usize, RoundMessage>;
}

/// Statistics of one protocol execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Total messages sent.
    pub messages: u64,
    /// Total bits sent.
    pub bits: u64,
    /// Largest single message (bits).
    pub max_message_bits: u32,
}

/// The round-based network simulator.
#[derive(Debug, Clone)]
pub struct RoundNetwork {
    topology: Topology,
    model: RoundModel,
}

impl RoundNetwork {
    /// Creates a simulator over a topology under a model.
    #[must_use]
    pub fn new(topology: Topology, model: RoundModel) -> Self {
        Self { topology, model }
    }

    /// The underlying topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Runs `rounds` synchronous rounds of `algorithm` and returns the
    /// final states plus execution statistics.
    ///
    /// # Panics
    ///
    /// Panics if a node sends to a non-neighbor, or a message exceeds
    /// the CONGEST budget.
    pub fn run<A: RoundAlgorithm>(
        &self,
        algorithm: &A,
        rounds: usize,
    ) -> (Vec<A::State>, RoundStats) {
        let n = self.topology.len();
        let mut states: Vec<A::State> = (0..n)
            .map(|id| algorithm.init(id, &self.topology))
            .collect();
        let mut inboxes: Vec<BTreeMap<usize, RoundMessage>> = vec![BTreeMap::new(); n];
        let mut stats = RoundStats {
            rounds,
            messages: 0,
            bits: 0,
            max_message_bits: 0,
        };
        for round in 0..rounds {
            let mut next_inboxes: Vec<BTreeMap<usize, RoundMessage>> = vec![BTreeMap::new(); n];
            for (id, state) in states.iter_mut().enumerate() {
                let outbox = algorithm.round(state, round, &inboxes[id]);
                for (to, message) in outbox {
                    assert!(
                        self.topology.neighbors(id).contains(&to),
                        "node {id} sent to non-neighbor {to}"
                    );
                    if let Some(budget) = self.model.budget() {
                        assert!(
                            message.bits <= budget,
                            "node {id} sent {} bits, CONGEST budget is {budget}",
                            message.bits
                        );
                    }
                    stats.messages += 1;
                    stats.bits += u64::from(message.bits);
                    stats.max_message_bits = stats.max_message_bits.max(message.bits);
                    next_inboxes[to].insert(id, message);
                }
            }
            inboxes = next_inboxes;
        }
        dut_obs::metrics::global().add(dut_obs::metrics::Counter::BitsSent, stats.bits);
        dut_obs::global().emit_verbose_with(|| {
            dut_obs::Event::new("round_run")
                .with("rounds", stats.rounds)
                .with("messages", stats.messages)
                .with("bits", stats.bits)
                .with("max_message_bits", stats.max_message_bits)
        });
        (states, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flooding max with neighbor lists captured at init.
    struct FloodMaxKnownNeighbors {
        values: Vec<u64>,
    }

    struct FloodState {
        value: u64,
        neighbors: Vec<usize>,
    }

    impl RoundAlgorithm for FloodMaxKnownNeighbors {
        type State = FloodState;

        fn init(&self, id: usize, topology: &Topology) -> FloodState {
            FloodState {
                value: self.values[id],
                neighbors: topology.neighbors(id).to_vec(),
            }
        }

        fn round(
            &self,
            state: &mut FloodState,
            _round: usize,
            inbox: &BTreeMap<usize, RoundMessage>,
        ) -> BTreeMap<usize, RoundMessage> {
            for message in inbox.values() {
                state.value = state.value.max(message.payload);
            }
            state
                .neighbors
                .iter()
                .map(|&to| (to, RoundMessage::sized(state.value)))
                .collect()
        }
    }

    #[test]
    fn flood_max_converges_in_diameter_rounds() {
        let topology = Topology::path(8);
        let diameter = topology.diameter();
        let net = RoundNetwork::new(topology, RoundModel::Local);
        let algo = FloodMaxKnownNeighbors {
            values: vec![3, 1, 4, 1, 5, 9, 2, 6],
        };
        let (states, stats) = net.run(&algo, diameter + 1);
        assert!(states.iter().all(|s| s.value == 9));
        assert!(stats.messages > 0);
        assert_eq!(stats.rounds, diameter + 1);
    }

    #[test]
    fn flood_max_incomplete_before_diameter() {
        let topology = Topology::path(8);
        let net = RoundNetwork::new(topology, RoundModel::Local);
        let algo = FloodMaxKnownNeighbors {
            values: vec![9, 0, 0, 0, 0, 0, 0, 0],
        };
        // After 3 rounds the far end cannot know about 9.
        let (states, _) = net.run(&algo, 3);
        assert_ne!(states[7].value, 9);
    }

    #[test]
    fn congest_budget_enforced() {
        let topology = Topology::star(3);
        let net = RoundNetwork::new(topology, RoundModel::Congest { bits_per_edge: 4 });
        let algo = FloodMaxKnownNeighbors {
            values: vec![1, 2, 3],
        };
        // 4-bit payloads: fine.
        let (_, stats) = net.run(&algo, 2);
        assert!(stats.max_message_bits <= 4);
    }

    #[test]
    #[should_panic(expected = "CONGEST budget")]
    fn congest_violation_panics() {
        let topology = Topology::star(3);
        let net = RoundNetwork::new(topology, RoundModel::Congest { bits_per_edge: 2 });
        let algo = FloodMaxKnownNeighbors {
            values: vec![1, 2, 255], // needs 8 bits
        };
        let _ = net.run(&algo, 1);
    }

    #[test]
    fn congest_for_scales_with_n() {
        assert_eq!(RoundModel::congest_for(1024).budget(), Some(12));
        assert_eq!(RoundModel::Local.budget(), None);
    }

    #[test]
    fn stats_count_bits() {
        let topology = Topology::star(4);
        let net = RoundNetwork::new(topology, RoundModel::Local);
        let algo = FloodMaxKnownNeighbors {
            values: vec![1, 1, 1, 1],
        };
        let (_, stats) = net.run(&algo, 1);
        // 3 leaves send to hub, hub sends to 3 leaves: 6 messages of 1 bit.
        assert_eq!(stats.messages, 6);
        assert_eq!(stats.bits, 6);
    }
}
