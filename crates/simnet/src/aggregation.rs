//! Convergecast aggregation: the bridge from the round-based models to
//! the paper's simultaneous-message model.
//!
//! \[7\] reduces uniformity testing in LOCAL/CONGEST to the simultaneous
//! case: build a BFS spanning tree, have every node compute its local
//! statistic, and *convergecast* the aggregate (sum, or rejection
//! count) to the root in `O(diameter)` rounds. [`Convergecast`] is that
//! protocol; it demonstrates that the referee abstraction costs only
//! diameter rounds and `O(log)` bandwidth on any connected graph.

use crate::rounds::{RoundAlgorithm, RoundMessage, RoundModel, RoundNetwork, RoundStats};
use crate::topology::Topology;
use std::collections::BTreeMap;

/// Convergecast of a sum over a BFS spanning tree rooted at node 0.
///
/// Every node starts with a `u64` value; after `depth + 1` rounds the
/// root's state holds the sum of all values. Each node sends exactly
/// one message (to its tree parent) in the round after it has heard
/// from all its tree children.
#[derive(Debug, Clone)]
pub struct Convergecast {
    values: Vec<u64>,
    parent: Vec<usize>,
    children_count: Vec<usize>,
}

/// Per-node convergecast state.
#[derive(Debug, Clone)]
pub struct ConvergecastState {
    /// Accumulated sum of the subtree seen so far.
    pub partial_sum: u64,
    /// Children yet to report.
    pub pending_children: usize,
    /// Whether this node has already reported to its parent.
    pub reported: bool,
    parent: usize,
    id: usize,
}

impl Convergecast {
    /// Builds the protocol for the given per-node values over the BFS
    /// tree of `topology` rooted at node 0.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the node count or the
    /// graph is disconnected.
    #[must_use]
    pub fn new(topology: &Topology, values: Vec<u64>) -> Self {
        assert_eq!(values.len(), topology.len(), "one value per node");
        let parent = topology.bfs_tree(0);
        let mut children_count = vec![0usize; topology.len()];
        for (v, &p) in parent.iter().enumerate() {
            if v != 0 {
                children_count[p] += 1;
            }
        }
        Self {
            values,
            parent,
            children_count,
        }
    }

    /// Runs the convergecast on `network` (whose topology must match)
    /// and returns `(root_sum, stats)`.
    ///
    /// # Panics
    ///
    /// Panics if the network's topology differs from the one the
    /// protocol was built for.
    #[must_use]
    pub fn run(&self, network: &RoundNetwork) -> (u64, RoundStats) {
        assert_eq!(
            network.topology().len(),
            self.values.len(),
            "topology mismatch"
        );
        // Depth of the BFS tree bounds the rounds needed. An empty
        // graph has depth 0 (one round still runs the root's fold).
        let depth = network
            .topology()
            .bfs_distances(0)
            .into_iter()
            .max()
            .unwrap_or(0);
        let (states, stats) = network.run(self, depth + 1);
        (states[0].partial_sum, stats)
    }
}

impl RoundAlgorithm for Convergecast {
    type State = ConvergecastState;

    fn init(&self, id: usize, _topology: &Topology) -> ConvergecastState {
        ConvergecastState {
            partial_sum: self.values[id],
            pending_children: self.children_count[id],
            reported: false,
            parent: self.parent[id],
            id,
        }
    }

    fn round(
        &self,
        state: &mut ConvergecastState,
        _round: usize,
        inbox: &BTreeMap<usize, RoundMessage>,
    ) -> BTreeMap<usize, RoundMessage> {
        for message in inbox.values() {
            state.partial_sum += message.payload;
            state.pending_children -= 1;
        }
        let mut outbox = BTreeMap::new();
        if state.id != 0 && !state.reported && state.pending_children == 0 {
            outbox.insert(state.parent, RoundMessage::sized(state.partial_sum));
            state.reported = true;
        }
        outbox
    }
}

/// Runs a full distributed "sum of local statistics" aggregation on an
/// arbitrary connected graph and reports the root's total:
/// the LOCAL/CONGEST realization of the paper's referee.
///
/// Returns `(total, stats)`.
///
/// # Panics
///
/// Panics if the graph is disconnected or (under CONGEST) a partial
/// sum exceeds the per-edge budget.
#[must_use]
pub fn aggregate_sum(
    topology: &Topology,
    model: RoundModel,
    values: Vec<u64>,
) -> (u64, RoundStats) {
    let protocol = Convergecast::new(topology, values);
    let network = RoundNetwork::new(topology.clone(), model);
    protocol.run(&network)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_on_star() {
        let topology = Topology::star(6);
        let (sum, stats) = aggregate_sum(&topology, RoundModel::Local, vec![10, 1, 2, 3, 4, 5]);
        assert_eq!(sum, 25);
        // Every leaf reports exactly once.
        assert_eq!(stats.messages, 5);
    }

    #[test]
    fn sums_on_path() {
        let topology = Topology::path(10);
        let (sum, stats) = aggregate_sum(&topology, RoundModel::Local, vec![1; 10]);
        assert_eq!(sum, 10);
        // Chain: 9 report messages, depth 9 -> 10 rounds.
        assert_eq!(stats.messages, 9);
        assert_eq!(stats.rounds, 10);
    }

    #[test]
    fn sums_on_binary_tree() {
        let topology = Topology::binary_tree(15);
        let values: Vec<u64> = (0u64..15).collect();
        let (sum, stats) = aggregate_sum(&topology, RoundModel::Local, values);
        assert_eq!(sum, (0u64..15).sum::<u64>());
        // Depth 3 tree: 4 rounds suffice.
        assert_eq!(stats.rounds, 4);
    }

    #[test]
    fn congest_budget_respected_for_small_sums() {
        let topology = Topology::binary_tree(7);
        let model = RoundModel::Congest { bits_per_edge: 8 };
        let (sum, stats) = aggregate_sum(&topology, model, vec![2; 7]);
        assert_eq!(sum, 14);
        assert!(stats.max_message_bits <= 8);
    }

    #[test]
    fn works_on_random_graphs() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..5 {
            let topology = Topology::random_connected(24, 0.2, &mut rng);
            let values: Vec<u64> = (0u64..24).collect();
            let (sum, _) = aggregate_sum(&topology, RoundModel::Local, values);
            assert_eq!(sum, (0u64..24).sum::<u64>());
        }
    }

    #[test]
    fn rounds_scale_with_diameter_not_size() {
        // A big star still needs only 2 rounds; a short path needs more.
        let star = Topology::star(100);
        let (_, star_stats) = aggregate_sum(&star, RoundModel::Local, vec![1; 100]);
        let path = Topology::path(10);
        let (_, path_stats) = aggregate_sum(&path, RoundModel::Local, vec![1; 10]);
        assert!(star_stats.rounds < path_stats.rounds);
    }

    #[test]
    #[should_panic(expected = "one value per node")]
    fn value_count_checked() {
        let topology = Topology::star(3);
        let _ = Convergecast::new(&topology, vec![1, 2]);
    }
}
