use crate::message::Message;
use dut_probability::Histogram;

/// Per-player information available when deciding: identity, network
/// size, and the shared-randomness seed (the paper's lower bounds hold
/// even with shared randomness; several protocols use it, e.g. the
/// single-sample hashing protocol of \[ACT18\] shares a random partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlayerContext {
    /// This player's index in `0..num_players`.
    pub player_id: usize,
    /// Total number of players `k`.
    pub num_players: usize,
    /// Shared randomness: the same value is handed to every player (and
    /// to the referee, by convention).
    pub shared_seed: u64,
}

/// A player in the one-bit model: examines its own `q` samples and emits
/// an accept bit (`true` = accept = the bit `1` of the paper).
pub trait Player {
    /// Decides whether to accept based on local samples only.
    fn accepts(&self, ctx: &PlayerContext, samples: &[usize]) -> bool;
}

impl<F: Fn(&PlayerContext, &[usize]) -> bool> Player for F {
    fn accepts(&self, ctx: &PlayerContext, samples: &[usize]) -> bool {
        self(ctx, samples)
    }
}

/// A player in the one-bit model that decides from its `q`-sample
/// occupancy [`Histogram`] rather than the raw sample stream.
///
/// Every tester over collision statistics is naturally a `CountPlayer`:
/// the sample order carries no information for it. Such players can run
/// on either sampling engine via [`crate::Network::run_counts`] — in
/// particular the O(n + q) histogram fast path, which never materializes
/// individual samples.
pub trait CountPlayer {
    /// Decides whether to accept based on the local occupancy histogram.
    fn accepts_counts(&self, ctx: &PlayerContext, histogram: &Histogram) -> bool;
}

impl<F: Fn(&PlayerContext, &Histogram) -> bool> CountPlayer for F {
    fn accepts_counts(&self, ctx: &PlayerContext, histogram: &Histogram) -> bool {
        self(ctx, histogram)
    }
}

/// A player in the `r`-bit message model.
pub trait MessagePlayer {
    /// Computes the message to send from local samples.
    fn message(&self, ctx: &PlayerContext, samples: &[usize]) -> Message;
}

impl<F: Fn(&PlayerContext, &[usize]) -> Message> MessagePlayer for F {
    fn message(&self, ctx: &PlayerContext, samples: &[usize]) -> Message {
        self(ctx, samples)
    }
}

/// Adapts any one-bit [`Player`] into the message model.
#[derive(Debug, Clone, Copy)]
pub struct BitPlayerAdapter<P>(pub P);

impl<P: Player> MessagePlayer for BitPlayerAdapter<P> {
    fn message(&self, ctx: &PlayerContext, samples: &[usize]) -> Message {
        Message::from_accept_bit(self.0.accepts(ctx, samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysAccept;
    impl Player for AlwaysAccept {
        fn accepts(&self, _ctx: &PlayerContext, _samples: &[usize]) -> bool {
            true
        }
    }

    fn ctx() -> PlayerContext {
        PlayerContext {
            player_id: 0,
            num_players: 4,
            shared_seed: 7,
        }
    }

    #[test]
    fn closure_is_a_player() {
        let player = |_ctx: &PlayerContext, samples: &[usize]| samples.len() < 3;
        assert!(player.accepts(&ctx(), &[1, 2]));
        assert!(!player.accepts(&ctx(), &[1, 2, 3]));
    }

    #[test]
    fn closure_is_a_message_player() {
        let player =
            |_ctx: &PlayerContext, samples: &[usize]| Message::new(samples.len() as u32, 8);
        assert_eq!(player.message(&ctx(), &[9, 9]).bits(), 2);
    }

    #[test]
    fn adapter_wraps_bit_player() {
        let adapted = BitPlayerAdapter(AlwaysAccept);
        let m = adapted.message(&ctx(), &[]);
        assert!(m.as_accept_bit());
    }

    #[test]
    fn context_fields_accessible() {
        let c = ctx();
        assert_eq!(c.player_id, 0);
        assert_eq!(c.num_players, 4);
        assert_eq!(c.shared_seed, 7);
    }
}
