use crate::bits::PackedBits;
use crate::message::Message;
use std::fmt;
use std::sync::Arc;

/// A shared, thread-safe decision function over the players' accept
/// bits — the payload of [`DecisionRule::Custom`].
pub type CustomDecisionFn = Arc<dyn Fn(&[bool]) -> Verdict + Send + Sync>;

/// The referee's final decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The network declares the input distribution satisfies the property.
    Accept,
    /// The network raises an alarm.
    Reject,
}

impl Verdict {
    /// `true` for [`Verdict::Accept`].
    #[must_use]
    pub fn is_accept(self) -> bool {
        matches!(self, Verdict::Accept)
    }

    /// `true` for [`Verdict::Reject`].
    #[must_use]
    pub fn is_reject(self) -> bool {
        matches!(self, Verdict::Reject)
    }

    /// Builds a verdict from an accept bit.
    #[must_use]
    pub fn from_accept_bit(accept: bool) -> Self {
        if accept {
            Verdict::Accept
        } else {
            Verdict::Reject
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Accept => write!(f, "accept"),
            Verdict::Reject => write!(f, "reject"),
        }
    }
}

/// A decision rule `f : {0,1}^k → {0,1}` applied by the referee to the
/// players' accept bits.
///
/// The paper's hierarchy of locality:
///
/// * [`DecisionRule::And`] — the *local* rule: reject iff at least one
///   player rejects (Theorem 1.2 shows this is expensive);
/// * [`DecisionRule::Threshold`] — reject iff at least `min_rejects`
///   players reject (Theorem 1.3 for small thresholds; with a calibrated
///   threshold this achieves the optimal bound of Theorem 1.1);
/// * [`DecisionRule::Majority`] — reject iff more than half reject;
/// * [`DecisionRule::Or`] — reject iff *every* player rejects;
/// * [`DecisionRule::Custom`] — an arbitrary function of the bit vector.
#[derive(Clone)]
pub enum DecisionRule {
    /// Reject iff at least one player rejects (`f = AND` of accept bits).
    And,
    /// Reject iff every player rejects (`f = OR` of accept bits).
    Or,
    /// Reject iff at least `min_rejects` players reject.
    Threshold {
        /// Minimal number of rejecting players that triggers rejection.
        min_rejects: usize,
    },
    /// Reject iff strictly more than half of the players reject.
    Majority,
    /// An arbitrary decision function of the accept-bit vector.
    Custom(CustomDecisionFn),
}

impl DecisionRule {
    /// Applies the rule to a vector of accept bits (`true` = accept).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty, or for [`DecisionRule::Threshold`] with
    /// `min_rejects == 0` (which would reject unconditionally by
    /// convention and is almost certainly a configuration error).
    #[must_use]
    pub fn decide(&self, bits: &[bool]) -> Verdict {
        assert!(
            !bits.is_empty(),
            "decision rule needs at least one player bit"
        );
        if let DecisionRule::Custom(f) = self {
            return f(bits);
        }
        let rejects = bits.iter().filter(|&&b| !b).count();
        self.decide_from_rejects(rejects, bits.len())
    }

    /// Applies the rule to a bit-packed transcript. The built-in rules
    /// only need the rejection count, which packed words answer via
    /// `popcount`; [`DecisionRule::Custom`] unpacks to its slice form.
    ///
    /// # Panics
    ///
    /// Same conditions as [`DecisionRule::decide`].
    #[must_use]
    pub fn decide_packed(&self, bits: &PackedBits) -> Verdict {
        assert!(
            !bits.is_empty(),
            "decision rule needs at least one player bit"
        );
        if let DecisionRule::Custom(f) = self {
            return f(&bits.to_bools());
        }
        self.decide_from_rejects(bits.count_zeros(), bits.len())
    }

    /// The built-in rules as a function of `(rejects, k)` alone.
    /// Callers have already dispatched [`DecisionRule::Custom`].
    fn decide_from_rejects(&self, rejects: usize, num_players: usize) -> Verdict {
        match self {
            DecisionRule::And => Verdict::from_accept_bit(rejects == 0),
            DecisionRule::Or => Verdict::from_accept_bit(rejects < num_players),
            DecisionRule::Threshold { min_rejects } => {
                assert!(*min_rejects > 0, "threshold rule needs min_rejects >= 1");
                Verdict::from_accept_bit(rejects < *min_rejects)
            }
            DecisionRule::Majority => Verdict::from_accept_bit(2 * rejects <= num_players),
            DecisionRule::Custom(_) => unreachable!("Custom is dispatched before counting"),
        }
    }

    /// A short identifier for tables and logs.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            DecisionRule::And => "and".to_owned(),
            DecisionRule::Or => "or".to_owned(),
            DecisionRule::Threshold { min_rejects } => format!("threshold({min_rejects})"),
            DecisionRule::Majority => "majority".to_owned(),
            DecisionRule::Custom(_) => "custom".to_owned(),
        }
    }
}

impl fmt::Debug for DecisionRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DecisionRule::{}", self.name())
    }
}

/// A referee for the `r`-bit message model: any function from the vector
/// of player messages to a verdict.
pub trait MessageReferee {
    /// Decides from the full message vector.
    fn decide(&self, messages: &[Message]) -> Verdict;
}

impl<F: Fn(&[Message]) -> Verdict> MessageReferee for F {
    fn decide(&self, messages: &[Message]) -> Verdict {
        self(messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_rejects_on_any_rejection() {
        assert_eq!(DecisionRule::And.decide(&[true, true]), Verdict::Accept);
        assert_eq!(DecisionRule::And.decide(&[true, false]), Verdict::Reject);
        assert_eq!(DecisionRule::And.decide(&[false, false]), Verdict::Reject);
    }

    #[test]
    fn or_rejects_only_unanimously() {
        assert_eq!(DecisionRule::Or.decide(&[false, true]), Verdict::Accept);
        assert_eq!(DecisionRule::Or.decide(&[false, false]), Verdict::Reject);
    }

    #[test]
    fn threshold_counts_rejections() {
        let rule = DecisionRule::Threshold { min_rejects: 2 };
        assert_eq!(rule.decide(&[false, true, true]), Verdict::Accept);
        assert_eq!(rule.decide(&[false, false, true]), Verdict::Reject);
        assert_eq!(rule.decide(&[false, false, false]), Verdict::Reject);
    }

    #[test]
    fn threshold_one_equals_and() {
        let rule = DecisionRule::Threshold { min_rejects: 1 };
        for bits in [[true, true], [true, false], [false, false]] {
            assert_eq!(rule.decide(&bits), DecisionRule::And.decide(&bits));
        }
    }

    #[test]
    fn majority_breaks_ties_towards_accept() {
        assert_eq!(
            DecisionRule::Majority.decide(&[true, false]),
            Verdict::Accept
        );
        assert_eq!(
            DecisionRule::Majority.decide(&[true, false, false]),
            Verdict::Reject
        );
    }

    #[test]
    fn custom_rule_applies_closure() {
        // Parity rule: reject iff an odd number of players reject.
        let rule = DecisionRule::Custom(Arc::new(|bits: &[bool]| {
            let rejects = bits.iter().filter(|&&b| !b).count();
            Verdict::from_accept_bit(rejects % 2 == 0)
        }));
        assert_eq!(rule.decide(&[false, true]), Verdict::Reject);
        assert_eq!(rule.decide(&[false, false]), Verdict::Accept);
        assert_eq!(rule.name(), "custom");
    }

    #[test]
    fn decide_packed_agrees_with_slice_form() {
        let rules = [
            DecisionRule::And,
            DecisionRule::Or,
            DecisionRule::Threshold { min_rejects: 2 },
            DecisionRule::Majority,
            DecisionRule::Custom(Arc::new(|bits: &[bool]| {
                let rejects = bits.iter().filter(|&&b| !b).count();
                Verdict::from_accept_bit(rejects % 2 == 0)
            })),
        ];
        // Every bit pattern over 5 players, plus a >64-player transcript
        // to cross the packed word boundary.
        for rule in &rules {
            for pattern in 0u32..32 {
                let bits: Vec<bool> = (0..5).map(|i| pattern & (1 << i) != 0).collect();
                let packed = PackedBits::from_bools(&bits);
                assert_eq!(
                    rule.decide(&bits),
                    rule.decide_packed(&packed),
                    "rule {} on {bits:?}",
                    rule.name()
                );
            }
            let long: Vec<bool> = (0..100).map(|i| i % 7 != 0).collect();
            assert_eq!(
                rule.decide(&long),
                rule.decide_packed(&PackedBits::from_bools(&long))
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn decide_packed_empty_panics() {
        let _ = DecisionRule::And.decide_packed(&PackedBits::new());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DecisionRule::And.name(), "and");
        assert_eq!(
            DecisionRule::Threshold { min_rejects: 7 }.name(),
            "threshold(7)"
        );
        assert_eq!(
            format!("{:?}", DecisionRule::Majority),
            "DecisionRule::majority"
        );
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::Accept.is_accept());
        assert!(Verdict::Reject.is_reject());
        assert_eq!(Verdict::from_accept_bit(true), Verdict::Accept);
        assert_eq!(Verdict::Accept.to_string(), "accept");
        assert_eq!(Verdict::Reject.to_string(), "reject");
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn empty_bits_panics() {
        let _ = DecisionRule::And.decide(&[]);
    }

    #[test]
    #[should_panic(expected = "min_rejects >= 1")]
    fn zero_threshold_panics() {
        let _ = DecisionRule::Threshold { min_rejects: 0 }.decide(&[true]);
    }
}
