//! A simulated simultaneous-message network for distributed distribution
//! testing, realizing the model of *Can Distributed Uniformity Testing Be
//! Local?* (PODC 2019):
//!
//! * `k` **players** each draw `q` iid samples from an unknown
//!   distribution and send a single bit — or, in the extended model, an
//!   `r`-bit message — to a **referee**;
//! * the referee applies a **decision rule** `f : {0,1}^k → {0,1}` and
//!   announces the verdict ([`Verdict::Accept`] / [`Verdict::Reject`]);
//! * the paper's special rules are first-class: [`DecisionRule::And`]
//!   (the local rule — reject if *any* player rejects), the `T`-threshold
//!   rule (reject if at least `T` players reject), majority, and
//!   arbitrary custom rules;
//! * players may share randomness through [`PlayerContext::shared_seed`],
//!   and the asymmetric-cost model of §6.2 (per-player sampling rates
//!   `q_i = T_i · τ`) is supported via [`RateVector`];
//! * beyond the star: [`topology`], [`rounds`] and [`aggregation`]
//!   provide the LOCAL/CONGEST round-based models on arbitrary graphs
//!   (with per-edge bandwidth enforcement), and [`faults`] injects
//!   message loss and crashes to study rule robustness.
//!
//! # Example
//!
//! ```
//! use dut_simnet::{DecisionRule, Network, Player, PlayerContext, Verdict};
//! use dut_probability::{families, Sampler};
//! use rand::SeedableRng;
//!
//! /// A player that rejects when it sees a repeated sample.
//! struct CollisionPlayer;
//! impl Player for CollisionPlayer {
//!     fn accepts(&self, _ctx: &PlayerContext, samples: &[usize]) -> bool {
//!         dut_probability::empirical::collision_count_of(samples) == 0
//!     }
//! }
//!
//! let network = Network::new(8);
//! let sampler = families::uniform(1 << 14).alias_sampler();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let outcome = network.run(&sampler, 4, &CollisionPlayer, &DecisionRule::And, &mut rng);
//! // 8 players, 4 samples each from a large uniform domain: collisions
//! // are rare, so the AND rule almost surely accepts.
//! assert_eq!(outcome.verdict, Verdict::Accept);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Tests assert exact constructed values and index with small literals.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]

mod bits;
mod message;
mod network;
mod player;
mod rates;
mod rule;

pub mod aggregation;
pub mod faults;
pub mod resilience;
pub mod rounds;
pub mod topology;

pub use bits::PackedBits;
pub use faults::{FaultModel, FaultyNetwork, MissingPolicy};
pub use message::Message;
pub use network::{Network, RunOutcome, Transcript};
pub use player::{BitPlayerAdapter, CountPlayer, MessagePlayer, Player, PlayerContext};
pub use rates::RateVector;
pub use resilience::{
    byzantine_tolerance, rejection_rate, ByzantineBehavior, ByzantinePlan, FaultPlan, FaultStats,
    GilbertElliott, IidFaults, MeasuredRates, PartialCrash, PreSample, Recovery, ReliablePlan,
    ResilientNetwork, ResilientOutcome, RobustRule, TargetedLoss,
};
pub use rounds::{RoundAlgorithm, RoundMessage, RoundModel, RoundNetwork, RoundStats};
pub use rule::{CustomDecisionFn, DecisionRule, MessageReferee, Verdict};
pub use topology::Topology;
