//! Property-based tests for the resilience layer's missing-policy
//! invariants and fault accounting.

#![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // test code asserts exact values
use dut_probability::families;
use dut_simnet::{
    DecisionRule, IidFaults, MissingPolicy, Network, PlayerContext, ReliablePlan, ResilientNetwork,
    Verdict,
};
use proptest::prelude::*;
use rand::SeedableRng;

/// A deterministic player whose bit depends only on its id, so runs
/// are comparable across policies and fault rates.
fn mask_player(reject_mask: u32) -> impl Fn(&PlayerContext, &[usize]) -> bool {
    move |ctx: &PlayerContext, _s: &[usize]| (reject_mask >> (ctx.player_id % 32)) & 1 == 0
}

proptest! {
    #[test]
    fn exclude_transcript_length_equals_delivered_count(
        k in 1usize..12,
        loss_milli in 0u32..1000,
        crash_milli in 0u32..1000,
        seed in 0u64..1 << 48,
        reject_mask in any::<u32>(),
    ) {
        // Under Exclude the referee votes on exactly the bits it heard:
        // the transcript length must equal the delivered-copy count —
        // the accounting invariant behind the bits_sent fix.
        let net = ResilientNetwork::new(k, MissingPolicy::Exclude);
        let sampler = families::uniform(16).alias_sampler();
        let mut plan = IidFaults::new(f64::from(crash_milli) / 1000.0, f64::from(loss_milli) / 1000.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = net.run(&sampler, 2, &mask_player(reject_mask), &DecisionRule::Majority, &mut plan, &mut rng);
        prop_assert_eq!(out.transcript.messages.len() as u64, out.faults.delivered_bits);
        // And the books balance: every surviving player's copy was
        // either delivered or lost.
        let senders = k as u64 - out.faults.crashed;
        prop_assert_eq!(out.faults.delivered_bits + out.faults.lost, senders);
    }

    #[test]
    fn assume_reject_and_rule_monotone_in_loss(
        k in 1usize..12,
        lo_milli in 0u32..1000,
        hi_milli in 0u32..1000,
        seed in 0u64..1 << 48,
        reject_mask in any::<u32>(),
    ) {
        // With coupled fault seeds, raising the loss rate only adds
        // losses; AssumeReject converts each into a reject vote, so the
        // AND verdict can only move towards reject.
        let (lo, hi) = (lo_milli.min(hi_milli), lo_milli.max(hi_milli));
        let run_at = |milli: u32| -> Verdict {
            let net = ResilientNetwork::new(k, MissingPolicy::AssumeReject);
            let sampler = families::uniform(16).alias_sampler();
            let mut plan = IidFaults::loss_only(f64::from(milli) / 1000.0);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            net.run(&sampler, 2, &mask_player(reject_mask), &DecisionRule::And, &mut plan, &mut rng)
                .verdict
        };
        let at_lo = run_at(lo);
        let at_hi = run_at(hi);
        prop_assert!(
            !(at_lo == Verdict::Reject && at_hi == Verdict::Accept),
            "losing more messages flipped AND back to accept ({lo} -> {hi} milli)"
        );
    }

    #[test]
    fn policies_agree_at_zero_fault_probability(
        k in 1usize..12,
        seed in 0u64..1 << 48,
        reject_mask in any::<u32>(),
    ) {
        // With nothing missing the three policies are the same
        // function, and all match the reliable network's verdict.
        let sampler = families::uniform(16).alias_sampler();
        let player = mask_player(reject_mask);
        let verdict_under = |policy: MissingPolicy| -> Verdict {
            let net = ResilientNetwork::new(k, policy);
            let mut plan = IidFaults::new(0.0, 0.0);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            net.run(&sampler, 2, &player, &DecisionRule::Majority, &mut plan, &mut rng)
                .verdict
        };
        let exclude = verdict_under(MissingPolicy::Exclude);
        prop_assert_eq!(verdict_under(MissingPolicy::AssumeAccept), exclude);
        prop_assert_eq!(verdict_under(MissingPolicy::AssumeReject), exclude);

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let reliable = Network::new(k)
            .run(&sampler, 2, &player, &DecisionRule::Majority, &mut rng);
        prop_assert_eq!(reliable.verdict, exclude);

        // The reliable plan agrees too, and reports a clean fault log.
        let net = ResilientNetwork::new(k, MissingPolicy::Exclude);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = net.run(&sampler, 2, &player, &DecisionRule::Majority, &mut ReliablePlan, &mut rng);
        prop_assert_eq!(out.verdict, exclude);
        prop_assert_eq!(out.faults.crashed + out.faults.lost + out.faults.byzantine_flips, 0);
    }
}
