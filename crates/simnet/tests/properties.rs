//! Property-based tests for the network model and decision rules.

#![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // test code asserts exact values
use dut_simnet::{DecisionRule, Message, Network, PlayerContext, RateVector, Verdict};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #[test]
    fn and_rule_monotone_in_rejections(bits in prop::collection::vec(prop::bool::ANY, 1..20)) {
        // Flipping any accept to reject can only move AND towards reject.
        let before = DecisionRule::And.decide(&bits);
        for i in 0..bits.len() {
            if bits[i] {
                let mut flipped = bits.clone();
                flipped[i] = false;
                let after = DecisionRule::And.decide(&flipped);
                prop_assert!(!(before == Verdict::Reject && after == Verdict::Accept));
            }
        }
    }

    #[test]
    fn threshold_rule_monotone_in_threshold(
        bits in prop::collection::vec(prop::bool::ANY, 1..20),
        t in 1usize..20,
    ) {
        // A stricter (smaller) threshold rejects whenever a looser one does...
        // precisely: if reject at threshold t+1 then reject at t.
        let loose = DecisionRule::Threshold { min_rejects: t + 1 }.decide(&bits);
        let strict = DecisionRule::Threshold { min_rejects: t }.decide(&bits);
        prop_assert!(!(loose == Verdict::Reject && strict == Verdict::Accept));
    }

    #[test]
    fn and_equals_threshold_one(bits in prop::collection::vec(prop::bool::ANY, 1..20)) {
        prop_assert_eq!(
            DecisionRule::And.decide(&bits),
            DecisionRule::Threshold { min_rejects: 1 }.decide(&bits)
        );
    }

    #[test]
    fn or_equals_threshold_k(bits in prop::collection::vec(prop::bool::ANY, 1..20)) {
        let k = bits.len();
        prop_assert_eq!(
            DecisionRule::Or.decide(&bits),
            DecisionRule::Threshold { min_rejects: k }.decide(&bits)
        );
    }

    #[test]
    fn majority_agrees_with_count(bits in prop::collection::vec(prop::bool::ANY, 1..20)) {
        let rejects = bits.iter().filter(|&&b| !b).count();
        let expected = if 2 * rejects > bits.len() {
            Verdict::Reject
        } else {
            Verdict::Accept
        };
        prop_assert_eq!(DecisionRule::Majority.decide(&bits), expected);
    }

    #[test]
    fn message_roundtrip(bits in 0u32..1024, extra in 0u8..6) {
        let len = 10 + extra; // always enough bits for the payload
        let m = Message::new(bits, len);
        prop_assert_eq!(m.bits(), bits);
        prop_assert_eq!(m.len(), len);
        prop_assert_eq!(m.to_string().len(), len as usize);
    }

    #[test]
    fn rate_vector_norms_consistent(rates in prop::collection::vec(0.1f64..10.0, 1..20)) {
        let rv = RateVector::new(rates.clone());
        // l2 <= l1 <= sqrt(k) * l2 (standard norm inequalities).
        prop_assert!(rv.l2_norm() <= rv.l1_norm() + 1e-9);
        prop_assert!(rv.l1_norm() <= (rates.len() as f64).sqrt() * rv.l2_norm() + 1e-9);
    }

    #[test]
    fn samples_for_time_monotone_in_tau(
        rates in prop::collection::vec(0.1f64..10.0, 1..10),
        tau in 1.0f64..100.0,
    ) {
        let rv = RateVector::new(rates);
        let a = rv.samples_for_time(tau);
        let b = rv.samples_for_time(tau * 2.0);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!(y >= x);
        }
    }

    #[test]
    fn network_transcript_is_consistent(
        k in 1usize..12,
        q in 0usize..16,
        seed in any::<u64>(),
        accept_threshold in 0usize..16,
    ) {
        let net = Network::new(k);
        let sampler = dut_probability::families::uniform(8).alias_sampler();
        let player = move |_ctx: &PlayerContext, samples: &[usize]| {
            samples.iter().sum::<usize>() >= accept_threshold
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = net.run(&sampler, q, &player, &DecisionRule::Majority, &mut rng);
        prop_assert_eq!(out.transcript.messages.len(), k);
        prop_assert_eq!(out.transcript.total_samples(), k * q);
        // Verdict must equal re-applying the rule to the transcript bits.
        let replay = DecisionRule::Majority.decide(&out.transcript.accept_bits());
        prop_assert_eq!(out.verdict, replay);
    }

    #[test]
    fn custom_rule_sees_exact_bits(k in 1usize..10, seed in any::<u64>()) {
        use std::sync::Arc;
        let net = Network::new(k);
        let sampler = dut_probability::families::uniform(4).alias_sampler();
        // Player accepts iff its id is even.
        let player = |ctx: &PlayerContext, _s: &[usize]| ctx.player_id.is_multiple_of(2);
        let expected_rejects = k / 2; // odd ids reject
        let rule = DecisionRule::Custom(Arc::new(move |bits: &[bool]| {
            let rejects = bits.iter().filter(|&&b| !b).count();
            Verdict::from_accept_bit(rejects == expected_rejects)
        }));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = net.run(&sampler, 1, &player, &rule, &mut rng);
        prop_assert_eq!(out.verdict, Verdict::Accept);
    }
}
