//! The protocol fuzz plane: grammar-aware hostile frames against a
//! live in-process server.
//!
//! Each iteration fires one generated frame (see [`crate::gen`]) on a
//! fresh connection and checks the server's response against the
//! frame's legal behaviors. After every full mutation window, a
//! known-good request must still be answered bit-exactly — hostile
//! traffic may cost the hostile client its connection, never the next
//! honest client's answer. At the end, the global cache accounting
//! must still balance (`hits + misses == requests`): a fuzz campaign
//! that poisons accounting has found a real bug even if every reply
//! looked structured.

use crate::client;
use crate::corpus::{Entry, Expect};
use crate::gen::{Expectation, FrameGen, Mutation};
use dut_serve::protocol::ReplyLine;
use std::path::{Path, PathBuf};

/// Protocol-plane configuration.
#[derive(Debug, Clone)]
pub struct ProtocolFuzzConfig {
    /// Frames to fire.
    pub iters: u64,
    /// Master seed for frame generation.
    pub seed: u64,
    /// The live server to attack.
    pub addr: String,
    /// Where to persist violating frames (`None` disables).
    pub corpus_dir: Option<PathBuf>,
}

impl Default for ProtocolFuzzConfig {
    fn default() -> Self {
        ProtocolFuzzConfig {
            iters: 100,
            seed: 1,
            addr: "127.0.0.1:7979".to_owned(),
            corpus_dir: None,
        }
    }
}

/// One invariant violation found by the plane.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which mutation class produced the frame.
    pub mutation: Mutation,
    /// Human-readable (lossy) preview of the frame.
    pub frame_preview: String,
    /// What went wrong.
    pub what: String,
    /// Corpus file the frame was persisted to, when enabled.
    pub corpus_file: Option<PathBuf>,
}

/// What a protocol fuzz run covered and found.
#[derive(Debug, Clone, Default)]
pub struct ProtocolFuzzReport {
    /// Frames fired.
    pub iterations: u64,
    /// Frames per mutation class, [`Mutation::ALL`] order.
    pub per_mutation: [u64; Mutation::ALL.len()],
    /// Known-good probes interleaved (one per mutation window).
    pub probes: u64,
    /// Invariant violations (empty = the server held).
    pub violations: Vec<Violation>,
    /// The post-run accounting invariant held:
    /// `cache_hits + cache_misses == requests`.
    pub accounting_ok: bool,
}

impl ProtocolFuzzReport {
    /// Whether the server survived with every invariant intact.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.accounting_ok
    }
}

/// Checks one outcome against a frame's legal behaviors.
fn check_outcome(expect: Expectation, outcome: &client::FireOutcome) -> Result<(), String> {
    match expect {
        Expectation::Reply => match &outcome.first {
            Some(ReplyLine::Reply(_) | ReplyLine::Overloaded) => Ok(()),
            other => Err(format!("valid frame got {other:?}")),
        },
        Expectation::Error => match &outcome.first {
            Some(ReplyLine::Error(_)) => Ok(()),
            other => Err(format!("malformed frame got {other:?} instead of an error")),
        },
        Expectation::LineTooLong => match &outcome.first {
            Some(ReplyLine::Error(message)) if message.contains("line_too_long") => {
                if outcome.closed {
                    Ok(())
                } else {
                    Err("oversized line answered but connection left open".into())
                }
            }
            other => Err(format!("oversized line got {other:?}")),
        },
        Expectation::ReplyOrError => {
            if outcome.first.is_some() || outcome.closed {
                Ok(())
            } else {
                Err("damaged frame got neither a line nor a close".into())
            }
        }
    }
}

fn persist(
    dir: &Path,
    index: u64,
    mutation: Mutation,
    bytes: &[u8],
    expect: Expectation,
) -> Option<PathBuf> {
    let name = format!("proto-violation-{index}-{}", mutation.name());
    let corpus_expect = match expect {
        Expectation::Reply => Expect::Reply,
        Expectation::Error => Expect::Error,
        Expectation::LineTooLong => Expect::LineTooLong,
        Expectation::ReplyOrError => Expect::ReplyOrError,
    };
    let entry = Entry::protocol(&name, bytes, corpus_expect);
    let path = dir.join(format!("{name}.json"));
    std::fs::create_dir_all(dir).ok()?;
    std::fs::write(&path, entry.render()).ok()?;
    Some(path)
}

/// Runs the protocol plane against a live server.
///
/// # Errors
///
/// Returns an error only when the server is unreachable before the
/// first frame; violations land in the report.
pub fn run(config: &ProtocolFuzzConfig) -> Result<ProtocolFuzzReport, String> {
    client::probe_known_good(&config.addr)
        .map_err(|e| format!("server not healthy before protocol fuzzing: {e}"))?;
    let mut gen = FrameGen::new(config.seed);
    let mut report = ProtocolFuzzReport::default();
    let window = Mutation::ALL.len() as u64;
    for i in 0..config.iters {
        let frame = gen.frame(i);
        report.iterations += 1;
        report.per_mutation[Mutation::ALL
            .iter()
            .position(|&m| m == frame.mutation)
            .unwrap_or(0)] += 1;
        let verdict = match client::fire_frame(&config.addr, &frame.bytes) {
            Ok(outcome) => check_outcome(frame.expect, &outcome),
            Err(e) => Err(e), // hang or unparseable reply: a finding
        };
        if let Err(what) = verdict {
            let corpus_file = config
                .corpus_dir
                .as_deref()
                .and_then(|dir| persist(dir, i, frame.mutation, &frame.bytes, frame.expect));
            report.violations.push(Violation {
                mutation: frame.mutation,
                frame_preview: String::from_utf8_lossy(&frame.bytes)
                    .chars()
                    .take(120)
                    .collect(),
                what,
                corpus_file,
            });
        }
        // After each full mutation window: the hostile burst must not
        // have cost the next honest client its answer.
        if (i + 1) % window == 0 {
            report.probes += 1;
            if let Err(what) = client::probe_known_good(&config.addr) {
                report.violations.push(Violation {
                    mutation: frame.mutation,
                    frame_preview: "<known-good probe>".to_owned(),
                    what,
                    corpus_file: None,
                });
            }
        }
    }
    // The post-fuzz accounting pass: the registry is process-global
    // and the invariant is per-request, so it must hold absolutely.
    report.accounting_ok = match dut_serve::loadgen::fetch_stats(&config.addr) {
        Ok(stats) => stats.cache_hits + stats.cache_misses == stats.requests,
        Err(_) => false,
    };
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_outcome_enforces_expectations() {
        let structured_error = client::FireOutcome {
            first: Some(ReplyLine::Error("nope".into())),
            closed: false,
        };
        assert!(check_outcome(Expectation::Error, &structured_error).is_ok());
        assert!(check_outcome(Expectation::Reply, &structured_error).is_err());
        let silent_hang_shape = client::FireOutcome {
            first: None,
            closed: false,
        };
        assert!(check_outcome(Expectation::ReplyOrError, &silent_hang_shape).is_err());
        let too_long_open = client::FireOutcome {
            first: Some(ReplyLine::Error("line_too_long".into())),
            closed: false,
        };
        assert!(
            check_outcome(Expectation::LineTooLong, &too_long_open).is_err(),
            "line_too_long must also close"
        );
        let too_long_closed = client::FireOutcome {
            first: Some(ReplyLine::Error("line_too_long".into())),
            closed: true,
        };
        assert!(check_outcome(Expectation::LineTooLong, &too_long_closed).is_ok());
    }

    #[test]
    fn unreachable_server_fails_fast() {
        let config = ProtocolFuzzConfig {
            addr: "127.0.0.1:1".to_owned(),
            ..ProtocolFuzzConfig::default()
        };
        assert!(run(&config).is_err());
    }
}
